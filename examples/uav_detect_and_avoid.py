#!/usr/bin/env python3
"""Brunel & Cazin's formally verified safety argumentation (§III.G).

Builds the KAOS goal model for a UAV detect-and-avoid function, with each
goal formalised in LTL (the top-level claim is the paper's example: an
intrusion never leads to collision before separation is restored).  Then:

1. mechanically validates every refinement over seeded encounter traces
   ('automatic validation of the argumentation'),
2. shows the *flawed* model variant — missing its domain property —
   being caught with concrete counterexample traces, and the full model
   closing the hole,
3. derives the GSN argument whose structure mirrors the goal model.

Run: ``python examples/uav_detect_and_avoid.py``
"""

import random

from repro.formalise.kaos import (
    flawed_uav_model,
    kaos_to_argument,
    uav_model,
    uav_traces,
)
from repro.notation import render_tree


def main() -> None:
    model = uav_model()
    print("=== Goal model ===")
    for goal in model.goals():
        formal = f"  [LTL: {goal.formal}]" if goal.formal else ""
        print(f"  {goal.name} ({goal.category.value}){formal}")
    print()

    nominal = uav_traces(random.Random(1), count=100, fault_rate=0.0)
    print("=== Validation over 100 nominal encounter traces ===")
    print(model.validate(nominal).summary())
    print()

    stressed = uav_traces(random.Random(2), count=100, fault_rate=0.4)
    print("=== Validation over 100 stressed traces "
          "(late detection + onset collision) ===")
    print("full model:  ", model.validate(stressed).summary())

    flawed = flawed_uav_model()
    flawed_report = flawed.validate(stressed)
    print("flawed model:", flawed_report.summary())
    for counterexample in flawed_report.counterexamples[:3]:
        print("  e.g.", counterexample)
    print()
    print("The ClosureDynamics domain property is what closes the "
          "refinement hole —")
    print("exactly the kind of dependency the formal semantics makes "
          "checkable.")
    print()

    print("=== Derived GSN argument (structure mirrors the model) ===")
    print(render_tree(kaos_to_argument(model)))
    print()
    print("Brunel & Cazin's own caveat (§III.G): presentation must "
          "convince 'a certification")
    print("authority', 'not a specialist of temporal logic'.  See "
          "experiments/audience_study.")


if __name__ == "__main__":
    main()
