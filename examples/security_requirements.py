#!/usr/bin/env python3
"""The Haley et al. security satisfaction argument, end to end (§III.K).

Reconstructs the 2008 worked example: the 11-step natural-deduction
*outer* argument proving that deploying the system implies the credential
holder is an HR member (``D -> H``), plus the extended-Toulmin *inner*
argument supporting the trust assumption ``C -> H``.

The script then exercises the framework's claimed benefit — 'one
discovers which domain properties are critical for security' — via
what-if elimination, shows the unsupported trust assumptions a reviewer
must still chase, and converts the inner argument to GSN.

Run: ``python examples/security_requirements.py``
"""

from repro.core.toulmin import (
    Statement,
    ToulminArgument,
    render_toulmin,
    toulmin_to_gsn,
)
from repro.formalise.security import haley_example
from repro.notation import render_tree


def main() -> None:
    example = haley_example()

    print("=== Outer argument (Haley et al. 2008, 11 steps) ===")
    print(example.outer)
    print()

    print("=== Atom vocabulary (domain claims) ===")
    for claim in example.vocabulary.values():
        print(" ", claim)
    print()

    report = example.check()
    print("=== Framework check ===")
    print(report.summary())
    print()

    print("=== Critical domain properties (what-if elimination) ===")
    for premise in example.critical_domain_properties():
        print(f"  {premise}  <- removing this breaks the proof")
    print()

    print("=== Inner argument for (C -> H) (extended Toulmin) ===")
    print(render_toulmin(example.inner["(C -> H)"]))
    print()

    print("=== Recorded rebuttals (the defeaters to watch) ===")
    for rebuttal in example.rebuttals():
        print(" ", rebuttal)
    print()

    # Supply the missing inner arguments, as the framework's to-do list
    # demands, and re-check.
    for premise in report.unsupported_assumptions:
        example.support(premise, ToulminArgument(
            claim=Statement("C", f"trust assumption {premise} holds"),
            grounds=(
                Statement("G", "deployment and configuration records"),
            ),
        ))
    final = example.check()
    print("=== After supporting every trust assumption ===")
    print("satisfied:", final.satisfied)
    print()

    print("=== Inner argument lifted to GSN ===")
    print(render_tree(toulmin_to_gsn(example.inner["(C -> H)"])))


if __name__ == "__main__":
    main()
