#!/usr/bin/env python3
"""Tolchinsky et al.'s deliberation dialogues (§III.O), worked.

An on-line decision aid for a safety-critical action: a transplant team
deliberates over an organ offer.  Arguments are exchanged in a dialogue
game; the tool maintains the argumentation framework and reports, under
sceptical (grounded) semantics, whether the action is currently
endorsed.  Unresolved conflicts leave the action unendorsed — the
conservative behaviour a safety-critical aid must have.

Run: ``python examples/transplant_deliberation.py``
"""

from repro.formalise.deliberation import (
    DefeasibleArgument,
    DeliberationDialogue,
    transplant_scenario,
)


def main() -> None:
    print("=== The worked scenario from the paper's domain ===")
    dialogue = transplant_scenario()
    print(dialogue.transcript())

    print("=== A deliberation that (correctly) stalls ===")
    stalled = DeliberationDialogue("administer(r, penicillin)")
    stalled.play(
        "allergist",
        DefeasibleArgument.of(
            "allergy", "unsafe(administer(r, penicillin))",
            "recorded_allergy(r, penicillin)",
            note="records show a penicillin allergy",
        ),
        against="proposal",
    )
    stalled.play(
        "registrar",
        DefeasibleArgument.of(
            "stale_record", "unreliable(allergy)",
            "record_age(r, years20)",
            note="the record is twenty years old",
        ),
        against="allergy",
    )
    stalled.play(
        "allergist",
        DefeasibleArgument.of(
            "recent_reaction", "unreliable(stale_record)",
            "observed_rash(r, last_admission)",
            note="a rash was observed on the last admission",
        ),
        against="stale_record",
    )
    print(stalled.transcript())
    print("open challenges the team must answer:",
          stalled.open_challenges())
    print()
    print("Grounded semantics is sceptical: while a contraindication "
          "stands undefeated,")
    print("the tool refuses to endorse the action — the conservative "
          "default a")
    print("safety-critical decision aid needs.")


if __name__ == "__main__":
    main()
