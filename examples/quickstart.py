#!/usr/bin/env python3
"""Quickstart: build, validate, render, and formalise an assurance case.

Covers the core loop a safety engineer runs daily:

1. sketch a GSN argument with the fluent builder,
2. check well-formedness (the formal-syntax sense of 'formal', §II.B.1),
3. attach evidence and record lifecycle events,
4. render the argument for different readers (tree / table / prose),
5. formalise it Rushby-style and machine-check the top-level claim.

Run: ``python examples/quickstart.py``
"""

from repro.core import (
    ArgumentBuilder,
    AssuranceCase,
    EvidenceItem,
    EvidenceKind,
    SafetyCriterion,
)
from repro.core.impact import evidence_impact
from repro.formalise.translator import formalise_argument
from repro.notation import render_prose, render_table, render_tree


def main() -> None:
    # 1. Sketch the argument top-down.
    builder = ArgumentBuilder("autonomous-shuttle")
    top = builder.goal(
        "The autonomous shuttle is acceptably safe for campus operation"
    )
    builder.context(
        "Operating domain: 25 km/h limit, segregated campus roads",
        under=top,
    )
    strategy = builder.strategy(
        "Argument over each identified hazard", under=top
    )
    builder.justification(
        "Hazard identification workshop held per the safety plan",
        under=strategy,
    )
    pedestrians = builder.goal(
        "Hazard H1 (pedestrian strike) is acceptably mitigated",
        under=strategy,
    )
    builder.solution("Pedestrian detection test campaign", under=pedestrians)
    runaway = builder.goal(
        "Hazard H2 (runaway vehicle) is acceptably mitigated",
        under=strategy,
    )
    builder.solution("Independent brake channel FMEA", under=runaway)

    # 2. Build — well-formedness is checked on the way out.
    argument = builder.build()
    print("=== ASCII tree ===")
    print(render_tree(argument))

    # 3. Wrap it in a case with evidence and lifecycle history.
    case = AssuranceCase(
        "shuttle-case",
        argument,
        SafetyCriterion(
            "No injury-accident more often than once per million km",
            "injury_accident_rate",
            1e-6,
        ),
    )
    case.add_evidence(
        EvidenceItem("tc-ped", EvidenceKind.TESTING,
                     "600-scenario pedestrian detection campaign",
                     coverage=0.83),
        cited_by="Sn1",
    )
    case.add_evidence(
        EvidenceItem("fmea-brake", EvidenceKind.FAULT_TREE_ANALYSIS,
                     "brake channel FMEA rev C", coverage=0.95),
        cited_by="Sn2",
    )
    case.record_decision(
        "Residual risk for H1 accepted at committee #4",
        affected=["G2"],
    )
    print("=== Integrity ===")
    print(case.integrity_report().summary())

    # 4. Alternative renderings for different stakeholders (§II.A).
    print()
    print("=== Table (review checklist view) ===")
    print(render_table(argument))
    print("=== Prose (for the non-graphically inclined [32]) ===")
    print(render_prose(argument))

    # 5. Rushby-style formalisation + mechanical check (§III.M).
    formalisation = formalise_argument(argument)
    formalisation.assent_all()
    print("=== Formalisation ===")
    print(formalisation.summary())
    print("top-level claim machine-checks:", formalisation.check())
    print("load-bearing evidence:", formalisation.load_bearing_evidence())

    # What does doubting the pedestrian campaign touch? (§VI.E)
    impact = evidence_impact(case, "tc-ped")
    print("impact of doubting 'tc-ped':", impact.summary())


if __name__ == "__main__":
    main()
