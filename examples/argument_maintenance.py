#!/usr/bin/env python3
"""The lifecycle story: maintain a safety case through change (§II.A).

Def Stan 00-56 requires the case to be developed, maintained, and
refined through the system's life, incorporating field data.  This
example walks one maintenance cycle:

1. version 1 of a case, with evidence and mechanically assessed
   confidence;
2. a field finding discredits one evidence item — impact tracing shows
   the blast radius, confidence drops, the what-if probe confirms the
   top-level proof fails;
3. engineering responds: a new barrier sub-argument in version 2;
4. the version diff computes exactly which claims the review board must
   re-examine, and the restored confidence is measured.

Run: ``python examples/argument_maintenance.py``
"""

from repro.core import (
    ArgumentBuilder,
    AssuranceCase,
    EvidenceItem,
    EvidenceKind,
    SafetyCriterion,
    claim_confidence,
    diff_arguments,
    render_diff,
)
from repro.core.impact import evidence_impact
from repro.formalise.translator import formalise_argument


def build_version_one():
    builder = ArgumentBuilder("pump-case-v1")
    top = builder.goal(
        "The infusion pump is acceptably safe for ward use"
    )
    strategy = builder.strategy(
        "Argument over each identified hazard", under=top
    )
    overdose = builder.goal(
        "Hazard H1 (overdose) is acceptably mitigated", under=strategy
    )
    builder.solution("Dose-limiter verification report", under=overdose)
    occlusion = builder.goal(
        "Hazard H2 (line occlusion) is acceptably mitigated",
        under=strategy,
    )
    builder.solution("Occlusion alarm test campaign", under=occlusion)
    return builder.build()


def main() -> None:
    argument_v1 = build_version_one()
    case = AssuranceCase(
        "pump-case", argument_v1,
        SafetyCriterion("No hazardous dose event per 1e6 infusions",
                        "hazardous_dose_rate", 1e-6),
    )
    case.add_evidence(
        EvidenceItem("dl-ver", EvidenceKind.FORMAL_PROOF,
                     "dose limiter verification", coverage=0.97),
        cited_by="Sn1",
    )
    case.add_evidence(
        EvidenceItem("oa-test", EvidenceKind.TESTING,
                     "occlusion alarm campaign", coverage=0.88),
        cited_by="Sn2",
    )

    print("=== Version 1 ===")
    print("integrity:", case.integrity_report().summary())
    confidence_before = claim_confidence(case, "G1", {
        "Sn1": True, "Sn2": True,
    })
    print(f"mechanically assessed confidence in the top claim: "
          f"{confidence_before:.3f}")
    print()

    # --- field data arrives -------------------------------------------
    print("=== Field finding: occlusion alarm failed to annunciate "
          "in service ===")
    case.record_field_finding(
        "Ward report WR-221: occlusion alarm silent during line kink",
        affected=["G3"],
    )
    impact = evidence_impact(case, "oa-test")
    print("impact tracing:", impact.summary())
    affected = case.withdraw_evidence("oa-test", "refuted by WR-221")
    print("citations withdrawn from:", affected)

    formalisation = formalise_argument(case.argument)
    formalisation.assent_all()
    formalisation.retract("Sn2")
    print("top-level proof still stands without the alarm evidence:",
          formalisation.check())
    confidence_after = claim_confidence(case, "G1", {
        "Sn1": True, "Sn2": False,
    })
    print(f"confidence after the finding: {confidence_after:.3f} "
          f"(was {confidence_before:.3f})")
    print()

    # --- engineering response: version 2 ------------------------------
    argument_v2 = build_version_one()
    argument_v2.replace_node(argument_v2.node("G3").with_text(
        "Hazard H2 (line occlusion) is acceptably mitigated by "
        "redundant detection"
    ))
    builder_patch = argument_v2  # extend in place
    from repro.core.nodes import Node, NodeType

    builder_patch.add_node(Node(
        "G4", NodeType.GOAL,
        "The pressure-trend monitor detects occlusion independently "
        "of the alarm",
    ))
    builder_patch.supported_by("G3", "G4")
    builder_patch.add_node(Node(
        "Sn3", NodeType.SOLUTION,
        "Pressure-trend monitor qualification tests",
    ))
    builder_patch.supported_by("G4", "Sn3")

    print("=== Version 2: diff and review set ===")
    diff = diff_arguments(argument_v1, argument_v2)
    print(render_diff(diff, argument_v2))

    case_v2 = AssuranceCase("pump-case-v2", argument_v2, case.criterion)
    case_v2.add_evidence(
        EvidenceItem("dl-ver", EvidenceKind.FORMAL_PROOF,
                     "dose limiter verification", coverage=0.97),
        cited_by="Sn1",
    )
    case_v2.add_evidence(
        EvidenceItem("oa-test2", EvidenceKind.TESTING,
                     "re-run occlusion campaign after alarm fix",
                     coverage=0.92),
        cited_by="Sn2",
    )
    case_v2.add_evidence(
        EvidenceItem("ptm-qual", EvidenceKind.TESTING,
                     "pressure-trend monitor qualification",
                     coverage=0.9),
        cited_by="Sn3",
    )
    confidence_v2 = claim_confidence(case_v2, "G1", {
        "Sn1": True, "Sn2": True, "Sn3": True,
    })
    print(f"confidence with the redundant barrier: {confidence_v2:.3f}")
    print()
    print("The cycle §II.A describes: field data -> rationale "
          "re-examined -> argument")
    print("changed -> exactly the affected claims re-reviewed.")


if __name__ == "__main__":
    main()
