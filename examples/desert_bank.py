#!/usr/bin/env python3
"""Figure 1 of the paper: the Desert Bank equivocation, executed.

The program is formally impeccable::

    is_a(desert_bank, bank).
    adjacent(bank, river).
    adjacent(X, Y) :- is_a(X, Z), adjacent(Z, Y).

and SLD resolution happily 'proves' ``adjacent(desert_bank, river)``.
The flaw — 'bank' naming both a financial institution and a riverbank —
is an *informal* fallacy (equivocation), invisible to any machine that
processes form rather than meaning (§IV.C).

This script runs the derivation, shows the bindings, runs the formal
fallacy detector over a propositional rendering (verdict: nothing wrong),
and then shows what the lexical equivocation heuristic can and cannot do.

Run: ``python examples/desert_bank.py``
"""

from repro.fallacies.formal_detector import FormalArgument, detect
from repro.fallacies.informal import (
    desert_bank_equivocation,
    homonym_heuristic,
)
from repro.logic.prolog import desert_bank_program
from repro.logic.propositional import parse


def main() -> None:
    program = desert_bank_program()
    print("=== The program (Figure 1) ===")
    print(program)
    print()

    print("=== Query: adjacent(desert_bank, river) ===")
    solutions = program.solve("adjacent(desert_bank, river)")
    print(f"derivable: {bool(solutions)} "
          f"(via {solutions[0].depth} resolution steps)")
    print()

    print("=== All X adjacent to the river ===")
    for solution in program.solve("adjacent(X, river)"):
        print(f"  X = {solution.as_dict()['X']}")
    print()

    # A propositional rendering of the same reasoning step, submitted to
    # the formal-fallacy detector: it is VALID.  Formal checking finds
    # nothing, because there is nothing formally wrong.
    formal = FormalArgument(
        premises=(
            parse("desert_bank_is_a_bank"),
            parse("banks_are_adjacent_to_rivers"),
            parse("desert_bank_is_a_bank & banks_are_adjacent_to_rivers "
                  "-> desert_bank_adjacent_to_river"),
        ),
        conclusion=parse("desert_bank_adjacent_to_river"),
    )
    print("=== Formal fallacy detector on the formalised step ===")
    print("verdict:", detect(formal).verdict.value)
    print()

    witness = desert_bank_equivocation()
    print("=== Ground truth (what only a human knows) ===")
    print(witness.explain())
    print("sound argument:", witness.is_sound)
    print()

    # What a lexical heuristic can do: flag 'bank' reuse — along with
    # every harmless reuse of any listed homonym in any argument.
    from repro.core.argument import Argument, LinkKind
    from repro.core.nodes import Node, NodeType

    argument = Argument("desert-bank-gsn")
    argument.add_node(Node(
        "G1", NodeType.GOAL,
        "The Desert Bank is adjacent to a river", undeveloped=True,
    ))
    argument.add_node(Node(
        "C1", NodeType.CONTEXT, "Banks are adjacent to rivers"
    ))
    argument.add_link("G1", "C1", LinkKind.IN_CONTEXT_OF)
    flags = homonym_heuristic(argument)
    print("=== Lexical heuristic flags (noisy, sense-blind) ===")
    for flag in flags:
        print(" ", flag)


if __name__ == "__main__":
    main()
