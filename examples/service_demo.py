#!/usr/bin/env python3
"""Two editors, one shared case, no lost updates — over HTTP.

A maintained assurance case is a shared artifact: the safety engineer
restructures the hazard argument while the verification lead attaches
fresh evidence.  This example runs the multi-editor service end to end,
entirely in one process (the server on a background thread, both
editors as plain HTTP clients):

1. build and save a case store, start ``repro.service`` over its parent
   directory on an ephemeral port;
2. both editors fetch the store's **generation token**, then race their
   edits through ``POST append`` with ``expect_generation`` — the first
   lands, the second gets ``409 Conflict`` instead of silently
   overwriting, refetches, and rebases;
3. snapshot isolation: a reader that fetched before the appends still
   queries the generation it started on, while new requests see the
   merged result;
4. the service re-checks well-formedness over the shared store
   (streaming, never hydrating) and ``compact`` + ``gc`` fold the
   session's journal away.

Run: ``python examples/service_demo.py``
"""

import asyncio
import tempfile
import threading
from pathlib import Path

from repro.core import ArgumentBuilder
from repro.service import ArgumentService, ServiceClient, ServiceClientError


def build_store(root: Path) -> None:
    builder = ArgumentBuilder("braking-system")
    top = builder.goal("The braking system is acceptably safe")
    strategy = builder.strategy(
        "Argument over each identified hazard", under=top
    )
    for index in (1, 2, 3):
        hazard = builder.goal(
            f"Hazard H{index} is acceptably managed", under=strategy
        )
        builder.solution(f"Mitigation record MR-{index}", under=hazard)
    builder.build().save(root / "braking.store")


def start_service(root: Path) -> "tuple[ServiceClient, asyncio.AbstractEventLoop]":
    loop = asyncio.new_event_loop()
    address: "dict[str, tuple[str, int]]" = {}
    ready = threading.Event()

    def serve() -> None:
        asyncio.set_event_loop(loop)
        service = ArgumentService(root)
        address["bound"] = loop.run_until_complete(service.start())
        ready.set()
        try:
            loop.run_until_complete(service.serve_forever())
        except asyncio.CancelledError:
            pass

    threading.Thread(target=serve, daemon=True).start()
    ready.wait(10)
    host, port = address["bound"]
    print(f"service on http://{host}:{port}\n")
    return ServiceClient(host, port), loop


def main() -> None:
    root = Path(tempfile.mkdtemp(prefix="service-demo-"))
    build_store(root)
    client, loop = start_service(root)
    store = "braking.store"

    summary = client.store(store)
    print(f"serving {summary['argument']!r}: {summary['nodes']} nodes, "
          f"generation {summary['generation']}")

    # Both editors pin the same generation before editing.
    generation = summary["generation"]
    engineer = ServiceClient(client.host, client.port)
    verifier = ServiceClient(client.host, client.port)

    # The engineer lands a new hazard first...
    result = engineer.append(store, [
        {"op": "add_node", "node": {
            "id": "G-H4", "type": "goal",
            "text": "Hazard H4 is acceptably managed",
        }},
        {"op": "add_link", "link": {
            "source": "S1", "target": "G-H4", "kind": "supported_by",
        }},
    ], expect_generation=generation)
    print(f"engineer appended -> generation {result['generation']}")

    # ...so the verifier's optimistic append is refused, not absorbed.
    evidence_ops = [
        {"op": "add_node", "node": {
            "id": "Sn-H4", "type": "solution",
            "text": "Brake dynamometer report DR-44",
        }},
        {"op": "add_link", "link": {
            "source": "G-H4", "target": "Sn-H4", "kind": "supported_by",
        }},
    ]
    try:
        verifier.append(store, evidence_ops, expect_generation=generation)
    except ServiceClientError as error:
        print(f"verifier conflicted as it should: HTTP {error.status}")
    # Rebase: refetch the current generation, re-send the same ops.
    current = verifier.store(store)["generation"]
    result = verifier.append(
        store, evidence_ops, expect_generation=current
    )
    print(f"verifier rebased   -> generation {result['generation']}, "
          f"{result['nodes']} nodes\n")

    # Reads are planned queries + streaming checks over the shared store.
    goals = client.query(store, {"all": [
        {"type": "goal"}, {"text_contains": "hazard h4"},
    ]})
    print("query for the new hazard:",
          [node["id"] for node in goals["nodes"]])
    verdict = client.check(store)
    print(f"well-formed: {verdict['well_formed']} "
          f"({len(verdict['violations'])} violations)")
    for violation in verdict["violations"][:3]:
        print(f"  [{violation['rule']}] {violation['subject']}: "
              f"{violation['detail']}")

    # Fold the editing session's journal away.
    compacted = client.compact(store)
    swept = client.gc(store)
    print(f"\ncompacted to generation {compacted['generation']}; "
          f"gc removed {len(swept['removed'])} superseded files")

    for editor in (client, engineer, verifier):
        editor.close()
    loop.call_soon_threadsafe(loop.stop)


if __name__ == "__main__":
    main()
