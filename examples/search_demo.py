#!/usr/bin/env python3
"""Ranked search over a library of persisted cases, from the sidecar.

The paper's §VI asks what a formalised case buys over plain documents.
One concrete answer: a library of assurance cases becomes *queryable* —
"which case argued about overpressure, and what evidence did it cite?"
resolves from a persisted inverted index instead of a grep over every
file.  This example walks the whole surface:

1. save three cases into one directory, each with
   ``save(search_index=True)`` — the token/trigram sidecar seals into
   the store next to the shards, inside the same manifest commit,
2. keep editing one case with ``save(journal=True)`` — the sidecar
   file is untouched; readers patch their loaded postings forward from
   the journal delta log in O(delta),
3. open a :class:`~repro.store.CaseCorpus` and run ranked searches —
   each hit is a query-biased summary (the claim's densest-matching
   snippet, terms marked ``[like this]``, supporting children rendered
   underneath),
4. run planner-backed ``text_contains`` queries against one store —
   folded needles resolve to exact candidate sets from the postings,
   case-sensitive needles narrow through trigram supersets,
5. ``compact()`` the edited store — the folded store's rebuilt sidecar
   is byte-identical to a clean indexed save.

Run: ``python examples/search_demo.py``
"""

import tempfile
from pathlib import Path

from repro.core import ArgumentBuilder
from repro.core.argument import Argument, LinkKind
from repro.core.nodes import Node, NodeType
from repro.core.query import select, text_contains
from repro.store import CaseCorpus, StoredArgument


def build_case(name: str, hazards: "dict[str, str]") -> Argument:
    builder = ArgumentBuilder(name)
    top = builder.goal(f"The {name} is acceptably safe")
    strategy = builder.strategy(
        "Argument over each identified hazard", under=top
    )
    for hazard, evidence in hazards.items():
        goal = builder.goal(
            f"The {hazard} hazard is acceptably mitigated", under=strategy
        )
        builder.solution(evidence, under=goal)
    return builder.build()


def main() -> None:
    root = Path(tempfile.mkdtemp(prefix="search-demo-"))
    cases = {
        "pressure-vessel": {
            "overpressure": "Relief valve test RV-12: opens at 10.4 bar",
            "weld-failure": "Weld inspection WR-7: no porosity found",
        },
        "braking-system": {
            "overheating": "Dynamometer report DR-3: fade within limits",
            "loss-of-fluid": "Reservoir inspection: dual circuits intact",
        },
        "infusion-pump": {
            "over-infusion": "Flow-rate verification FV-2 against spec",
            "occlusion": "Occlusion alarm test OA-9: 30 s detection",
        },
    }

    # 1. Indexed saves: the sidecar is part of the same commit.
    for name, hazards in cases.items():
        manifest = build_case(name, hazards).save(
            root / f"{name}.store", search_index=True
        )
        print(f"saved {name}: sidecar {manifest['search_index']}")

    # 2. A journal edit leaves the sidecar file alone — readers patch.
    vessel_dir = root / "pressure-vessel.store"
    vessel = Argument.load(vessel_dir)
    vessel.add_node(Node(
        "Sn_hydro", NodeType.SOLUTION,
        "Hydrostatic overpressure test HT-1 passed at 15 bar",
    ))
    vessel.add_link("G2", "Sn_hydro", LinkKind.SUPPORTED_BY)
    vessel.save(vessel_dir, journal=True)
    print("\njournal-edited pressure-vessel; sidecar file untouched")

    # 3. Ranked search over the whole library.
    corpus = CaseCorpus(root)
    print(f"\ncorpus: {len(corpus)} stores -> "
          f"{', '.join(corpus.store_names())}")
    for query_text in ("overpressure test", "inspection"):
        print(f"\nsearch: {query_text!r}")
        for hit in corpus.search(query_text, limit=3):
            print("  " + hit.summary.replace("\n", "\n  "))

    # 4. Planner-backed selects against one store.
    stored = StoredArgument(vessel_dir)
    folded = select(stored, text_contains("overpressure"))
    print(f"\ntext_contains('overpressure') in pressure-vessel: "
          f"{[node.identifier for node in folded]}")
    sensitive = select(stored, text_contains("Hydrostatic", True))
    print(f"text_contains('Hydrostatic', case_sensitive=True): "
          f"{[node.identifier for node in sensitive]}")

    # 5. Compaction folds the journal and rebuilds the sidecar.
    before = stored.manifest["search_index"]
    stored.compact()
    stored.gc()
    after = StoredArgument(vessel_dir).manifest["search_index"]
    print(f"\ncompacted: sidecar {before} -> {after}")
    hits = StoredArgument(vessel_dir).search("hydrostatic")
    assert hits and hits[0].identifier == "Sn_hydro"
    print("rebuilt index still answers: "
          + hits[0].summary.splitlines()[0])


if __name__ == "__main__":
    main()
