"""The claim language end to end: declare, compile, bind, check, edit.

A claim module is the Resolute-style artifact the paper's §III.M
formalists want: the argument's key claims, its structural rules, and
the formal problems its evidence must discharge — as one reviewable
text file.  This demo walks the whole loop through the stable
top-level API:

1. parse a module with ``repro.ClaimModule.parse``,
2. compile it onto the scoped rule engine (audited at compile time),
3. stamp its evidence obligations onto a matching argument,
4. check everything with one ``repro.check`` call — structure and
   SAT/entailment/LTL proofs together, as a typed ``CheckReport``,
5. edit one claim's evidence and watch the incremental mode re-prove
   *only that claim's obligation*.

Run from the repository root::

    PYTHONPATH=src python examples/claims_demo.py
"""

from __future__ import annotations

import repro
from repro.claims import OBLIGATION_KEY, obligation_counters

MODULE = '''\
module cooling-loop

claim G1 "The coolant loop is acceptably safe" supported
claim G2 "Loss-of-flow in the coolant loop is detected and mitigated" supported

rule goals-cite-support require supported goal
rule names-the-loop     require mention goal "coolant"
rule evidence-is-leaf   forbid link supported_by solution -> goal
rule no-cycles          require acyclic
rule one-root           require single_root

evidence Sn1 sat     "flow_sensor & (flow_sensor -> pump_trip)"
evidence Sn2 entails "low_flow -> alarm ; low_flow |- alarm"
evidence Sn2 ltl     "G (low_flow -> F alarm) @ low_flow ; alarm ; ."
'''


def build_argument() -> "repro.Argument":
    argument = repro.Argument("cooling-loop")
    argument.add_nodes([
        repro.Node("G1", repro.NodeType.GOAL,
                   "The coolant loop is acceptably safe"),
        repro.Node("G2", repro.NodeType.GOAL,
                   "Loss-of-flow in the coolant loop is detected "
                   "and mitigated"),
        repro.Node("Sn1", repro.NodeType.SOLUTION,
                   "Flow-sensor trip bench report"),
        repro.Node("Sn2", repro.NodeType.SOLUTION,
                   "Loss-of-flow alarm analysis"),
    ])
    argument.add_links([
        ("G1", "G2", repro.LinkKind.SUPPORTED_BY),
        ("G1", "Sn1", repro.LinkKind.SUPPORTED_BY),
        ("G2", "Sn2", repro.LinkKind.SUPPORTED_BY),
    ])
    return argument


def main() -> int:
    # 1-2. Parse and compile.  Compilation lowers the module onto the
    # PR 4 scoped rule engine and runs the PR 6 static audit over the
    # generated rules — an unclean module never reaches checking.
    module = repro.ClaimModule.parse(MODULE)
    claims = module.compile()
    print(f"module '{claims.name}': {len(module.claims)} claims, "
          f"{len(module.rules)} rules, "
          f"{sum(len(s) for s in claims.bindings.values())} obligations")
    print("compiled rules:",
          ", ".join(rule.name for rule in claims.rule_set.rules))

    # 3. Stamp the evidence obligations onto the argument's metadata —
    # they persist through stores, journals, and parallel workers like
    # any other metadata.
    argument = build_argument()
    stamped = claims.apply(argument)
    print(f"stamped obligations onto {stamped} evidence node(s)")

    # 4. One call checks structure AND discharges the formal proofs.
    report = repro.check(argument, claims)
    print(f"\ncheck: mode={report.mode} well_formed={report.well_formed}")
    for outcome in report.obligations:
        status = "discharged" if outcome.discharged else "FAILED"
        print(f"  [{status}] {outcome.evidence}: {outcome.spec}")

    # 5. Edit one claim's evidence; incremental mode re-proves only it.
    repro.check(argument, claims.rule_set, mode="incremental")  # prime
    proofs_before, _ = obligation_counters()
    weak = argument.node("Sn2")
    argument.replace_node(weak.with_metadata({
        OBLIGATION_KEY: ("entails: low_flow -> alarm |- pump_trip",),
    }))
    incremental = repro.check(
        argument, claims.rule_set, mode="incremental"
    )
    proofs_after, _ = obligation_counters()
    print(f"\nafter editing Sn2's evidence: "
          f"{proofs_after - proofs_before} proof(s) re-ran "
          f"(untouched claims stayed cached)")
    for violation in incremental:
        print(f"  {violation.rule}: {violation.subject} — "
              f"{violation.detail}")
    fresh = repro.check(argument, claims.rule_set, mode="serial")
    assert tuple(incremental) == tuple(fresh)
    print("incremental result equals a fresh full check")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
