#!/usr/bin/env python3
"""Typed GSN pattern instantiation, after Matsuno & Taguchi (§III.L).

Demonstrates the full formal pattern mechanism:

* a pattern with typed parameters, including the 0-100% range-restricted
  residual-risk parameter from Matsuno's own example,
* partial-instantiation annotations (``[2/x, /y, "hello"/z]`` style),
* multiplicity expansion over a hazard list,
* the misuses type checking *does* prevent (range violations, partial
  bindings, wrong types) — and the one it cannot: Matsuno's 'Railway
  hazards' instantiated for a system name is well-typed nonsense that
  sails straight through.

Run: ``python examples/pattern_instantiation.py``
"""

from repro.core.patterns import (
    Binding,
    InstantiationError,
    hazard_avoidance_pattern,
)
from repro.core.wellformed import is_well_formed
from repro.notation import render_tree


def main() -> None:
    pattern = hazard_avoidance_pattern()

    print("=== Pattern parameters ===")
    for parameter in pattern.parameters:
        print(f"  {parameter}")
    print()

    partial = Binding.of(system="ACME light-rail brake")
    print("=== Partial instantiation annotation (Matsuno style) ===")
    print(" ", partial.render(pattern.parameters))
    print()

    print("=== Misuses the type checker prevents ===")
    attempts = [
        ("partial binding", partial),
        ("risk out of range (250%)",
         Binding.of(system="ACME", hazards=["overrun"],
                    residual_risk=250)),
        ("wrong type for system",
         Binding.of(system=42, hazards=["overrun"], residual_risk=10)),
        ("empty hazard list",
         Binding.of(system="ACME", hazards=[], residual_risk=10)),
    ]
    for label, binding in attempts:
        try:
            pattern.instantiate(binding)
            print(f"  {label}: ACCEPTED (unexpected!)")
        except InstantiationError as error:
            message = str(error)
            if len(message) > 60:
                message = message[:57] + "..."
            print(f"  {label}: rejected — {message}")
    print()

    print("=== A correct instantiation ===")
    argument = pattern.instantiate(Binding.of(
        system="ACME light-rail brake",
        hazards=["overrun", "fire", "door-trap"],
        residual_risk=12,
    ))
    print(f"well-formed: {is_well_formed(argument)}")
    print(render_tree(argument))

    print("=== The misuse type checking cannot catch (§III.L) ===")
    nonsense = pattern.instantiate(Binding.of(
        system="Railway hazards",   # Matsuno's own example of misuse
        hazards=["overrun"],
        residual_risk=12,
    ))
    print("accepted, and the result reads:")
    print(" ", nonsense.node("G_top").text)
    print("Well-typed, syntactically perfect — and meaningless.  "
          "Meaning is informal.")


if __name__ == "__main__":
    main()
