#!/usr/bin/env python3
"""Tun et al.'s privacy arguments over the Event Calculus (§III.P).

Builds the paper's selective-disclosure scenario — a Tap by a user who
shares a platform with, or is friends with, the subject triggers a
location Query at t+1 and a disclosure At t+2 — and runs the three
privacy checks the authors claim formalisation enables:

1. **information availability**: an authorised requester gets the
   location;
2. **denial**: an unauthorised requester never does;
3. **explanation**: the causal chain behind each disclosure.

Run: ``python examples/privacy_arguments.py``
"""

from repro.formalise.policy import (
    build_location_policy,
    check_availability,
    check_denial,
    explain_disclosure,
)
from repro.logic.event_calculus import Event, Narrative


def main() -> None:
    principals = ("alice", "bob", "carol", "dave")
    locations = {
        "alice": "laboratory", "bob": "office",
        "carol": "cafeteria", "dave": "workshop",
    }
    model = build_location_policy(principals, locations)

    narrative = Narrative()
    narrative.happens(Event("Befriend", ("alice", "bob")), 0)
    narrative.happens(Event("JoinPlatform", ("carol", "bob")), 1)
    model.tap(narrative, "alice", "bob", 3)    # friend: authorised
    model.tap(narrative, "carol", "bob", 4)    # same platform: authorised
    model.tap(narrative, "dave", "bob", 5)     # stranger: must be denied
    narrative.happens(Event("Unfriend", ("alice", "bob")), 6)
    model.tap(narrative, "alice", "bob", 8)    # post-unfriend: denied

    print("=== Narrative ===")
    for occurrence in narrative.occurrences:
        print(" ", occurrence)
    print()

    print("=== Property 1: information availability ===")
    print("  alice (friend at t=3):   ",
          check_availability(model, narrative, "alice", "bob"))
    print("  carol (same platform):   ",
          check_availability(model, narrative, "carol", "bob"))
    print()

    print("=== Property 2: denial ===")
    print("  dave (stranger):         ",
          check_denial(model, narrative, "dave", "bob"))
    print()

    print("=== Property 3: explanation ===")
    for user in ("alice", "carol", "dave"):
        explanations = explain_disclosure(model, narrative, user, "bob")
        if explanations:
            for explanation in explanations:
                print(f"  {explanation}")
        else:
            print(f"  no disclosure to {user!r} — nothing to explain")
    print()

    timeline = model.run(narrative)
    print("=== Full derived timeline (recorded + triggered events) ===")
    for occurrence in timeline.all_occurrences():
        print(" ", occurrence)


if __name__ == "__main__":
    main()
