#!/usr/bin/env python3
"""Persistence: save a case, reload it partially, query it on disk.

Tool-generated assurance cases (Resolute from architecture models,
Isabelle/SACM next to proofs) reach sizes where the case must outlive
the process that built it.  This example shows the persistent sharded
store (:mod:`repro.store`) end to end:

1. generate a fan-shaped case (one root claim over many hazards),
2. ``save()`` it — nodes/links stream into id-hash JSONL shards with a
   checksummed manifest,
3. partially load one hazard's sub-argument — only the shards the
   reachable region touches are hydrated,
4. query the store *without* loading it (``select`` streams the shards),
5. fully reload and confirm statistics and well-formedness survived.

Run: ``python examples/store_roundtrip.py``
"""

import tempfile
from pathlib import Path

from repro.core import (
    ArgumentBuilder,
    AssuranceCase,
    EvidenceItem,
    EvidenceKind,
    check,
)
from repro.core.argument import Argument
from repro.core.query import select, text_contains
from repro.store import StoredArgument


def build_case() -> AssuranceCase:
    builder = ArgumentBuilder("plant-shutdown")
    top = builder.goal("The shutdown system is acceptably safe")
    strategy = builder.strategy(
        "Argument over each identified hazard", under=top
    )
    solutions = []
    for index in range(1, 41):
        hazard = builder.goal(
            f"Hazard H{index} is acceptably managed", under=strategy
        )
        solutions.append(
            builder.solution(f"Mitigation record MR-{index}", under=hazard)
        )
    case = AssuranceCase("plant-case", builder.build())
    for index, solution in enumerate(solutions, start=1):
        case.add_evidence(
            EvidenceItem(
                f"fta-{index}", EvidenceKind.FAULT_TREE_ANALYSIS,
                f"fault tree for hazard H{index}", coverage=0.9,
            ),
            cited_by=solution,
        )
    return case


def main() -> None:
    case = build_case()
    store_dir = Path(tempfile.mkdtemp(prefix="store-example-")) / "plant.store"

    # 2. Save: streamed, sharded, checksummed.
    manifest = case.save(store_dir)
    files = sorted(path.name for path in store_dir.iterdir())
    print(f"saved {manifest['node_count']} nodes / "
          f"{manifest['link_count']} links into {len(files)} files "
          f"({manifest['shard_count']} shards per record kind)")
    print("  " + ", ".join(files[:4]) + ", ...")

    # 3. Partial load: one hazard's subtree, lazily.  (The id scan
    # streams every node shard, so use a fresh handle for the subtree —
    # shards_read then shows what the partial load alone touched.)
    hazard_id = next(
        node.identifier
        for node in StoredArgument(store_dir).iter_nodes()
        if "Hazard H7 " in node.text
    )
    stored = StoredArgument(store_dir)
    fragment = stored.subtree(hazard_id)
    total_shards = len(manifest["shards"])
    print(f"subtree({hazard_id!r}): {len(fragment)} nodes hydrated from "
          f"{len(stored.shards_read)} of {total_shards} shards")

    # 4. Query the store directly — no full hydration.
    fresh = StoredArgument(store_dir)
    matches = select(fresh, text_contains("hazard h3"))
    print(f"select over the store found {len(matches)} node(s), e.g. "
          f"{matches[0].text!r}")

    # 5. Full reload: everything survives the trip.
    reloaded = Argument.load(store_dir)
    assert reloaded == case.argument
    assert reloaded.statistics() == case.argument.statistics()
    assert check(reloaded) == check(case.argument)
    print("full reload: statistics and well-formedness identical;",
          f"depth {reloaded.depth()}, {len(reloaded)} nodes")

    case_again = AssuranceCase.load(store_dir)
    print(f"case reload: {case_again.name!r} with "
          f"{len(case_again.argument)} nodes, integrity "
          f"{'OK' if case_again.integrity_report().ok else 'violations'}")


if __name__ == "__main__":
    main()
