#!/usr/bin/env python3
"""Run the paper itself: Table I, the §III-V counts, and all five §VI
experiments, printed in one sitting.

This is the 'reproduce the paper' driver — the same machinery the
benchmarks exercise, gathered for a human reader.

Run: ``python examples/survey_and_experiments.py``
"""

from repro.experiments import (
    AudienceStudyConfig,
    EffortStudyConfig,
    InstantiationStudyConfig,
    ReviewStudyConfig,
    SufficiencyStudyConfig,
    run_audience_study,
    run_effort_study,
    run_instantiation_study,
    run_review_study,
    run_sufficiency_study,
)
from repro.fallacies.taxonomy import (
    CATALOGUE,
    GREENWELL_FINDINGS,
    greenwell_total,
)
from repro.survey import (
    papers_claiming_mechanical_confidence,
    papers_formalising_content,
    papers_formalising_syntax,
    render_table_i,
    run_survey,
)


def main() -> None:
    print("#" * 70)
    print("# Table I — the systematic survey")
    print("#" * 70)
    outcome = run_survey(seed=2014)
    print(render_table_i(outcome))
    print("matches the published table:",
          outcome.matches_published_table())
    print()

    print("#" * 70)
    print("# In-text survey counts (§IV, §V)")
    print("#" * 70)
    print(f"claim mechanical-validation confidence: "
          f"{len(papers_claiming_mechanical_confidence())} of 20")
    print(f"formalise graphical-argument syntax:    "
          f"{len(papers_formalising_syntax())} of 20")
    print(f"formalise content into deductive logic: "
          f"{len(papers_formalising_content())} of 20")
    print()

    print("#" * 70)
    print("# Greenwell et al. findings (§V.B) — none strictly formal")
    print("#" * 70)
    for fallacy, count in GREENWELL_FINDINGS.items():
        info = CATALOGUE[fallacy]
        print(f"  {info.name:<32} {count:>2} instance(s)  "
              f"machine-detectable: {info.machine_detectable}")
    print(f"  {'TOTAL':<32} {greenwell_total():>2}")
    print()

    configs_and_runners = [
        ("A", run_review_study,
         ReviewStudyConfig(subjects=16, arguments=4)),
        ("B", run_effort_study,
         EffortStudyConfig(subjects_per_group=10, tasks=4)),
        ("C", run_audience_study,
         AudienceStudyConfig(subjects_per_background=10)),
        ("D", run_instantiation_study,
         InstantiationStudyConfig(subjects_per_group=10, tasks=5)),
        ("E", run_sufficiency_study,
         SufficiencyStudyConfig(assessors_per_group=8)),
    ]
    for label, runner, config in configs_and_runners:
        print("#" * 70)
        print(f"# §VI.{label} experiment")
        print("#" * 70)
        print(runner(config).render())


if __name__ == "__main__":
    main()
