"""Streaming well-formedness over a saved 10k-node store — no hydration.

PR 4's scoped rule engine checks a persisted assurance case three ways
without ever rebuilding the in-memory graph it was saved from:

* **streaming** — shards parse once, a node-type sidecar map stands in
  for the graph, and memory stays far below a full hydration;
* **parallel** — the same streams partitioned across process workers
  (degrading to the streaming path on a single-core machine);
* **incremental** — after edits, only the touched subjects re-check via
  the mutation delta log.

Run from the repository root::

    PYTHONPATH=src python examples/wellformed_streaming.py
"""

from __future__ import annotations

import os
import tempfile
import time
from pathlib import Path

from repro.core.builder import ArgumentBuilder
from repro.core.nodes import Node, NodeType
from repro.core.argument import LinkKind
from repro.core.wellformed import GSN_STANDARD_RULES
from repro.store import StoredArgument

NODES = 10_000


def build_case():
    """A 10k-node hazard-tree argument, built through one bulk batch."""
    builder = ArgumentBuilder("streaming-demo")
    top = builder.goal("The system is acceptably safe to operate")
    strategy = builder.strategy(
        "Argument over each identified hazard", under=top
    )
    with builder.bulk():
        for index in range(1, (NODES - 2) // 2 + 1):
            goal = builder.goal(
                f"Hazard H{index} is acceptably managed", under=strategy
            )
            builder.solution(
                f"Verification record VR-{index}", under=goal
            )
    return builder.build()


def main() -> int:
    argument = build_case()
    print(f"built {len(argument)} nodes / {len(argument.links)} links")

    with tempfile.TemporaryDirectory(prefix="wf-streaming-") as tmp:
        store_dir = Path(tmp) / "demo.store"
        argument.save(store_dir, compression="gzip")
        size = sum(p.stat().st_size for p in store_dir.iterdir())
        print(f"saved to a gzip store ({size / 1024:.0f} KiB)")

        # Streaming: rules run over the shards themselves.
        stored = StoredArgument(store_dir)
        start = time.perf_counter()
        violations = GSN_STANDARD_RULES.check(stored, mode="streaming")
        elapsed = time.perf_counter() - start
        assert not stored.hydrated, "streaming must not hydrate"
        print(
            f"streaming check: {len(violations)} violations in "
            f"{elapsed * 1e3:.0f} ms over {len(stored.shards_read)} "
            "shards, hydrated=False"
        )

        # Parallel: identical answer from partitioned streams.
        workers = os.cpu_count() or 1
        parallel_store = StoredArgument(store_dir)
        start = time.perf_counter()
        parallel = GSN_STANDARD_RULES.check(
            parallel_store, mode="parallel", workers=workers
        )
        elapsed = time.perf_counter() - start
        assert parallel == violations
        print(
            f"parallel check ({workers} worker(s)): identical "
            f"violations in {elapsed * 1e3:.0f} ms, hydrated="
            f"{parallel_store.hydrated}"
        )

    # Incremental: edit the live argument, re-check only what changed.
    checker = GSN_STANDARD_RULES.incremental(argument)
    checker.check()
    argument.add_node(Node(
        "LATE", NodeType.GOAL, "A late claim awaits its evidence"
    ))
    argument.add_link("S1", "LATE", LinkKind.SUPPORTED_BY)
    start = time.perf_counter()
    found = checker.check()
    elapsed = time.perf_counter() - start
    print(
        f"incremental re-check after an edit: {len(found)} violation(s) "
        f"in {elapsed * 1e3:.1f} ms "
        f"({[v.rule for v in found]})"
    )
    assert found == GSN_STANDARD_RULES.check(argument)
    print("incremental result equals a fresh full check")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
