"""Streaming well-formedness over a saved 10k-node store — no hydration.

PR 4's scoped rule engine checks a persisted assurance case three ways
without ever rebuilding the in-memory graph it was saved from:

* **streaming** — shards parse once, a node-type sidecar map stands in
  for the graph, and memory stays far below a full hydration;
* **parallel** — the same streams partitioned across process workers
  (degrading to the streaming path on a single-core machine);
* **incremental** — after edits, only the touched subjects re-check via
  the mutation delta log.

All three run through the one ``repro.check`` facade; the returned
``CheckReport`` records the engine actually used.

Run from the repository root::

    PYTHONPATH=src python examples/wellformed_streaming.py
"""

from __future__ import annotations

import os
import tempfile
import time
from pathlib import Path

import repro
from repro import ArgumentBuilder, LinkKind, Node, NodeType, \
    StoredArgument

NODES = 10_000


def build_case():
    """A 10k-node hazard-tree argument, built through one bulk batch."""
    builder = ArgumentBuilder("streaming-demo")
    top = builder.goal("The system is acceptably safe to operate")
    strategy = builder.strategy(
        "Argument over each identified hazard", under=top
    )
    with builder.bulk():
        for index in range(1, (NODES - 2) // 2 + 1):
            goal = builder.goal(
                f"Hazard H{index} is acceptably managed", under=strategy
            )
            builder.solution(
                f"Verification record VR-{index}", under=goal
            )
    return builder.build()


def main() -> int:
    argument = build_case()
    print(f"built {len(argument)} nodes / {len(argument.links)} links")

    with tempfile.TemporaryDirectory(prefix="wf-streaming-") as tmp:
        store_dir = Path(tmp) / "demo.store"
        argument.save(store_dir, compression="gzip")
        size = sum(p.stat().st_size for p in store_dir.iterdir())
        print(f"saved to a gzip store ({size / 1024:.0f} KiB)")

        # Streaming: rules run over the shards themselves.  Every
        # engine sits behind the one repro.check facade; the report
        # records the mode actually used.
        stored = StoredArgument(store_dir)
        start = time.perf_counter()
        report = repro.check(stored, mode="streaming")
        elapsed = time.perf_counter() - start
        assert not stored.hydrated, "streaming must not hydrate"
        print(
            f"streaming check: {len(report)} violations in "
            f"{elapsed * 1e3:.0f} ms over {len(stored.shards_read)} "
            "shards, hydrated=False"
        )

        # Parallel: identical answer from partitioned streams.
        workers = os.cpu_count() or 1
        parallel_store = StoredArgument(store_dir)
        start = time.perf_counter()
        parallel = repro.check(
            parallel_store, mode="parallel", workers=workers
        )
        elapsed = time.perf_counter() - start
        assert tuple(parallel) == tuple(report)
        print(
            f"parallel check ({workers} worker(s), used mode "
            f"{parallel.mode!r}): identical violations in "
            f"{elapsed * 1e3:.0f} ms, hydrated={parallel_store.hydrated}"
        )

    # Incremental: edit the live argument, re-check only what changed.
    # mode="incremental" keeps the delta-log checker alive between
    # calls behind the facade.
    repro.check(argument, mode="incremental")
    argument.add_node(Node(
        "LATE", NodeType.GOAL, "A late claim awaits its evidence"
    ))
    argument.add_link("S1", "LATE", LinkKind.SUPPORTED_BY)
    start = time.perf_counter()
    found = repro.check(argument, mode="incremental")
    elapsed = time.perf_counter() - start
    print(
        f"incremental re-check after an edit: {len(found)} violation(s) "
        f"in {elapsed * 1e3:.1f} ms "
        f"({[v.rule for v in found]})"
    )
    assert tuple(found) == tuple(repro.check(argument, mode="serial"))
    print("incremental result equals a fresh full check")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
