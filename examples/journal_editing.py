#!/usr/bin/env python3
"""An editing session over a persisted case, paid for in O(delta).

The paper's core worry is that a formalised assurance case costs more to
*maintain* than the assurance it buys.  This example shows the append
journal making maintenance cheap: a saved case absorbs a whole editing
session as tiny journal appends (no shard is ever rewritten), the
persisted deltas re-check the case incrementally without loading it, and
one ``compact()`` folds the journal back into clean shards.

1. build and ``save()`` a case, then attach a store-backed incremental
   checker (``RuleSet.incremental_from_store`` — never hydrates),
2. run edit rounds: mutate the live argument, ``save(journal=True)``
   appends just the mutation delta as a sealed journal segment,
3. after each round the checker consumes the persisted delta and
   re-checks the stored case — ``hydrated`` stays ``False`` throughout,
4. ``compact()`` folds the journal into fresh shards, byte-identical to
   a clean save of the same argument, and ``gc()`` confirms nothing is
   left to sweep.

Run: ``python examples/journal_editing.py``
"""

import tempfile
from pathlib import Path

from repro.core import ArgumentBuilder
from repro.core.argument import Argument, LinkKind
from repro.core.nodes import Node, NodeType
from repro.core.wellformed import GSN_STANDARD_RULES
from repro.store import StoredArgument


def build_argument() -> Argument:
    builder = ArgumentBuilder("braking-system")
    top = builder.goal("The braking system is acceptably safe")
    strategy = builder.strategy(
        "Argument over each identified hazard", under=top
    )
    for index in range(1, 13):
        hazard = builder.goal(
            f"Hazard H{index} is acceptably managed", under=strategy
        )
        builder.solution(f"Mitigation record MR-{index}", under=hazard)
    return builder.build()


def main() -> None:
    argument = build_argument()
    store_dir = (
        Path(tempfile.mkdtemp(prefix="journal-example-")) / "braking.store"
    )

    # 1. The initial save is a full write; it also records the baseline
    # the journal appends will continue from.
    manifest = argument.save(store_dir)
    base_files = set(manifest["shards"])
    print(f"saved {manifest['node_count']} nodes into "
          f"{len(base_files)} shards")

    stored = StoredArgument(store_dir)
    checker = GSN_STANDARD_RULES.incremental_from_store(stored)
    print(f"attached store-backed checker: "
          f"{len(checker.check())} violation(s), hydrated={stored.hydrated}")

    # 2-3. Edit rounds: each save appends one O(delta) journal segment,
    # and the checker re-checks the *stored* case from that delta.
    for round_index in range(1, 4):
        goal = argument.node("G3")
        argument.replace_node(goal.with_text(
            f"Hazard H2 is acceptably managed (revalidated r{round_index})"
        ))
        argument.add_node(Node(
            f"X{round_index}", NodeType.GOAL,
            f"Late-identified hazard L{round_index} is managed",
        ))
        argument.add_link("S1", f"X{round_index}", LinkKind.SUPPORTED_BY)
        manifest = argument.save(store_dir, journal=True)
        violations = checker.check()
        print(f"round {round_index}: journal segments "
              f"{len(manifest['journal'])}, base shards untouched "
              f"{base_files <= set(manifest['shards'])}, "
              f"{len(violations)} violation(s) "
              f"(hydrated={stored.hydrated})")

    # The journal-replayed store is the live argument, exactly.
    assert StoredArgument(store_dir).load() == argument

    # 4. Compaction: fold the journal into fresh shards — byte-identical
    # to saving the live argument into a clean directory.
    compact_handle = StoredArgument(store_dir)
    compacted = compact_handle.compact()
    reference_dir = store_dir.parent / "reference.store"
    argument.save(reference_dir)
    same = {
        path.name: path.read_bytes() for path in store_dir.iterdir()
    } == {
        path.name: path.read_bytes() for path in reference_dir.iterdir()
    }
    print(f"compacted: journal gone ({'journal' not in compacted}), "
          f"byte-identical to a clean save: {same}")
    print(f"gc after compaction removed: {compact_handle.gc() or 'nothing'}")

    # The checker notices the new base generation and stays correct.
    assert checker.check() == GSN_STANDARD_RULES.check(argument)
    print(f"checker survives compaction; hydrated={stored.hydrated}")


if __name__ == "__main__":
    main()
