#!/usr/bin/env python3
"""Sokolsky, Lee & Heimdahl's multi-sorted FOL exploration (§III.N).

Formalises the logical structure of a medical-device (infusion pump)
safety argument in multi-sorted first-order logic: sorts for hazards,
barriers, and operating modes; quantified claims ('every hazard has an
effective barrier in every mode'); grounding over the finite domains;
and entailment checking via SAT.

It then demonstrates §III.N's caveat, quoted by the paper: a formalism
that 'does not capture the meaning of the argument, but only its logical
structure' validates happily over a deliberately wrong hazard list —
the machine cannot know the set is incomplete with respect to the world
(the hasty-generalisation discussion of §V.B).

Run: ``python examples/medical_device_fol.py``
"""

from repro.logic.fol import (
    FolAtom,
    FolImplies,
    ForAll,
    Signature,
    fol_entails,
    ground,
)
from repro.logic.terms import Atom, Const, Var


def build_signature(hazards: list[str]) -> Signature:
    signature = Signature()
    hazard = signature.declare_sort("Hazard")
    barrier = signature.declare_sort("Barrier")
    mode = signature.declare_sort("Mode")
    for name in hazards:
        signature.declare_constant(name, hazard)
    for name in ("dose_limiter", "occlusion_alarm", "battery_monitor"):
        signature.declare_constant(name, barrier)
    for name in ("infusing", "standby", "maintenance"):
        signature.declare_constant(name, mode)
    signature.declare_predicate("guards", barrier, hazard)
    signature.declare_predicate("active_in", barrier, mode)
    signature.declare_predicate("mitigated_in", hazard, mode)
    return signature


def main() -> None:
    hazards = ["overdose", "air_embolism", "power_loss"]
    signature = build_signature(hazards)

    h, b, m = Var("H"), Var("B"), Var("M")
    hazard_sort = next(s for s in signature.sorts if s.name == "Hazard")
    mode_sort = next(s for s in signature.sorts if s.name == "Mode")

    # Domain facts: which barrier guards which hazard, active in which
    # modes.  (The argument's premises.)
    facts = []
    coverage = {
        "overdose": "dose_limiter",
        "air_embolism": "occlusion_alarm",
        "power_loss": "battery_monitor",
    }
    for hazard_name, barrier_name in coverage.items():
        facts.append(FolAtom(Atom(
            "guards", (Const(barrier_name), Const(hazard_name))
        )))
        for mode_name in ("infusing", "standby", "maintenance"):
            facts.append(FolAtom(Atom(
                "active_in", (Const(barrier_name), Const(mode_name))
            )))
            # Inference rule, grounded: a guarding barrier active in a
            # mode mitigates the hazard in that mode.
            facts.append(FolImplies(
                FolAtom(Atom("guards", (Const(barrier_name),
                                        Const(hazard_name)))),
                FolImplies(
                    FolAtom(Atom("active_in", (Const(barrier_name),
                                               Const(mode_name)))),
                    FolAtom(Atom("mitigated_in", (Const(hazard_name),
                                                  Const(mode_name)))),
                ),
            ))

    # The safety claim: every hazard is mitigated in every mode.
    claim = ForAll(h, hazard_sort, ForAll(
        m, mode_sort,
        FolAtom(Atom("mitigated_in", (h, m))),
    ))

    print("=== The quantified safety claim ===")
    print(" ", claim)
    print()
    grounded = ground(signature, claim)
    print("=== Grounded over the finite domains "
          f"({len(str(grounded))} chars of propositional logic) ===")
    print()

    holds = fol_entails(signature, facts, claim)
    print(f"claim entailed by the domain facts: {holds}")
    assert holds
    print()

    # §III.N's limit: 'only its logical structure'.  Omit a hazard from
    # the declared sort entirely — the world has a fourth hazard
    # (free-flow) the analysis missed — and the formal argument still
    # validates, because the machine quantifies over the *declared*
    # set, not the real one.
    print("=== The structural blind spot ===")
    incomplete = build_signature(["overdose", "air_embolism"])
    # Rebuild the fact set for the reduced signature.
    facts_small = []
    for hazard_name, barrier_name in list(coverage.items())[:2]:
        facts_small.append(FolAtom(Atom(
            "guards", (Const(barrier_name), Const(hazard_name))
        )))
        for mode_name in ("infusing", "standby", "maintenance"):
            facts_small.append(FolAtom(Atom(
                "active_in", (Const(barrier_name), Const(mode_name))
            )))
            facts_small.append(FolImplies(
                FolAtom(Atom("guards", (Const(barrier_name),
                                        Const(hazard_name)))),
                FolImplies(
                    FolAtom(Atom("active_in", (Const(barrier_name),
                                               Const(mode_name)))),
                    FolAtom(Atom("mitigated_in", (Const(hazard_name),
                                                  Const(mode_name)))),
                ),
            ))
    hazard_small = next(
        s for s in incomplete.sorts if s.name == "Hazard"
    )
    mode_small = next(s for s in incomplete.sorts if s.name == "Mode")
    claim_small = ForAll(h, hazard_small, ForAll(
        m, mode_small, FolAtom(Atom("mitigated_in", (h, m))),
    ))
    still_holds = fol_entails(incomplete, facts_small, claim_small)
    print(f"with free-flow and power-loss missing from the hazard "
          f"sort, the 'all hazards mitigated' claim still validates: "
          f"{still_holds}")
    assert still_holds
    print()
    print("'A proof checker cannot know whether a set used in a formal,")
    print(" deductive argument is complete with respect to the real")
    print(" world entity it models.' (§V.B)")


if __name__ == "__main__":
    main()
