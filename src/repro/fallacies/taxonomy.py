"""The fallacy taxonomy: formal versus informal.

§IV of the paper builds on Damer's textbook taxonomy [42] and the
Greenwell et al. safety-argument fallacy taxonomy [40], [44]:

* A **formal fallacy** 'is a flaw in the form of an argument': replace
  the identifiers with meaningless symbols and the flaw is still visible.
  Damer's list of eight is reproduced as :class:`FormalFallacy`.
* An **informal fallacy** 'cannot be detected through examination of
  argument form alone' — equivocation (Aristotle, 350 BCE), arguing from
  ignorance, and the seven kinds Greenwell et al. actually found in three
  real safety arguments (§V.B), encoded with their published counts in
  :data:`GREENWELL_FINDINGS`.

The central empirical datum of §V.B is preserved here as data and verified
by the benchmarks: **none of the seven kinds found in practice is strictly
formal** — so a mechanical checker that 'will be able to capture logical
fallacies' (Sokolsky et al., §III.N) addresses none of the fallacy kinds
actually observed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Mapping

__all__ = [
    "FallacyCategory",
    "FormalFallacy",
    "InformalFallacy",
    "FallacyInfo",
    "CATALOGUE",
    "GREENWELL_FINDINGS",
    "greenwell_total",
    "describe",
]


class FallacyCategory(enum.Enum):
    """Damer's fundamental split (§IV.A / §IV.B)."""

    FORMAL = "formal"
    INFORMAL = "informal"


class FormalFallacy(enum.Enum):
    """Damer's eight formal fallacies, as listed in §IV.A."""

    BEGGING_THE_QUESTION = "begging_the_question"
    INCOMPATIBLE_PREMISES = "incompatible_premises"
    PREMISE_CONCLUSION_CONTRADICTION = "premise_conclusion_contradiction"
    DENYING_THE_ANTECEDENT = "denying_the_antecedent"
    AFFIRMING_THE_CONSEQUENT = "affirming_the_consequent"
    FALSE_CONVERSION = "false_conversion"
    UNDISTRIBUTED_MIDDLE = "undistributed_middle"
    ILLICIT_DISTRIBUTION = "illicit_distribution"


class InformalFallacy(enum.Enum):
    """Informal fallacies discussed in the paper.

    The first seven are the kinds Greenwell et al. found in real safety
    arguments (§V.B, items (a)-(g)); the remainder are informal fallacies
    the paper discusses directly (equivocation in Figure 1; arguing from
    ignorance in §IV.B).
    """

    DRAWING_WRONG_CONCLUSION = "drawing_wrong_conclusion"
    FALLACIOUS_USE_OF_LANGUAGE = "fallacious_use_of_language"
    FALLACY_OF_COMPOSITION = "fallacy_of_composition"
    HASTY_INDUCTIVE_GENERALISATION = "hasty_inductive_generalisation"
    OMISSION_OF_KEY_EVIDENCE = "omission_of_key_evidence"
    RED_HERRING = "red_herring"
    USING_WRONG_REASONS = "using_wrong_reasons"
    EQUIVOCATION = "equivocation"
    ARGUING_FROM_IGNORANCE = "arguing_from_ignorance"


@dataclass(frozen=True)
class FallacyInfo:
    """Catalogue entry: definition plus mechanisability verdict.

    ``machine_detectable`` records the paper's §IV/§V analysis of whether
    *formal verification alone* can find instances; the per-kind
    ``analysis`` strings paraphrase the §V.B discussion of why machine
    checking falls short for the informal kinds.
    """

    name: str
    category: FallacyCategory
    definition: str
    machine_detectable: bool
    analysis: str


CATALOGUE: Mapping[FormalFallacy | InformalFallacy, FallacyInfo] = {
    FormalFallacy.BEGGING_THE_QUESTION: FallacyInfo(
        "begging the question", FallacyCategory.FORMAL,
        "the conclusion also appears among the premises",
        True,
        "syntactic: C is both conclusion and premise (§IV.A)",
    ),
    FormalFallacy.INCOMPATIBLE_PREMISES: FallacyInfo(
        "incompatible premises", FallacyCategory.FORMAL,
        "the premises cannot all be true together",
        True,
        "a SAT check on the premise set finds the inconsistency",
    ),
    FormalFallacy.PREMISE_CONCLUSION_CONTRADICTION: FallacyInfo(
        "contradiction between premise and conclusion",
        FallacyCategory.FORMAL,
        "a premise contradicts the conclusion",
        True,
        "a SAT check on premises plus conclusion finds the clash",
    ),
    FormalFallacy.DENYING_THE_ANTECEDENT: FallacyInfo(
        "denying the antecedent", FallacyCategory.FORMAL,
        "from p -> q and not-p, concluding not-q",
        True,
        "the invalid implication-form is recognisable structurally",
    ),
    FormalFallacy.AFFIRMING_THE_CONSEQUENT: FallacyInfo(
        "affirming the consequent", FallacyCategory.FORMAL,
        "from p -> q and q, concluding p",
        True,
        "the invalid implication-form is recognisable structurally",
    ),
    FormalFallacy.FALSE_CONVERSION: FallacyInfo(
        "false conversion", FallacyCategory.FORMAL,
        "converting an A or O categorical proposition "
        "(from 'All S are P' inferring 'All P are S')",
        True,
        "conversion validity depends only on the proposition form",
    ),
    FormalFallacy.UNDISTRIBUTED_MIDDLE: FallacyInfo(
        "undistributed middle term", FallacyCategory.FORMAL,
        "a syllogism whose middle term is distributed in neither premise",
        True,
        "distribution is computable from proposition forms",
    ),
    FormalFallacy.ILLICIT_DISTRIBUTION: FallacyInfo(
        "illicit distribution of an end term", FallacyCategory.FORMAL,
        "a term distributed in the conclusion but not in its premise",
        True,
        "distribution is computable from proposition forms",
    ),
    InformalFallacy.DRAWING_WRONG_CONCLUSION: FallacyInfo(
        "drawing the wrong conclusion", FallacyCategory.INFORMAL,
        "concluding something the premises do not actually establish",
        False,
        "one can assert that a conclusion follows from formal premises "
        "that don't support it (e.g. code_reviewed & unit_tests_passed "
        "=> meets_deadlines); human review of asserted rules is needed "
        "(§V.B)",
    ),
    InformalFallacy.FALLACIOUS_USE_OF_LANGUAGE: FallacyInfo(
        "fallacious use of language", FallacyCategory.INFORMAL,
        "ambiguity in the language carrying the argument",
        False,
        "symbols might be unambiguous, but the natural language that "
        "binds them to a real-world meaning can be ambiguous (§V.B)",
    ),
    InformalFallacy.FALLACY_OF_COMPOSITION: FallacyInfo(
        "fallacy of composition", FallacyCategory.INFORMAL,
        "concluding the whole has a property because each part does, "
        "where parts can interact",
        False,
        "a theorem prover cannot know how elements in the real world "
        "can interact (§V.B)",
    ),
    InformalFallacy.HASTY_INDUCTIVE_GENERALISATION: FallacyInfo(
        "hasty inductive generalisation", FallacyCategory.INFORMAL,
        "claiming a proposition true for all members because it is "
        "true for some",
        False,
        "a proof checker cannot know whether a set used in a formal "
        "argument is complete with respect to the real-world entity it "
        "models (§V.B)",
    ),
    InformalFallacy.OMISSION_OF_KEY_EVIDENCE: FallacyInfo(
        "omission of key evidence", FallacyCategory.INFORMAL,
        "leaving out evidence essential to the claim",
        False,
        "detecting omission requires understanding what evidence is key; "
        "formalisation can force assertions but cannot validate them "
        "(§V.B)",
    ),
    InformalFallacy.RED_HERRING: FallacyInfo(
        "red herring", FallacyCategory.INFORMAL,
        "introducing an irrelevant consideration as though it supported "
        "the claim",
        False,
        "proof checkers ignore formally irrelevant premises, but an "
        "asserted rule can launder an irrelevant premise into support, "
        "and mechanical confidence assessment would then inflate (§V.B)",
    ),
    InformalFallacy.USING_WRONG_REASONS: FallacyInfo(
        "using the wrong reasons", FallacyCategory.INFORMAL,
        "premises not appropriate to the claim",
        False,
        "e.g. asserting wcet(task_1, 250) on the basis of unit test "
        "results; human review of asserted premises is needed (§V.B)",
    ),
    InformalFallacy.EQUIVOCATION: FallacyInfo(
        "equivocation", FallacyCategory.INFORMAL,
        "one identifier carries different meanings in different parts "
        "of the argument",
        False,
        "the Desert Bank argument of Figure 1: formally valid, but "
        "'bank' names two different real-world entities; computers "
        "process form, not meaning (§IV.C)",
    ),
    InformalFallacy.ARGUING_FROM_IGNORANCE: FallacyInfo(
        "arguing from ignorance", FallacyCategory.INFORMAL,
        "arguing a claim true (or false) because there is no evidence "
        "to the contrary",
        False,
        "such arguments look very like legitimate arguments for the "
        "absence of something; acceptability turns on the adequacy of "
        "the search procedure, which only a human can judge (§IV.B)",
    ),
}


#: Greenwell et al.'s findings from three real safety arguments, exactly
#: as the paper reports them in §V.B items (a)-(g): 45 instances across
#: seven kinds, none strictly formal.
GREENWELL_FINDINGS: Mapping[InformalFallacy, int] = {
    InformalFallacy.DRAWING_WRONG_CONCLUSION: 3,
    InformalFallacy.FALLACIOUS_USE_OF_LANGUAGE: 10,
    InformalFallacy.FALLACY_OF_COMPOSITION: 2,
    InformalFallacy.HASTY_INDUCTIVE_GENERALISATION: 4,
    InformalFallacy.OMISSION_OF_KEY_EVIDENCE: 5,
    InformalFallacy.RED_HERRING: 5,
    InformalFallacy.USING_WRONG_REASONS: 16,
}


def greenwell_total() -> int:
    """Total fallacy instances Greenwell et al. report (45)."""
    return sum(GREENWELL_FINDINGS.values())


def describe(fallacy: FormalFallacy | InformalFallacy) -> FallacyInfo:
    """Catalogue lookup."""
    return CATALOGUE[fallacy]
