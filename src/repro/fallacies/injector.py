"""Seeded fallacy injection for the experiments.

The §VI experiments need arguments with *known* defects: ground truth
against which reviewer (human-model) and tool performance can be scored.
The injector plants both fallacy families:

* **formal** fallacies are injected into the formal rendering of an
  argument step (a :class:`~repro.fallacies.formal_detector.FormalArgument`
  built from a template), producing instances of each Damer form;
* **informal** fallacies are injected into GSN arguments as text/structure
  mutations matching the Greenwell kinds — e.g. red-herring solution
  nodes, universal claims over sampled evidence, deleted key evidence,
  reused homonyms, inappropriate evidence citations.

Every injection is recorded in an :class:`InjectionRecord` carrying the
kind and location, so experiments can compute hit/miss rates exactly.
All randomness flows through a caller-supplied :class:`random.Random`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from ..core.argument import Argument, LinkKind
from ..core.nodes import Node, NodeType
from ..logic.propositional import Atom, Formula, Implies, Not, parse
from .formal_detector import FormalArgument
from .taxonomy import (
    FormalFallacy,
    GREENWELL_FINDINGS,
    InformalFallacy,
)

__all__ = [
    "InjectionRecord",
    "SeededFormalArgument",
    "make_formal_argument",
    "inject_formal",
    "inject_informal",
    "seed_greenwell_argument",
]


@dataclass(frozen=True)
class InjectionRecord:
    """Ground truth for one injected fallacy."""

    fallacy: FormalFallacy | InformalFallacy
    location: str
    detail: str

    @property
    def is_formal(self) -> bool:
        return isinstance(self.fallacy, FormalFallacy)

    def __str__(self) -> str:
        return f"{self.fallacy.value} at {self.location}: {self.detail}"


@dataclass(frozen=True)
class SeededFormalArgument:
    """A formal argument plus its injected-fallacy ground truth."""

    argument: FormalArgument
    records: tuple[InjectionRecord, ...]

    @property
    def is_clean(self) -> bool:
        return not self.records


def _fresh_atoms(rng: random.Random, count: int) -> list[Atom]:
    pool = [
        "hazards_managed", "tests_passed", "review_done", "wcet_bounded",
        "spec_met", "redundant_path", "monitor_active", "training_done",
        "proc_followed", "field_ok", "alarm_works", "fails_safe",
    ]
    names = rng.sample(pool, count)
    return [Atom(name) for name in names]


def make_formal_argument(
    rng: random.Random, valid: bool = True, size: int = 3
) -> FormalArgument:
    """A randomly shaped but deterministic modus-ponens-chain argument.

    Valid arguments chain ``a1 -> a2 -> ... -> an`` with ``a1`` asserted,
    concluding ``an``; invalid ones conclude an atom never derived.
    """
    size = max(2, size)
    atoms = _fresh_atoms(rng, size + 1)
    premises: list[Formula] = [atoms[0]]
    for left, right in zip(atoms, atoms[1:]):
        premises.append(Implies(left, right))
    conclusion: Formula = atoms[-1] if valid else Atom("unrelated_claim")
    rng.shuffle(premises)
    return FormalArgument(tuple(premises), conclusion)


def inject_formal(
    rng: random.Random,
    fallacy: FormalFallacy,
    size: int = 3,
) -> SeededFormalArgument:
    """Construct a formal argument exhibiting exactly the named fallacy."""
    size = max(2, size)
    atoms = _fresh_atoms(rng, size + 1)
    chain: list[Formula] = [
        Implies(left, right) for left, right in zip(atoms, atoms[1:])
    ]
    record = InjectionRecord(fallacy, "premises", fallacy.value)

    if fallacy is FormalFallacy.BEGGING_THE_QUESTION:
        conclusion: Formula = atoms[-1]
        premises = chain + [conclusion]
        return SeededFormalArgument(
            FormalArgument(tuple(premises), conclusion), (record,)
        )
    if fallacy is FormalFallacy.INCOMPATIBLE_PREMISES:
        premises = [atoms[0], Not(atoms[0])] + chain
        return SeededFormalArgument(
            FormalArgument(tuple(premises), atoms[-1]), (record,)
        )
    if fallacy is FormalFallacy.PREMISE_CONCLUSION_CONTRADICTION:
        premises = [atoms[0]] + chain
        return SeededFormalArgument(
            FormalArgument(tuple(premises), Not(atoms[0])), (record,)
        )
    if fallacy is FormalFallacy.DENYING_THE_ANTECEDENT:
        premises = [Implies(atoms[0], atoms[1]), Not(atoms[0])]
        return SeededFormalArgument(
            FormalArgument(tuple(premises), Not(atoms[1])), (record,)
        )
    if fallacy is FormalFallacy.AFFIRMING_THE_CONSEQUENT:
        premises = [Implies(atoms[0], atoms[1]), atoms[1]]
        return SeededFormalArgument(
            FormalArgument(tuple(premises), atoms[0]), (record,)
        )
    raise ValueError(
        f"{fallacy.value} is a categorical-syllogism fallacy; build it "
        "with repro.logic.syllogism instead"
    )


#: Text fragments used when mutating GSN arguments, per informal kind.
_RED_HERRING_TEXTS = (
    "The development team has ISO 9001 certification",
    "The previous product generation won an industry award",
    "Management is strongly committed to safety culture",
    "The test lab was recently refurbished",
)

_SAMPLED_EVIDENCE_TEXTS = (
    "A sample of 12 of the deployed units was inspected",
    "Several representative scenarios were tested",
    "Selected code modules were reviewed",
)


def inject_informal(
    argument: Argument,
    fallacy: InformalFallacy,
    rng: random.Random,
) -> tuple[Argument, InjectionRecord]:
    """Mutate a copy of a GSN argument to exhibit an informal fallacy.

    Returns the mutated copy and the ground-truth record.  Each mutation
    leaves the argument *formally* unchanged or still well-formed — these
    defects are invisible to syntax checking and formal verification,
    which the §VI.A experiment verifies detector-side.
    """
    mutated = argument.copy(name=f"{argument.name}+{fallacy.value}")
    goals = [n for n in mutated.goals if mutated.supporters(n.identifier)]
    if not goals:
        raise ValueError("argument has no supported goals to mutate")
    target = rng.choice(goals)

    if fallacy is InformalFallacy.RED_HERRING:
        identifier = f"Sn_rh_{rng.randrange(10_000)}"
        with mutated.batch():
            mutated.add_node(Node(
                identifier, NodeType.SOLUTION,
                rng.choice(_RED_HERRING_TEXTS),
            ))
            mutated.supported_by(target.identifier, identifier)
        return mutated, InjectionRecord(
            fallacy, identifier,
            f"irrelevant support added under {target.identifier}",
        )

    if fallacy is InformalFallacy.HASTY_INDUCTIVE_GENERALISATION:
        universal = target.with_text(
            "All units satisfy the requirement in every operating mode"
        )
        with mutated.batch():
            mutated.replace_node(universal)
            supporters = mutated.supporters(target.identifier)
            if supporters:
                child = supporters[0]
                mutated.replace_node(child.with_text(
                    rng.choice(_SAMPLED_EVIDENCE_TEXTS)
                ))
        return mutated, InjectionRecord(
            fallacy, target.identifier,
            "universal claim now rests on sampled evidence",
        )

    if fallacy is InformalFallacy.OMISSION_OF_KEY_EVIDENCE:
        solutions = [
            n for n in mutated.solutions
            if n.identifier in {
                s.identifier
                for s in mutated.walk(target.identifier)
            }
        ] or mutated.solutions
        if not solutions:
            raise ValueError("argument has no solutions to omit")
        # Prefer outright removal where sibling support keeps the
        # structure syntactically intact; otherwise swap the key
        # artefact for vacuous filler.  Either way the *semantic* gap is
        # invisible to structural checking (§IV.C).
        removable = [
            s for s in solutions
            if all(
                len(mutated.supporters(p.identifier)) >= 2
                for p in mutated.parents(s.identifier)
            )
        ]
        if removable:
            victim = rng.choice(removable)
            mutated.remove_node(victim.identifier)
            detail = (
                f"key evidence {victim.identifier} removed; claim "
                "retained on remaining support"
            )
        else:
            victim = rng.choice(solutions)
            mutated.replace_node(victim.with_text(
                "Minutes of the design review meeting"
            ))
            detail = (
                f"key evidence {victim.identifier} replaced by vacuous "
                "meeting minutes"
            )
        return mutated, InjectionRecord(
            fallacy, victim.identifier, detail
        )

    if fallacy is InformalFallacy.EQUIVOCATION:
        first = target.with_text(
            "The monitor detects every failure of the primary channel"
        )
        with mutated.batch():
            mutated.replace_node(first)
            other_goals = [
                g for g in mutated.goals
                if g.identifier != target.identifier
            ]
            if other_goals:
                second = rng.choice(other_goals)
                mutated.replace_node(second.with_text(
                    "The monitor is mounted where the operator can see it"
                ))
                location = f"{target.identifier},{second.identifier}"
            else:
                location = target.identifier
        return mutated, InjectionRecord(
            fallacy, location,
            "'monitor' used for a supervision process and a display",
        )

    if fallacy is InformalFallacy.USING_WRONG_REASONS:
        with mutated.batch():
            mutated.replace_node(target.with_text(
                "Worst-case execution time of task_1 is below 250 ms"
            ))
            supporters = mutated.supporters(target.identifier)
            if supporters:
                mutated.replace_node(supporters[0].with_text(
                    "Unit test results for task_1"
                ))
        return mutated, InjectionRecord(
            fallacy, target.identifier,
            "timing claim supported by unit-test evidence (§V.B example)",
        )

    if fallacy is InformalFallacy.FALLACY_OF_COMPOSITION:
        mutated.replace_node(target.with_text(
            "The integrated system is deadlock-free because each "
            "component is deadlock-free in isolation"
        ))
        return mutated, InjectionRecord(
            fallacy, target.identifier,
            "whole-from-parts step over an interaction-sensitive property",
        )

    if fallacy is InformalFallacy.DRAWING_WRONG_CONCLUSION:
        mutated.replace_node(target.with_text(
            "The system is acceptably secure against insider attack"
        ))
        return mutated, InjectionRecord(
            fallacy, target.identifier,
            "conclusion changed to one the support does not establish",
        )

    if fallacy is InformalFallacy.FALLACIOUS_USE_OF_LANGUAGE:
        mutated.replace_node(target.with_text(
            "The system handles failures appropriately in reasonable time"
        ))
        return mutated, InjectionRecord(
            fallacy, target.identifier,
            "claim made ambiguous ('appropriately', 'reasonable')",
        )

    if fallacy is InformalFallacy.ARGUING_FROM_IGNORANCE:
        mutated.replace_node(target.with_text(
            "The hazard cannot occur because no occurrence has been "
            "reported in service"
        ))
        return mutated, InjectionRecord(
            fallacy, target.identifier,
            "claim rests on absence of counter-reports",
        )

    raise ValueError(f"no injection recipe for {fallacy}")


def seed_greenwell_argument(
    base: Argument, rng: random.Random
) -> tuple[Argument, list[InjectionRecord]]:
    """Inject the exact Greenwell distribution (§V.B) into copies of a base.

    Applies 45 mutations — 3 wrong-conclusion, 10 language, 2 composition,
    4 hasty generalisation, 5 omission, 5 red herring, 16 wrong reasons —
    chaining them over one working copy.  Returns the final argument and
    the ground-truth records (in injection order).
    """
    working = base.copy(name=f"{base.name}+greenwell")
    records: list[InjectionRecord] = []
    plan: list[InformalFallacy] = []
    for fallacy, count in GREENWELL_FINDINGS.items():
        plan.extend([fallacy] * count)
    rng.shuffle(plan)
    for fallacy in plan:
        try:
            working, record = inject_informal(working, fallacy, rng)
        except ValueError:
            # The argument ran out of suitable nodes (e.g. all solutions
            # already omitted); re-inject on a fresh copy of the base
            # region by re-adding a disposable evidence node first.
            filler = f"Sn_fill_{rng.randrange(100_000)}"
            goals = [
                g for g in working.goals
                if working.supporters(g.identifier)
            ] or working.goals
            host = rng.choice(goals)
            with working.batch():
                working.add_node(Node(
                    filler, NodeType.SOLUTION,
                    "Regression test campaign record",
                ))
                working.supported_by(host.identifier, filler)
            working, record = inject_informal(working, fallacy, rng)
        records.append(record)
    return working, records
