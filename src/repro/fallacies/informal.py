"""Informal fallacies: representations and (deliberately weak) heuristics.

§IV.C: 'Computers process the form of arguments but not their real-world
meaning.  Thus, mechanical verification might identify formal fallacies
but cannot show the absence of informal fallacies.'  This module supplies:

* :func:`desert_bank_equivocation` — the paper's Figure 1 as an analysed
  object: the formally-derivable conclusion, the two senses of 'bank',
  and a proof (via the mini-Prolog engine) that formal validation passes;
* lexical *heuristics* for a few informal fallacies (homonym reuse,
  hedging vocabulary, absence-of-evidence phrasing).  These are what a
  tool vendor could actually ship, and their measured precision/recall on
  seeded corpora is poor *by design of the world, not of the code*: the
  tests pin down concrete false positives and false negatives for each,
  giving the paper's §IV.C claim an executable demonstration;
* :func:`wrong_reasons_check` — the one semi-mechanisable case: with a
  curated topic/evidence-kind ontology (domain knowledge supplied by
  humans), inappropriate evidence citations can be flagged.  The catch —
  the ontology *is* the human judgment, just cached — is discussed in
  DESIGN.md and measured in the §VI.A experiment.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..core.analysis import ensure_argument, iter_subject_nodes
from ..core.argument import Argument
from ..core.case import AssuranceCase
from ..core.evidence import APPROPRIATE_KINDS, EvidenceItem
from ..logic.prolog import Program, desert_bank_program
from .taxonomy import InformalFallacy

__all__ = [
    "EquivocationWitness",
    "desert_bank_equivocation",
    "HeuristicFlag",
    "homonym_heuristic",
    "hasty_generalisation_heuristic",
    "ignorance_heuristic",
    "wrong_reasons_check",
    "KNOWN_HOMONYMS",
    "PER_NODE_HEURISTICS",
]


@dataclass(frozen=True)
class EquivocationWitness:
    """The anatomy of one equivocation, Desert-Bank style."""

    identifier: str
    sense_a: str
    sense_b: str
    formally_derivable: bool
    real_world_true: bool

    @property
    def is_sound(self) -> bool:
        return self.formally_derivable and self.real_world_true

    def explain(self) -> str:
        return (
            f"identifier {self.identifier!r} means {self.sense_a!r} in one "
            f"premise and {self.sense_b!r} in another; the derivation is "
            f"{'valid' if self.formally_derivable else 'invalid'} in form "
            f"but the conclusion is "
            f"{'true' if self.real_world_true else 'false'} in the world"
        )


def desert_bank_equivocation() -> EquivocationWitness:
    """Figure 1, executed: formal validation passes, the world disagrees.

    Runs the actual SLD derivation of ``adjacent(desert_bank, river)`` on
    the verbatim program and packages the ground truth a human knows: the
    Desert Bank (a financial institution) is not next to a river.
    """
    program = desert_bank_program()
    derivable = program.provable("adjacent(desert_bank, river)")
    return EquivocationWitness(
        identifier="bank",
        sense_a="financial institution",
        sense_b="sloping land beside a river",
        formally_derivable=derivable,
        real_world_true=False,
    )


@dataclass(frozen=True)
class HeuristicFlag:
    """One heuristic hit: where, what, and the (claimed) fallacy kind."""

    node_id: str
    fallacy: InformalFallacy
    detail: str

    def __str__(self) -> str:
        return f"{self.node_id}: {self.fallacy.value} — {self.detail}"


#: English homonyms that appear in engineering prose.  Any such lexicon is
#: necessarily incomplete — which is the point: sense distinctions live in
#: the world, not in the text.
KNOWN_HOMONYMS: Mapping[str, tuple[str, str]] = {
    "bank": ("financial institution", "river bank"),
    "crane": ("lifting machine", "bird"),
    "terminal": ("airport building", "computer console"),
    "bus": ("vehicle", "data bus"),
    "monitor": ("display device", "supervision process"),
    "ground": ("earth/soil", "electrical ground"),
    "fault": ("geological fracture", "system malfunction"),
    "cell": ("battery cell", "biological cell"),
}


def homonym_heuristic(argument: Argument) -> list[HeuristicFlag]:
    """Flag nodes re-using a known homonym elsewhere in the argument.

    A lexical stand-in for equivocation detection.  It cannot see senses:
    it flags *every* cross-node reuse of a listed homonym, producing false
    positives whenever a term is reused consistently (the common case) and
    false negatives for any homonym missing from the lexicon.

    Also accepts a :class:`repro.store.StoredArgument`: the scan streams
    node shards without hydrating, so a saved 100k-node case can be swept
    for homonym reuse in O(flags) memory.
    """
    flags: list[HeuristicFlag] = []
    users: dict[str, list[str]] = {}
    for node in iter_subject_nodes(argument):
        words = set(re.findall(r"[a-z_]+", node.text.lower()))
        for homonym in KNOWN_HOMONYMS:
            if homonym in words:
                users.setdefault(homonym, []).append(node.identifier)
    for homonym, node_ids in users.items():
        if len(node_ids) < 2:
            continue
        senses = KNOWN_HOMONYMS[homonym]
        for node_id in node_ids:
            flags.append(HeuristicFlag(
                node_id,
                InformalFallacy.EQUIVOCATION,
                f"term {homonym!r} also used in "
                f"{[n for n in node_ids if n != node_id]}; could mean "
                f"{senses[0]!r} or {senses[1]!r}",
            ))
    return flags


_SAMPLE_PATTERN = re.compile(
    r"\b(some|sample[sd]?|a few|several|representative|selected)\b",
    re.IGNORECASE,
)


def hasty_generalisation_heuristic(
    argument: Argument,
) -> list[HeuristicFlag]:
    """Flag universal claims supported by sampled-evidence vocabulary.

    Pure surface patterning: it cannot judge whether the sample actually
    warrants the generalisation (the 0.1% sample and the 99.9% census look
    identical at this level).

    Needs the support relation (a node's children), so a stored argument
    hydrates first — the fallback path; the purely per-node heuristics
    stream instead.
    """
    argument = ensure_argument(argument)
    flags: list[HeuristicFlag] = []
    for node in argument.nodes:
        universal = re.search(
            r"\b(all|every|always|never|no)\b", node.text, re.IGNORECASE
        )
        if not universal:
            continue
        for child in argument.supporters(node.identifier):
            if _SAMPLE_PATTERN.search(child.text):
                flags.append(HeuristicFlag(
                    node.identifier,
                    InformalFallacy.HASTY_INDUCTIVE_GENERALISATION,
                    f"universal claim supported by sampled evidence "
                    f"({child.identifier}: {child.text[:40]!r}...)",
                ))
    return flags


_IGNORANCE_PATTERN = re.compile(
    r"\bno (evidence|indication|report|record)s? (of|that|to the "
    r"contrary)\b|\bnot (been )?(observed|reported|seen)\b"
    r"|\bno\b[^.]{0,40}\b(observed|reported|seen|recorded)\b"
    r"|\bnever (been )?(observed|reported|seen)\b",
    re.IGNORECASE,
)


def ignorance_heuristic(argument: Argument) -> list[HeuristicFlag]:
    """Flag absence-of-evidence phrasing.

    §IV.B's householder shows why this over-triggers: 'no car was seen
    after opening the garage and looking' is a *sound* absence argument.
    The heuristic cannot evaluate search-procedure adequacy, so it flags
    sound and unsound instances alike.

    Purely per-node, so a :class:`repro.store.StoredArgument` streams
    shard by shard without hydration.
    """
    flags: list[HeuristicFlag] = []
    for node in iter_subject_nodes(argument):
        if _IGNORANCE_PATTERN.search(node.text):
            flags.append(HeuristicFlag(
                node.identifier,
                InformalFallacy.ARGUING_FROM_IGNORANCE,
                f"absence-of-evidence phrasing: {node.text[:60]!r}",
            ))
    return flags


#: The stream-safe per-node scans: each walks ``iter_subject_nodes``
#: and nothing else, so the rule-scope auditor
#: (:mod:`repro.analysis_static`) holds them to the same no-hydration
#: contract as scoped rules.  ``hasty_generalisation_heuristic`` is
#: deliberately absent — it needs link structure and documents its
#: ``ensure_argument`` fallback.
PER_NODE_HEURISTICS = (homonym_heuristic, ignorance_heuristic)


def wrong_reasons_check(
    case: AssuranceCase,
    claim_topics: Mapping[str, str],
) -> list[HeuristicFlag]:
    """Flag solutions citing evidence inappropriate for the claim's topic.

    ``claim_topics`` maps goal identifiers to topic labels ('timing',
    'hazard', ...) — the curated human judgment.  With that ontology in
    hand, the check is mechanical: §V.B's example of asserting
    ``wcet(task_1, 250)`` from unit-test results is flagged because
    TESTING is not an appropriate kind for the 'timing' topic.
    """
    flags: list[HeuristicFlag] = []
    argument = case.argument
    for goal_id, topic in claim_topics.items():
        if topic not in APPROPRIATE_KINDS:
            continue
        for node in argument.walk(goal_id):
            if not case.citations(node.identifier):
                continue
            for item in case.citations(node.identifier):
                if not item.appropriate_for(topic):
                    flags.append(HeuristicFlag(
                        node.identifier,
                        InformalFallacy.USING_WRONG_REASONS,
                        f"claim topic {topic!r} but evidence "
                        f"{item.identifier!r} is {item.kind.value}",
                    ))
    return flags
