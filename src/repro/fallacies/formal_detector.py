"""Mechanical detection of the formal fallacies.

This is the checker that the surveyed proposals assume: given a formalised
argument — premises and a conclusion in propositional logic, or a
categorical syllogism — it finds every *formal* fallacy (§IV.A).  Its
contract, exercised by property tests and the §VI.A experiment:

* **complete for formal fallacies**: every injected formal fallacy is
  reported;
* **blind to informal fallacies**: arguments whose only defect is
  informal (equivocation, wrong reasons, ...) are passed as VALID — the
  paper's central point, demonstrated on the Desert Bank in the tests.

Detection strategy: pattern checks identify the *named* invalid forms
(denying the antecedent, affirming the consequent, false conversion,
distribution errors); SAT-based semantic checks identify begging the
question, incompatible premises, and premise/conclusion contradiction;
and an overall entailment verdict labels any remaining non sequitur.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..logic.entailment import (
    consistent,
    entails,
    equivalent_sat,
    minimal_inconsistent_subsets,
)
from ..logic.propositional import Formula, Implies, Not
from ..logic.syllogism import (
    CategoricalProposition,
    Syllogism,
    check_syllogism,
    converse,
    valid_conversion,
)
from .taxonomy import FormalFallacy

__all__ = [
    "FormalArgument",
    "Finding",
    "Verdict",
    "AnalysisResult",
    "detect",
    "detect_syllogism",
    "detect_conversion",
]


@dataclass(frozen=True)
class FormalArgument:
    """A formalised argument step: premises |- conclusion."""

    premises: tuple[Formula, ...]
    conclusion: Formula

    def __str__(self) -> str:
        premise_text = "; ".join(str(p) for p in self.premises)
        return f"{premise_text} |- {self.conclusion}"


@dataclass(frozen=True)
class Finding:
    """One detected formal fallacy."""

    fallacy: FormalFallacy
    detail: str

    def __str__(self) -> str:
        return f"{self.fallacy.value}: {self.detail}"


class Verdict(enum.Enum):
    """Overall classification of a formal argument."""

    VALID = "valid"                 # premises entail the conclusion
    FALLACIOUS = "fallacious"       # a named formal fallacy was found
    NON_SEQUITUR = "non_sequitur"   # invalid but matching no named form


@dataclass(frozen=True)
class AnalysisResult:
    """Verdict plus itemised findings."""

    verdict: Verdict
    findings: tuple[Finding, ...]

    @property
    def fallacies(self) -> tuple[FormalFallacy, ...]:
        return tuple(f.fallacy for f in self.findings)

    def __str__(self) -> str:
        if not self.findings:
            return self.verdict.value
        items = "; ".join(str(f) for f in self.findings)
        return f"{self.verdict.value} ({items})"


def detect(argument: FormalArgument) -> AnalysisResult:
    """Analyse a propositional argument for formal fallacies.

    Note the deliberate ordering: *named-form* checks run even when the
    argument is (vacuously) valid — e.g. with incompatible premises
    everything is entailed, yet the fallacy must still be reported,
    because a human asserting inconsistent premises has made an error
    regardless of classical logic's explosion principle.
    """
    findings: list[Finding] = []
    premises = list(argument.premises)
    conclusion = argument.conclusion

    # Begging the question: the conclusion is (equivalent to) a premise.
    for index, premise in enumerate(premises):
        if premise == conclusion or equivalent_sat(premise, conclusion):
            findings.append(Finding(
                FormalFallacy.BEGGING_THE_QUESTION,
                f"premise {index + 1} ({premise}) restates the conclusion",
            ))
            break

    # Incompatible premises.
    if premises and not consistent(premises):
        cores = minimal_inconsistent_subsets(premises, max_size=3)
        core_text = (
            ", ".join(
                "{" + ", ".join(str(premises[i]) for i in core) + "}"
                for core in cores[:2]
            )
            or "the full premise set"
        )
        findings.append(Finding(
            FormalFallacy.INCOMPATIBLE_PREMISES,
            f"premises cannot all hold: {core_text}",
        ))

    # Premise/conclusion contradiction.
    for index, premise in enumerate(premises):
        if not consistent([premise, conclusion]):
            findings.append(Finding(
                FormalFallacy.PREMISE_CONCLUSION_CONTRADICTION,
                f"premise {index + 1} ({premise}) contradicts the "
                f"conclusion ({conclusion})",
            ))
            break

    entailed = entails(premises, conclusion) if premises else False

    # The named invalid implication forms only matter when the argument
    # is not independently valid.
    if not entailed:
        findings.extend(_implication_form_fallacies(premises, conclusion))

    if entailed:
        verdict = Verdict.VALID if not findings else Verdict.FALLACIOUS
    else:
        verdict = (
            Verdict.FALLACIOUS if findings else Verdict.NON_SEQUITUR
        )
    return AnalysisResult(verdict, tuple(findings))


def _implication_form_fallacies(
    premises: Sequence[Formula], conclusion: Formula
) -> list[Finding]:
    findings: list[Finding] = []
    premise_set = set(premises)
    for premise in premises:
        if not isinstance(premise, Implies):
            continue
        antecedent = premise.antecedent
        consequent = premise.consequent
        # Denying the antecedent: p -> q, ~p |- ~q.
        if (
            _negation_of(antecedent) in premise_set
            and conclusion == _negation_of(consequent)
        ):
            findings.append(Finding(
                FormalFallacy.DENYING_THE_ANTECEDENT,
                f"from {premise} and {_negation_of(antecedent)}, "
                f"concluding {conclusion}",
            ))
        # Affirming the consequent: p -> q, q |- p.
        if consequent in premise_set and conclusion == antecedent:
            findings.append(Finding(
                FormalFallacy.AFFIRMING_THE_CONSEQUENT,
                f"from {premise} and {consequent}, concluding {conclusion}",
            ))
    return findings


def _negation_of(formula: Formula) -> Formula:
    if isinstance(formula, Not):
        return formula.operand
    return Not(formula)


def detect_syllogism(syllogism: Syllogism) -> AnalysisResult:
    """Analyse a categorical syllogism for the distribution fallacies.

    Only the two Damer-named fallacies yield :class:`Finding` entries;
    other classical rule violations (exclusive premises, quality
    mismatches, the existential fallacy) still make the syllogism invalid
    but are reported through a NON_SEQUITUR verdict because Damer's
    catalogue gives them no formal-fallacy name.
    """
    findings: list[Finding] = []
    unnamed = 0
    for violation in check_syllogism(syllogism):
        if violation.rule == "undistributed middle":
            findings.append(Finding(
                FormalFallacy.UNDISTRIBUTED_MIDDLE, violation.detail
            ))
        elif violation.rule.startswith("illicit"):
            findings.append(Finding(
                FormalFallacy.ILLICIT_DISTRIBUTION, violation.detail
            ))
        else:
            unnamed += 1
    if findings:
        verdict = Verdict.FALLACIOUS
    elif unnamed:
        verdict = Verdict.NON_SEQUITUR
    else:
        verdict = Verdict.VALID
    return AnalysisResult(verdict, tuple(findings))


def detect_conversion(
    premise: CategoricalProposition,
    conclusion: CategoricalProposition,
) -> AnalysisResult:
    """Check an immediate conversion inference for false conversion."""
    if conclusion != converse(premise):
        return AnalysisResult(Verdict.NON_SEQUITUR, (Finding(
            FormalFallacy.FALSE_CONVERSION,
            f"{conclusion} is not the converse of {premise}",
        ),))
    if valid_conversion(premise):
        return AnalysisResult(Verdict.VALID, ())
    return AnalysisResult(Verdict.FALLACIOUS, (Finding(
        FormalFallacy.FALSE_CONVERSION,
        f"{premise.form.value}-form propositions do not convert: "
        f"{premise} does not yield {conclusion}",
    ),))
