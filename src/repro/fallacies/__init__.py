"""Fallacy machinery: taxonomy, mechanical detection, and injection.

Implements §IV–V of the paper: Damer's eight formal fallacies with a
complete mechanical detector, the informal catalogue (including the seven
kinds Greenwell et al. found in practice, with their published counts),
executable demonstrations of what formalism cannot catch (the Desert Bank
of Figure 1), and a seeded injector supplying ground truth to the §VI
experiments.
"""

from .formal_detector import (
    AnalysisResult,
    Finding,
    FormalArgument,
    Verdict,
    detect,
    detect_conversion,
    detect_syllogism,
)
from .informal import (
    PER_NODE_HEURISTICS,
    EquivocationWitness,
    HeuristicFlag,
    desert_bank_equivocation,
    hasty_generalisation_heuristic,
    homonym_heuristic,
    ignorance_heuristic,
    wrong_reasons_check,
)
from .injector import (
    InjectionRecord,
    SeededFormalArgument,
    inject_formal,
    inject_informal,
    make_formal_argument,
    seed_greenwell_argument,
)
from .taxonomy import (
    CATALOGUE,
    FallacyCategory,
    FallacyInfo,
    FormalFallacy,
    GREENWELL_FINDINGS,
    InformalFallacy,
    describe,
    greenwell_total,
)

__all__ = [
    "AnalysisResult",
    "Finding",
    "FormalArgument",
    "Verdict",
    "detect",
    "detect_conversion",
    "detect_syllogism",
    "EquivocationWitness",
    "HeuristicFlag",
    "desert_bank_equivocation",
    "hasty_generalisation_heuristic",
    "homonym_heuristic",
    "ignorance_heuristic",
    "wrong_reasons_check",
    "PER_NODE_HEURISTICS",
    "InjectionRecord",
    "SeededFormalArgument",
    "inject_formal",
    "inject_informal",
    "make_formal_argument",
    "seed_greenwell_argument",
    "CATALOGUE",
    "FallacyCategory",
    "FallacyInfo",
    "FormalFallacy",
    "GREENWELL_FINDINGS",
    "InformalFallacy",
    "describe",
    "greenwell_total",
]
