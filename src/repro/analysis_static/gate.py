"""The audit gate: every shipped rule passes the auditor, at import.

Importing this module runs the rule-scope auditor over everything the
repo ships — ``GSN_STANDARD_RULES``, ``DENNEY_PAI_RULES``, the claim
language's shipped rule sets (the obligation-discharge rule and the
compiled claims kernel, whose rules are ``functools.partial``
instantiations of the :mod:`repro.claims.templates` bodies — the
auditor unwraps and audits the templates themselves), and the
stream-safe fallacy per-node heuristics — and records the findings in
:data:`SHIPPED_FINDINGS`.  :func:`assert_shipped_clean` turns any
finding into an :class:`AuditGateError` listing every violation with
its source location; the CI ``static-analysis`` job and the
``static``-marked tests both call it, so a rule that breaks the
authoring contract cannot merge.

The hydration *warning* the legacy ``scoped_from_legacy`` adapter earns
(its whole point is ``ctx.argument()``) is documented and expected —
the gate fails on **errors** only, but re-exports the warnings so the
test-suite can pin them.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Tuple

from ..claims.exemplar import GSN_OBLIGATION_RULES, KERNEL_CLAIMS_RULES
from ..core.wellformed import DENNEY_PAI_RULES, GSN_STANDARD_RULES
from ..fallacies.informal import PER_NODE_HEURISTICS
from .auditor import (
    AuditFinding,
    audit_rule_set,
    audit_streaming_scan,
    errors_only,
)

__all__ = [
    "AuditGateError",
    "SHIPPED_RULE_SETS",
    "STREAMING_SCANS",
    "SHIPPED_FINDINGS",
    "assert_shipped_clean",
]


class AuditGateError(AssertionError):
    """A shipped rule violates the statically enforced contract."""


#: Every rule set the engine ships; new sets must be registered here to
#: come under the gate.
SHIPPED_RULE_SETS: "Tuple[Any, ...]" = (
    GSN_STANDARD_RULES,
    DENNEY_PAI_RULES,
    GSN_OBLIGATION_RULES,
    KERNEL_CLAIMS_RULES,
)

#: Stream-safe per-node scans shipped outside the rule engine proper.
STREAMING_SCANS: "Tuple[Callable[..., Any], ...]" = PER_NODE_HEURISTICS


def _audit_everything() -> "list[AuditFinding]":
    findings: "list[AuditFinding]" = []
    for rule_set in SHIPPED_RULE_SETS:
        findings.extend(audit_rule_set(rule_set))
    for scan in STREAMING_SCANS:
        findings.extend(audit_streaming_scan(scan))
    return findings


#: Computed once, at import of the gate.
SHIPPED_FINDINGS: "list[AuditFinding]" = _audit_everything()


def assert_shipped_clean(
    findings: "Iterable[AuditFinding] | None" = None,
) -> None:
    """Raise :class:`AuditGateError` if any shipped rule errs.

    Warnings (the documented legacy-adapter hydration path and
    unreadable-source notices) do not fail the gate; errors always do.
    """
    pool = SHIPPED_FINDINGS if findings is None else list(findings)
    errors = errors_only(pool)
    if errors:
        listing = "\n".join(f"  {finding}" for finding in errors)
        raise AuditGateError(
            f"{len(errors)} shipped rule(s) violate the rule-authoring "
            f"contract:\n{listing}"
        )
