"""Rule-scope auditor: static proof that scoped rules keep their promise.

Every scoped rule declares, by its scope, which slice of the
:class:`~repro.core.analysis.RuleContext` it may read (the table lives
in :data:`repro.core.analysis.SCOPE_SURFACE`).  The four execution
modes — serial, streaming, parallel, incremental — are equivalent
*only* while rules honour that declaration: an undeclared context read
silently changes what a chunked or incremental run observes, a
mutation corrupts shared state under the parallel executor, and a
nondeterminism source breaks byte-stable violation output.

This module walks each rule callable's AST (``inspect.getsource`` +
``ast.parse``), resolving closure cells and helper calls **one level
deep**, and emits structured :class:`AuditFinding`\\ s:

``undeclared-context-access``
    reading a context attribute outside the scope's declared surface;
``hydration-forcing``
    touching the documented hydration fallback (``ctx.argument()``) or
    the subject's ``load``/``argument``/``ensure_argument`` escape
    hatches — an error for per-node/per-link rules and streaming
    scans, a warning for global rules (the documented legacy path);
``mutation``
    assigning to / deleting from the context or subject, or calling a
    mutator method (``add``, ``append``, ``add_node`` …) on them;
``nondeterminism``
    ``random``/``time``/``secrets``/``uuid`` use, ``datetime.now``,
    bare ``id()``, or iteration over a set feeding rule output;
``unreadable-source``
    the callable's source could not be retrieved (C extension,
    interactive definition) — the auditor cannot vouch for it.

Findings carry severity, rule name, and a real ``path:line`` source
location (line numbers are rebased onto the defining file).
"""

from __future__ import annotations

import ast
import functools
import inspect
import textwrap
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional, Sequence

from ..core.analysis import HYDRATING_CONTEXT, SCOPE_SURFACE, Scope

__all__ = [
    "AuditFinding",
    "audit_rule",
    "audit_rules",
    "audit_rule_set",
    "audit_callable",
    "audit_streaming_scan",
    "errors_only",
    "KIND_UNDECLARED",
    "KIND_HYDRATION",
    "KIND_MUTATION",
    "KIND_NONDETERMINISM",
    "KIND_UNREADABLE",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
]

KIND_UNDECLARED = "undeclared-context-access"
KIND_HYDRATION = "hydration-forcing"
KIND_MUTATION = "mutation"
KIND_NONDETERMINISM = "nondeterminism"
KIND_UNREADABLE = "unreadable-source"

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

# Modules whose mere use inside a rule makes violation output depend on
# wall-clock, process identity, or RNG state.
_NONDET_MODULES = frozenset({"random", "time", "secrets", "uuid"})
_NONDET_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})

# Method names that mutate their receiver.  Covers the builtin
# container mutators plus the Argument/analysis-context write API.
_MUTATOR_METHODS = frozenset({
    "add", "append", "extend", "insert", "remove", "discard", "pop",
    "popitem", "clear", "update", "setdefault", "sort", "reverse",
    "add_node", "add_nodes", "add_link", "add_links", "remove_node",
    "remove_link", "replace_node", "note_node", "note_link",
    "apply_op", "reset", "finalise", "batch",
})

# Subject attributes whose access forces hydration of the full
# argument rather than streaming over shards.
_SUBJECT_HYDRATORS = frozenset({"load", "argument", "ensure_argument"})

# Helper callables that are part of the documented stream-safe API;
# the auditor trusts them by name and does not descend into them.
_TRUSTED_HELPERS = frozenset({
    "iter_subject_nodes", "iter_subject_links", "looks_propositional",
    "len", "isinstance", "getattr_static", "sorted", "list", "tuple",
    "str", "repr", "format", "min", "max", "any", "all", "sum",
    "enumerate", "zip", "map", "filter", "frozenset",
})


@dataclass(frozen=True)
class AuditFinding:
    """One statically detected contract violation in a rule callable."""

    rule: str
    kind: str
    severity: str
    message: str
    path: str
    line: int

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}"

    def __str__(self) -> str:
        return (
            f"{self.location}: [{self.severity}] {self.rule}: "
            f"{self.kind}: {self.message}"
        )


def errors_only(findings: Iterable[AuditFinding]) -> "list[AuditFinding]":
    """Filter *findings* down to hard errors (drop warnings)."""
    return [f for f in findings if f.severity == SEVERITY_ERROR]


# -- source retrieval ---------------------------------------------------------


def _unwrap_callable(fn: Callable[..., Any]) -> Callable[..., Any]:
    """Follow ``functools.partial`` wrappers down to the real function.

    The claim-language compiler parameterises module-level rule
    templates with ``functools.partial`` (the bound arguments are the
    compiled declaration's constants).  ``inspect.signature`` already
    reports only the *remaining* parameters of a partial, so role
    inference needs no adjustment — but ``inspect.getsource`` refuses
    partials outright, which would demote every compiled rule to an
    unreadable-source warning.  Unwrapping restores full audit
    coverage of the template body.
    """
    while isinstance(fn, functools.partial):
        fn = fn.func
    return fn


def _load_function_tree(
    fn: Callable[..., Any],
) -> "tuple[Optional[ast.AST], str, Optional[str]]":
    """Parse *fn*'s source; returns (tree, path, error).

    Line numbers in the returned tree are rebased so they refer to the
    defining file, not to the dedented snippet.
    """
    try:
        source = inspect.getsource(fn)
        path = inspect.getsourcefile(fn) or "<unknown>"
    except (OSError, TypeError) as exc:
        return None, "<unknown>", str(exc)
    try:
        tree = ast.parse(textwrap.dedent(source))
    except SyntaxError:
        # A decorated or clause-embedded lambda can produce a snippet
        # that does not parse standalone; wrap defensively.
        try:
            tree = ast.parse("if True:\n" + textwrap.indent(source, "    "))
        except SyntaxError as exc:
            return None, path, f"unparsable source: {exc}"
    # Locate the actual function node inside whatever statement
    # inspect handed us (decorators, assignments around lambdas, ...).
    target: Optional[ast.AST] = None
    code = getattr(fn, "__code__", None)
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if code is None or node.name == fn.__name__:
                target = node
                break
        elif isinstance(node, ast.Lambda) and code is not None:
            target = node
            break
    if target is None:
        return None, path, "no function definition found in source"
    if code is not None:
        ast.increment_lineno(target, code.co_firstlineno - target.lineno)
    return target, path, None


def _positional_params(fn_node: ast.AST) -> "list[str]":
    args = getattr(fn_node, "args", None)
    if args is None:
        return []
    return [a.arg for a in list(args.posonlyargs) + list(args.args)]


# -- the AST visitor ----------------------------------------------------------


class _RuleVisitor(ast.NodeVisitor):
    """Checks one callable's body against the rule-authoring contract.

    ``roles`` maps local names to either ``"ctx"`` or ``"subject"`` —
    the two privileged objects a rule receives.  Everything the
    contract restricts is phrased as "what may you do with these".
    """

    def __init__(
        self,
        auditor: "_Auditor",
        rule_name: str,
        path: str,
        roles: "dict[str, str]",
        allowed_context: "frozenset[str]",
        hydration_severity: str,
        fn: Callable[..., Any],
        depth: int,
    ) -> None:
        self.auditor = auditor
        self.rule_name = rule_name
        self.path = path
        self.roles = dict(roles)
        self.allowed_context = allowed_context
        self.hydration_severity = hydration_severity
        self.fn = fn
        self.depth = depth
        # Local names known to hold sets (for the iteration-order check).
        self.set_locals: "set[str]" = set()
        # Function-local imports: alias -> module name.  Closure cells
        # and globals cover module-level imports; these cover
        # ``import time`` inside the rule body itself.
        self.module_aliases: "dict[str, str]" = {}
        # Names bound by ``from random import random`` and friends.
        self.nondet_names: "set[str]" = set()
        # (line, role-name) pairs already flagged as mutation, so the
        # same expression is not double-reported as undeclared access.
        self._mutation_sites: "set[tuple[int, str]]" = set()

    # -- finding emission ---------------------------------------------

    def _emit(self, kind: str, severity: str, message: str,
              node: ast.AST) -> None:
        self.auditor.findings.append(AuditFinding(
            rule=self.rule_name,
            kind=kind,
            severity=severity,
            message=message,
            path=self.path,
            line=getattr(node, "lineno", 0),
        ))

    # -- role plumbing --------------------------------------------------

    def _role_of(self, node: ast.AST) -> Optional[str]:
        """Role name if *node* is (rooted at) a privileged object."""
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            node = node.value
        if isinstance(node, ast.Name):
            return self.roles.get(node.id)
        return None

    def _root_name(self, node: ast.AST) -> Optional[str]:
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            node = node.value
        return node.id if isinstance(node, ast.Name) else None

    # -- mutation --------------------------------------------------------

    def _check_mutation_target(self, target: ast.AST) -> None:
        # Rebinding a bare local (``x = ...``) is fine; writing *into*
        # a privileged object (``ctx.x = ...``, ``subject.meta[k] = v``)
        # is not.
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._check_mutation_target(elt)
            return
        if not isinstance(target, (ast.Attribute, ast.Subscript)):
            return
        role = self._role_of(target)
        if role is not None:
            self._emit(
                KIND_MUTATION, SEVERITY_ERROR,
                f"assignment into the {role} object", target,
            )
            root = self._root_name(target)
            if root is not None:
                self._mutation_sites.add(
                    (getattr(target, "lineno", 0), root)
                )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_mutation_target(target)
        self._track_set_binding(node.targets, node.value)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_mutation_target(node.target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_mutation_target(node.target)
        if node.value is not None:
            self._track_set_binding([node.target], node.value)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            role = self._role_of(target)
            if role is not None:
                self._emit(
                    KIND_MUTATION, SEVERITY_ERROR,
                    f"delete on the {role} object", target,
                )
        self.generic_visit(node)

    # -- imports ----------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            self.module_aliases[bound] = alias.name.split(".")[0]
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = (node.module or "").split(".")[0]
        if module in _NONDET_MODULES:
            for alias in node.names:
                self.nondet_names.add(alias.asname or alias.name)
        elif module == "datetime":
            for alias in node.names:
                if alias.name in _NONDET_DATETIME_ATTRS:
                    self.nondet_names.add(alias.asname or alias.name)
        self.generic_visit(node)

    def _module_of(self, name: str) -> Optional[str]:
        """The module a local name refers to, if determinable."""
        if name in self.module_aliases:
            return self.module_aliases[name]
        resolved = self._resolve_name(name)
        if inspect.ismodule(resolved):
            return getattr(resolved, "__name__", None)
        return None

    # -- attribute access -----------------------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        base = node.value
        if isinstance(base, ast.Name):
            role = self.roles.get(base.id)
            if role == "ctx":
                self._check_ctx_attribute(node, base.id)
            elif role == "subject":
                self._check_subject_attribute(node, base.id)
            else:
                self._check_module_attribute(node, base.id)
        elif isinstance(base, ast.Attribute):
            # e.g. datetime.datetime.now
            self._check_dotted_nondet(node)
        self.generic_visit(node)

    def _check_ctx_attribute(self, node: ast.Attribute, name: str) -> None:
        attr = node.attr
        if attr in HYDRATING_CONTEXT:
            self._emit(
                KIND_HYDRATION, self.hydration_severity,
                f"ctx.{attr}() forces full-argument hydration; the "
                f"streaming and incremental modes cannot honour it "
                f"cheaply", node,
            )
            return
        if attr in self.allowed_context:
            return
        if (getattr(node, "lineno", 0), name) in self._mutation_sites:
            return  # already reported as mutation at this site
        allowed = ", ".join(sorted(self.allowed_context))
        self._emit(
            KIND_UNDECLARED, SEVERITY_ERROR,
            f"ctx.{attr} is outside this scope's declared surface "
            f"({{{allowed}}})", node,
        )

    def _check_subject_attribute(self, node: ast.Attribute,
                                 name: str) -> None:
        if node.attr in _SUBJECT_HYDRATORS:
            self._emit(
                KIND_HYDRATION, self.hydration_severity,
                f"subject.{node.attr} forces hydration of the full "
                f"argument", node,
            )
        # Plain data reads on the subject (node.text, link.kind, ...)
        # are the whole point of per-node/per-link rules — allowed.

    def _check_module_attribute(self, node: ast.Attribute,
                                name: str) -> None:
        module_name = self._module_of(name)
        if module_name in _NONDET_MODULES:
            self._emit(
                KIND_NONDETERMINISM, SEVERITY_ERROR,
                f"{module_name}.{node.attr} makes violation output "
                f"depend on {module_name} state", node,
            )
        elif module_name == "datetime" and \
                node.attr in _NONDET_DATETIME_ATTRS:
            self._emit(
                KIND_NONDETERMINISM, SEVERITY_ERROR,
                f"datetime.{node.attr} reads the wall clock", node,
            )

    def _check_dotted_nondet(self, node: ast.Attribute) -> None:
        parts: "list[str]" = [node.attr]
        cur: ast.AST = node.value
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if isinstance(cur, ast.Name):
            parts.append(cur.id)
        dotted = ".".join(reversed(parts))
        module_name = self._module_of(parts[-1])
        if module_name in _NONDET_MODULES:
            self._emit(
                KIND_NONDETERMINISM, SEVERITY_ERROR,
                f"{dotted} makes violation output depend on "
                f"{module_name} state", node,
            )
        elif module_name == "datetime" and \
                node.attr in _NONDET_DATETIME_ATTRS:
            self._emit(
                KIND_NONDETERMINISM, SEVERITY_ERROR,
                f"{dotted} reads the wall clock", node,
            )

    # -- calls -----------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "id" and func.id not in self.roles:
                self._emit(
                    KIND_NONDETERMINISM, SEVERITY_ERROR,
                    "id() values vary between runs and processes",
                    node,
                )
            elif func.id == "ensure_argument":
                self._emit(
                    KIND_HYDRATION, self.hydration_severity,
                    "ensure_argument() hydrates the full argument",
                    node,
                )
            elif func.id in self.nondet_names:
                self._emit(
                    KIND_NONDETERMINISM, SEVERITY_ERROR,
                    f"{func.id}() was imported from a nondeterminism "
                    f"source", node,
                )
            elif func.id not in _TRUSTED_HELPERS:
                self._maybe_descend_helper(node, func.id)
        elif isinstance(func, ast.Attribute):
            role = self._role_of(func.value)
            if role is not None and func.attr in _MUTATOR_METHODS:
                self._emit(
                    KIND_MUTATION, SEVERITY_ERROR,
                    f".{func.attr}() mutates the {role} object",
                    func,
                )
                root = self._root_name(func.value)
                if root is not None:
                    self._mutation_sites.add(
                        (getattr(func, "lineno", 0), root)
                    )
        self.generic_visit(node)

    def _maybe_descend_helper(self, node: ast.Call, name: str) -> None:
        """Audit a helper call one level deep, mapping roles through."""
        if self.depth >= 1:
            return
        helper = self._resolve_name(name)
        if helper is None or not inspect.isfunction(helper):
            return
        # Map call-site roles onto the helper's positional params.
        try:
            params = [
                p.name for p in
                inspect.signature(helper).parameters.values()
                if p.kind in (p.POSITIONAL_ONLY,
                              p.POSITIONAL_OR_KEYWORD)
            ]
        except (TypeError, ValueError):
            return
        helper_roles: "dict[str, str]" = {}
        for i, arg in enumerate(node.args):
            if i >= len(params):
                break
            if isinstance(arg, ast.Name) and arg.id in self.roles:
                helper_roles[params[i]] = self.roles[arg.id]
        for kw in node.keywords:
            if kw.arg is not None and isinstance(kw.value, ast.Name) \
                    and kw.value.id in self.roles:
                helper_roles[kw.arg] = self.roles[kw.value.id]
        self.auditor.audit_callable_body(
            helper,
            rule_name=self.rule_name,
            roles=helper_roles,
            allowed_context=self.allowed_context,
            hydration_severity=self.hydration_severity,
            depth=self.depth + 1,
        )

    # -- nondeterministic iteration ---------------------------------------

    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Name) and \
                node.func.id in ("set",):
            return True
        if isinstance(node, ast.Name) and node.id in self.set_locals:
            return True
        if isinstance(node, ast.BinOp) and \
                isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
            return self._is_set_expr(node.left) or \
                self._is_set_expr(node.right)
        return False

    def _track_set_binding(self, targets: Sequence[ast.AST],
                           value: ast.AST) -> None:
        if not self._is_set_expr(value):
            # frozenset() is order-stable to iterate *within one
            # process* but still hash-ordered; treat it the same.
            if not (isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Name)
                    and value.func.id == "frozenset"):
                return
        for target in targets:
            if isinstance(target, ast.Name):
                self.set_locals.add(target.id)

    def visit_For(self, node: ast.For) -> None:
        if self._is_set_expr(node.iter):
            self._emit(
                KIND_NONDETERMINISM, SEVERITY_ERROR,
                "iterating a set in a rule body feeds hash order "
                "into violation output; sort it first", node.iter,
            )
        self.generic_visit(node)

    def _check_comprehensions(self, node: ast.AST) -> None:
        for comp in getattr(node, "generators", []):
            if self._is_set_expr(comp.iter):
                self._emit(
                    KIND_NONDETERMINISM, SEVERITY_ERROR,
                    "comprehension over a set feeds hash order into "
                    "violation output; sort it first", comp.iter,
                )

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._check_comprehensions(node)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._check_comprehensions(node)
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._check_comprehensions(node)
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._check_comprehensions(node)
        self.generic_visit(node)

    # -- name resolution ---------------------------------------------------

    def _resolve_name(self, name: str) -> Any:
        """Resolve *name* via the callable's closure, then globals."""
        code = getattr(self.fn, "__code__", None)
        closure = getattr(self.fn, "__closure__", None)
        if code is not None and closure:
            freevars = code.co_freevars
            if name in freevars:
                cell = closure[freevars.index(name)]
                try:
                    return cell.cell_contents
                except ValueError:
                    return None
        return getattr(self.fn, "__globals__", {}).get(name)


# -- the auditor driver -------------------------------------------------------


class _Auditor:
    """Accumulates findings across a rule and its one-deep helpers."""

    def __init__(self) -> None:
        self.findings: "list[AuditFinding]" = []
        self._seen: "set[tuple[int, str, frozenset]]" = set()

    def audit_callable_body(
        self,
        fn: Callable[..., Any],
        *,
        rule_name: str,
        roles: "dict[str, str]",
        allowed_context: "frozenset[str]",
        hydration_severity: str,
        depth: int,
    ) -> None:
        fn = _unwrap_callable(fn)
        key = (id(fn), rule_name, frozenset(roles.items()))
        if key in self._seen:
            return
        self._seen.add(key)
        tree, path, error = _load_function_tree(fn)
        if tree is None:
            self.findings.append(AuditFinding(
                rule=rule_name,
                kind=KIND_UNREADABLE,
                severity=SEVERITY_WARNING,
                message=f"cannot audit: {error}",
                path=path,
                line=0,
            ))
            return
        visitor = _RuleVisitor(
            self, rule_name, path, roles, allowed_context,
            hydration_severity, fn, depth,
        )
        for stmt in getattr(tree, "body", []) if not isinstance(
                tree, ast.Lambda) else [tree.body]:
            visitor.visit(stmt)


def audit_callable(
    fn: Callable[..., Any],
    *,
    rule_name: str,
    scope: Scope,
    roles: "dict[str, str]",
) -> "list[AuditFinding]":
    """Audit one callable against the contract for *scope*."""
    hydration_severity = (
        SEVERITY_WARNING if scope is Scope.GLOBAL else SEVERITY_ERROR
    )
    auditor = _Auditor()
    auditor.audit_callable_body(
        fn,
        rule_name=rule_name,
        roles=roles,
        allowed_context=SCOPE_SURFACE[scope],
        hydration_severity=hydration_severity,
        depth=0,
    )
    return auditor.findings


def _rule_roles(fn: Callable[..., Any], scope: Scope) -> "dict[str, str]":
    """Infer ctx/subject role names from a rule fn's signature.

    Per-node and per-link rules take ``(subject, ctx)``; global rules
    take ``(ctx,)``.  Falls back gracefully when the signature is
    unreadable — the source audit will then flag it as unreadable too.
    """
    try:
        params = [
            p.name for p in inspect.signature(fn).parameters.values()
            if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
        ]
    except (TypeError, ValueError):
        return {}
    roles: "dict[str, str]" = {}
    if scope is Scope.GLOBAL:
        if params:
            roles[params[0]] = "ctx"
    else:
        if params:
            roles[params[0]] = "subject"
        if len(params) > 1:
            roles[params[1]] = "ctx"
    return roles


def audit_rule(rule: Any) -> "list[AuditFinding]":
    """Audit one :class:`~repro.core.analysis.ScopedRule`."""
    findings = audit_callable(
        rule.fn,
        rule_name=rule.name,
        scope=rule.scope,
        roles=_rule_roles(rule.fn, rule.scope),
    )
    delta_fn = getattr(rule, "delta_fn", None)
    if delta_fn is not None:
        # Delta functions see the same global surface plus the delta
        # payload; audit them under the GLOBAL contract.
        try:
            params = [
                p.name for p in
                inspect.signature(delta_fn).parameters.values()
                if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
            ]
        except (TypeError, ValueError):
            params = []
        roles = {params[0]: "ctx"} if params else {}
        findings.extend(audit_callable(
            delta_fn,
            rule_name=f"{rule.name}#delta",
            scope=Scope.GLOBAL,
            roles=roles,
        ))
    return findings


def audit_rules(rules: Iterable[Any]) -> "list[AuditFinding]":
    """Audit every rule in *rules*, concatenating findings."""
    findings: "list[AuditFinding]" = []
    for rule in rules:
        findings.extend(audit_rule(rule))
    return findings


def audit_rule_set(rule_set: Any) -> "list[AuditFinding]":
    """Audit a :class:`~repro.core.wellformed.RuleSet` (duck-typed)."""
    return audit_rules(getattr(rule_set, "rules", rule_set))


def audit_streaming_scan(fn: Callable[..., Any]) -> "list[AuditFinding]":
    """Audit a streaming heuristic scan (e.g. a fallacy per-node pass).

    A scan takes the storage-duck subject as its first parameter and
    must stay on the stream-safe API (``iter_subject_nodes`` /
    ``iter_subject_links``); any hydration escape hatch is an error.
    """
    try:
        params = [
            p.name for p in inspect.signature(fn).parameters.values()
            if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
        ]
    except (TypeError, ValueError):
        params = []
    roles = {params[0]: "subject"} if params else {}
    auditor = _Auditor()
    auditor.audit_callable_body(
        fn,
        rule_name=getattr(fn, "__name__", repr(fn)),
        roles=roles,
        allowed_context=frozenset(),
        hydration_severity=SEVERITY_ERROR,
        depth=0,
    )
    return auditor.findings
