"""casefsck: offline integrity verification of a store directory.

The reader (:mod:`repro.store.reader`) verifies shards lazily, as it
streams them into the engine; this module is the *offline* counterpart
— it cross-checks every artifact of a ``*.store`` directory against the
manifest **without loading the argument into the engine**, so an
operator can audit a 100k-node case (or a whole fleet of them) from a
cron job.

What gets checked, file by file:

* the **manifest**: valid JSON, supported ``schema`` /
  ``journal_schema``, known ``kind`` and ``id_hash``, a consistent
  shard map (``shard_count`` vs. the node/link shard name lists, every
  referenced name present in the ``shards`` metadata map), supported
  ``compression``, case keys when ``kind == "case"``;
* every **base shard**: file present, gzip stream intact, CRC-32 of
  the decompressed bytes vs. the manifest, the **content-address** in
  the filename vs. the actual content (catching a manifest edited to
  match tampered bytes), line count, per-line JSON decode + required
  record keys, node-type/link-kind vocabulary, **id-hash partition**
  (``crc32(id) % shard_count`` puts each record in the shard holding
  it), per-shard ascending ``seq``, global id uniqueness, and the seq
  domain being exactly ``range(total)``;
* every **journal segment**: the same seal checks plus op-shape
  validation, with torn-tail classification — damage confined to the
  *final* segment is one interrupted append and is reported
  ``recoverable`` (the state ``ignore_torn_tail=True`` would surface),
  damage in the *middle* is real corruption and is ``fatal``;
* **counts**: base records plus journal deltas must equal the
  manifest's ``node_count``/``link_count`` (skipped, with a note, when
  a torn tail makes the journal's contribution unknowable);
* **citations** (cases): a citation naming an absent or non-solution
  node is fatal in a journal-less store and a note in a journaled one
  (the loader documents and drops it there);
* the **search sidecar** (when the manifest references one): the same
  seal / content-address / CRC checks as shards, header and posting
  record shapes — damage is ``recoverable`` (the index is derived data;
  rebuild it) — and *staleness* (a previous base generation, an unknown
  tokenizer version, a journal watermark past the current journal) is a
  ``note``, never a failure: readers simply fall back to the scan;
* **orphans**: files matching the store's own naming scheme that the
  manifest does not reference — exactly the inventory
  :func:`repro.store.journal.gc` would sweep (superseded search
  sidecars included) — reported as notes;
* the **writer lease**: a live ``writer.lease`` means a writer holds
  the store right now (fsck may be racing its commit), a stale one
  means a writer crashed mid-operation; both are notes naming the
  holder, never orphans — the lease protocol itself retires them.

Findings carry a severity (:data:`FSCK_FATAL` / :data:`FSCK_RECOVERABLE`
/ :data:`FSCK_NOTE`) and *name the damaged artifact*.  The CLI lives at
``python -m repro.store.fsck``; exit status is nonzero iff any fatal
finding exists (or, with ``--strict``, any recoverable one).
"""

from __future__ import annotations

import gzip
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Optional, Sequence
from zlib import crc32

from ..core.argument import LinkKind
from ..core.nodes import NodeType
from ..store.format import (
    GZIP_COMPRESSION,
    ID_HASH,
    JOURNAL_SCHEMA_VERSION,
    LEASE_NAME,
    MANIFEST_NAME,
    STORE_SCHEMA_VERSION,
    shard_of,
)
from ..store.journal import _MANIFEST_TMP, _STORE_FILE
from ..store.lease import lease_is_stale, read_lease

__all__ = [
    "FsckFinding",
    "FsckReport",
    "fsck_store",
    "FSCK_FATAL",
    "FSCK_RECOVERABLE",
    "FSCK_NOTE",
]

FSCK_FATAL = "fatal"
FSCK_RECOVERABLE = "recoverable"
FSCK_NOTE = "note"

#: The content-address embedded in a sealed shard/segment filename.
_CONTENT_ADDRESS = re.compile(r"-([0-9a-f]{8})\.jsonl(?:\.gz)?$")

_NODE_KEYS = ("seq", "id", "type", "text")
_LINK_KEYS = ("seq", "source", "target", "kind")
_EVIDENCE_KEYS = ("seq", "id", "kind", "description")
_CITATION_KEYS = ("seq", "solution", "evidence")
_JOURNAL_KEYS = ("op",)

_NODE_TYPES = frozenset(t.value for t in NodeType)
_LINK_KINDS = frozenset(k.value for k in LinkKind)

_NODE_OPS = ("add_node", "remove_node")
_LINK_OPS = ("add_link", "remove_link")
_KNOWN_OPS = _NODE_OPS + _LINK_OPS + ("replace_node",)


@dataclass(frozen=True)
class FsckFinding:
    """One verification result: severity, damaged artifact, detail."""

    severity: str
    artifact: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.artifact}: {self.detail}"


@dataclass
class FsckReport:
    """Everything one :func:`fsck_store` pass learned about a store."""

    path: Path
    findings: "list[FsckFinding]" = field(default_factory=list)
    #: Unreferenced store-scheme files — gc()'s candidate inventory.
    orphans: "list[str]" = field(default_factory=list)
    shards_checked: int = 0
    segments_checked: int = 0
    records_checked: int = 0

    @property
    def ok(self) -> bool:
        return not any(f.severity == FSCK_FATAL for f in self.findings)

    @property
    def fatal(self) -> "list[FsckFinding]":
        return [f for f in self.findings if f.severity == FSCK_FATAL]

    @property
    def recoverable(self) -> "list[FsckFinding]":
        return [f for f in self.findings if f.severity == FSCK_RECOVERABLE]

    def exit_code(self, strict: bool = False) -> int:
        if not self.ok:
            return 1
        if strict and self.recoverable:
            return 1
        return 0

    def render(self) -> str:
        lines = [f"casefsck {self.path}"]
        for finding in self.findings:
            lines.append(f"  {finding}")
        verdict = "clean" if self.ok else "CORRUPT"
        if self.ok and self.recoverable:
            verdict = "recoverable"
        lines.append(
            f"  {verdict}: {self.shards_checked} shard(s), "
            f"{self.segments_checked} journal segment(s), "
            f"{self.records_checked} record(s), "
            f"{len(self.orphans)} orphan(s)"
        )
        return "\n".join(lines)


class _Fsck:
    """One verification pass over one store directory."""

    def __init__(self, path: Path) -> None:
        self.path = Path(path)
        self.report = FsckReport(path=self.path)
        self.manifest: "Optional[dict[str, Any]]" = None
        self.compression: "Optional[str]" = None
        self.shard_count = 0
        # id -> shard it was seen in, for cross-shard uniqueness.
        self._node_ids: "dict[str, str]" = {}
        self._node_types: "dict[str, str]" = {}
        self._base_node_seqs: "list[int]" = []
        self._base_link_seqs: "list[int]" = []
        self._base_nodes = 0
        self._base_links = 0
        self._journal_nodes = 0
        self._journal_links = 0
        self._torn = False
        # (artifact, detail) failures queued by _read_lines /
        # _decode_records; the caller decides their severity (base
        # shard -> fatal, journal tail -> recoverable).
        self._shard_failures: "list[tuple[str, str]]" = []

    # -- finding emission ---------------------------------------------

    def _finding(self, severity: str, artifact: str, detail: str) -> None:
        self.report.findings.append(FsckFinding(severity, artifact, detail))

    def fatal(self, artifact: str, detail: str) -> None:
        self._finding(FSCK_FATAL, artifact, detail)

    def recoverable(self, artifact: str, detail: str) -> None:
        self._finding(FSCK_RECOVERABLE, artifact, detail)

    def note(self, artifact: str, detail: str) -> None:
        self._finding(FSCK_NOTE, artifact, detail)

    # -- driver ----------------------------------------------------------

    def run(self) -> FsckReport:
        if not self._check_manifest():
            return self.report
        assert self.manifest is not None
        self._check_base_shards()
        self._check_journal()
        self._check_search_index()
        self._check_counts()
        if self.manifest.get("kind") == "case":
            self._check_case()
        self._check_orphans()
        return self.report

    # -- the manifest ------------------------------------------------------

    def _check_manifest(self) -> bool:
        manifest_path = self.path / MANIFEST_NAME
        if not self.path.is_dir():
            self.fatal(str(self.path), "not a store directory")
            return False
        if not manifest_path.exists():
            self.fatal(MANIFEST_NAME, "no store manifest")
            return False
        try:
            manifest = json.loads(manifest_path.read_bytes().decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            self.fatal(MANIFEST_NAME, f"manifest is not valid JSON ({error})")
            return False
        if not isinstance(manifest, dict):
            self.fatal(MANIFEST_NAME, "manifest is not a JSON object")
            return False
        ok = True
        if manifest.get("schema") != STORE_SCHEMA_VERSION:
            self.fatal(
                MANIFEST_NAME,
                f"unsupported store schema {manifest.get('schema')!r} "
                f"(this checker knows {STORE_SCHEMA_VERSION})",
            )
            ok = False
        if manifest.get("kind") not in ("argument", "case"):
            self.fatal(
                MANIFEST_NAME,
                f"unknown store kind {manifest.get('kind')!r}",
            )
            ok = False
        if manifest.get("id_hash") != ID_HASH:
            self.fatal(
                MANIFEST_NAME,
                f"store sharded with {manifest.get('id_hash')!r}, "
                f"this checker places records with {ID_HASH!r}",
            )
            ok = False
        shard_count = manifest.get("shard_count")
        node_shards = manifest.get("node_shards")
        link_shards = manifest.get("link_shards")
        shards = manifest.get("shards")
        if (
            not isinstance(shard_count, int)
            or shard_count < 1
            or not isinstance(node_shards, list)
            or not isinstance(link_shards, list)
            or len(node_shards) != shard_count
            or len(link_shards) != shard_count
            or not isinstance(shards, dict)
        ):
            self.fatal(
                MANIFEST_NAME,
                f"inconsistent shard map (shard_count {shard_count!r}, "
                f"{len(node_shards or ())} node / "
                f"{len(link_shards or ())} link shard names)",
            )
            return False
        compression = manifest.get("compression")
        if compression not in (None, GZIP_COMPRESSION):
            self.fatal(
                MANIFEST_NAME,
                f"unsupported shard compression {compression!r}",
            )
            ok = False
        for count_key in ("node_count", "link_count"):
            if not isinstance(manifest.get(count_key), int):
                self.fatal(
                    MANIFEST_NAME,
                    f"missing or non-integer {count_key!r}",
                )
                ok = False
        journal = manifest.get("journal", [])
        if journal:
            if not isinstance(journal, list) or not all(
                isinstance(name, str) for name in journal
            ):
                self.fatal(MANIFEST_NAME, "malformed journal segment list")
                ok = False
            elif manifest.get("journal_schema") != JOURNAL_SCHEMA_VERSION:
                self.fatal(
                    MANIFEST_NAME,
                    "unsupported journal schema "
                    f"{manifest.get('journal_schema')!r} (this checker "
                    f"knows {JOURNAL_SCHEMA_VERSION})",
                )
                ok = False
        referenced = list(node_shards) + list(link_shards) + (
            list(journal) if isinstance(journal, list) else []
        )
        if manifest.get("kind") == "case":
            for key in ("evidence_shard", "citations_shard"):
                if isinstance(manifest.get(key), str):
                    referenced.append(manifest[key])
        for name in referenced:
            meta = shards.get(name)
            if (
                not isinstance(meta, dict)
                or not isinstance(meta.get("records"), int)
                or not isinstance(meta.get("crc32"), int)
            ):
                self.fatal(
                    MANIFEST_NAME,
                    f"shard {name!r} referenced without records/crc32 "
                    f"metadata",
                )
                ok = False
        self.manifest = manifest
        self.compression = (
            compression if compression in (None, GZIP_COMPRESSION) else None
        )
        self.shard_count = shard_count
        return ok

    # -- shard plumbing ------------------------------------------------------

    def _read_lines(self, name: str) -> "Optional[list[bytes]]":
        """Read, decompress, seal-check one shard; None on any failure.

        Emits the finding itself; severity is decided by the caller via
        the returned None (journal tail handling downgrades later).
        """
        assert self.manifest is not None
        path = self.path / name
        if not path.exists():
            self._shard_failures.append((name, "file is missing"))
            return None
        raw = path.read_bytes()
        if self.compression == GZIP_COMPRESSION:
            try:
                raw = gzip.decompress(raw)
            except (OSError, EOFError) as error:
                self._shard_failures.append(
                    (name, f"gzip stream damaged ({error})")
                )
                return None
        meta = self.manifest["shards"].get(name, {})
        actual_crc = crc32(raw)
        if isinstance(meta.get("crc32"), int) and \
                meta["crc32"] != actual_crc:
            self._shard_failures.append((
                name,
                f"checksum mismatch (manifest {meta['crc32']}, "
                f"content {actual_crc})",
            ))
            return None
        address = _CONTENT_ADDRESS.search(name)
        if address and int(address.group(1), 16) != actual_crc:
            self._shard_failures.append((
                name,
                f"content-address mismatch (filename says "
                f"{address.group(1)}, content is {actual_crc:08x}) — "
                f"shard bytes and manifest were tampered together",
            ))
            return None
        lines = raw.splitlines()
        if isinstance(meta.get("records"), int) and \
                len(lines) != meta["records"]:
            self._shard_failures.append((
                name,
                f"record count mismatch (manifest {meta['records']}, "
                f"content {len(lines)} line(s))",
            ))
            return None
        return lines

    def _decode_records(
        self, name: str, lines: "list[bytes]", keys: Sequence[str]
    ) -> "Optional[list[dict[str, Any]]]":
        records: "list[dict[str, Any]]" = []
        for lineno, line in enumerate(lines, start=1):
            try:
                record = json.loads(line.decode("utf-8"))
            except (ValueError, UnicodeDecodeError) as error:
                self._shard_failures.append(
                    (name, f"line {lineno} is not valid JSON ({error})")
                )
                return None
            if not isinstance(record, dict):
                self._shard_failures.append(
                    (name, f"line {lineno} is not a store record")
                )
                return None
            missing = [key for key in keys if key not in record]
            if missing:
                self._shard_failures.append((
                    name,
                    f"line {lineno} record is missing "
                    f"{', '.join(repr(k) for k in missing)}",
                ))
                return None
            records.append(record)
        self.report.records_checked += len(records)
        return records

    # -- base shards ---------------------------------------------------------

    def _check_base_shards(self) -> None:
        assert self.manifest is not None
        for index, name in enumerate(self.manifest["node_shards"]):
            self._check_node_shard(index, name)
            self._flush_failures(FSCK_FATAL)
        for index, name in enumerate(self.manifest["link_shards"]):
            self._check_link_shard(index, name)
            self._flush_failures(FSCK_FATAL)
        if not any(
            f.severity == FSCK_FATAL for f in self.report.findings
        ):
            # A damaged shard's records never joined the seq inventory;
            # complaining about the resulting gap would only echo the
            # finding already naming that shard.
            self._check_seq_domain(
                "node", self._base_node_seqs, self.manifest["node_shards"]
            )
            self._check_seq_domain(
                "link", self._base_link_seqs, self.manifest["link_shards"]
            )

    def _flush_failures(self, severity: str) -> None:
        for artifact, detail in self._shard_failures:
            self._finding(severity, artifact, detail)
        self._shard_failures.clear()

    def _check_node_shard(self, index: int, name: str) -> None:
        lines = self._read_lines(name)
        if lines is None:
            return
        records = self._decode_records(name, lines, _NODE_KEYS)
        if records is None:
            return
        self.report.shards_checked += 1
        self._base_nodes += len(records)
        previous_seq = -1
        for record in records:
            seq, identifier = record["seq"], record["id"]
            if not isinstance(seq, int) or seq <= previous_seq:
                self.fatal(
                    name,
                    f"seq {seq!r} out of order (previous {previous_seq})",
                )
            else:
                previous_seq = seq
            if isinstance(seq, int):
                self._base_node_seqs.append(seq)
            if not isinstance(identifier, str):
                self.fatal(name, f"non-string node id {identifier!r}")
                continue
            if record["type"] not in _NODE_TYPES:
                self.fatal(
                    name,
                    f"node {identifier!r} has unknown type "
                    f"{record['type']!r}",
                )
            placed = shard_of(identifier, self.shard_count)
            if placed != index:
                self.fatal(
                    name,
                    f"node {identifier!r} violates the id-hash "
                    f"partition (hashes to shard {placed}, stored in "
                    f"shard {index})",
                )
            if identifier in self._node_ids:
                self.fatal(
                    name,
                    f"duplicate node id {identifier!r} (also in "
                    f"{self._node_ids[identifier]!r})",
                )
            else:
                self._node_ids[identifier] = name
                self._node_types[identifier] = record["type"]

    def _check_link_shard(self, index: int, name: str) -> None:
        lines = self._read_lines(name)
        if lines is None:
            return
        records = self._decode_records(name, lines, _LINK_KEYS)
        if records is None:
            return
        self.report.shards_checked += 1
        self._base_links += len(records)
        previous_seq = -1
        for record in records:
            seq, source = record["seq"], record["source"]
            if not isinstance(seq, int) or seq <= previous_seq:
                self.fatal(
                    name,
                    f"seq {seq!r} out of order (previous {previous_seq})",
                )
            else:
                previous_seq = seq
            if isinstance(seq, int):
                self._base_link_seqs.append(seq)
            if record["kind"] not in _LINK_KINDS:
                self.fatal(
                    name,
                    f"link {source!r} -> {record['target']!r} has "
                    f"unknown kind {record['kind']!r}",
                )
            if not isinstance(source, str):
                self.fatal(name, f"non-string link source {source!r}")
                continue
            placed = shard_of(source, self.shard_count)
            if placed != index:
                self.fatal(
                    name,
                    f"link from {source!r} violates the id-hash "
                    f"partition (hashes to shard {placed}, stored in "
                    f"shard {index})",
                )

    def _check_seq_domain(
        self, kind: str, seqs: "list[int]", shard_names: "list[str]"
    ) -> None:
        """Across all shards of a kind, seqs must be exactly range(n)."""
        if sorted(seqs) != list(range(len(seqs))):
            self.fatal(
                shard_names[0] if shard_names else MANIFEST_NAME,
                f"{kind} seq numbers are not the contiguous range "
                f"0..{len(seqs) - 1} across shards",
            )

    # -- the journal ---------------------------------------------------------

    def _check_journal(self) -> None:
        assert self.manifest is not None
        journal = self.manifest.get("journal", [])
        if not isinstance(journal, list):
            return
        for position, name in enumerate(journal):
            final = position == len(journal) - 1
            damaged = not self._check_segment(name)
            if not damaged:
                continue
            if final:
                self._torn = True
                for artifact, detail in self._shard_failures:
                    self.recoverable(
                        artifact,
                        f"{detail}; torn append in the final journal "
                        f"segment — recoverable via "
                        f"StoredArgument(..., ignore_torn_tail=True) "
                        f"then compact()",
                    )
                self._shard_failures.clear()
            else:
                for artifact, detail in self._shard_failures:
                    self.fatal(
                        artifact,
                        f"{detail}; damage in a non-final journal "
                        f"segment is beyond torn-tail recovery",
                    )
                self._shard_failures.clear()

    def _check_segment(self, name: str) -> bool:
        """Verify one journal segment; False if damaged (failures queued)."""
        lines = self._read_lines(name)
        if lines is None:
            return False
        records = self._decode_records(name, lines, _JOURNAL_KEYS)
        if records is None:
            return False
        for lineno, record in enumerate(records, start=1):
            op = record.get("op")
            if op not in _KNOWN_OPS:
                self._shard_failures.append(
                    (name, f"line {lineno}: unknown journal op {op!r}")
                )
                return False
            payload_ok = True
            if op == "replace_node":
                payload_ok = (
                    isinstance(record.get("old"), dict)
                    and isinstance(record.get("new"), dict)
                )
            elif op in _NODE_OPS:
                payload_ok = isinstance(record.get("node"), dict)
            elif op in _LINK_OPS:
                link = record.get("link")
                payload_ok = isinstance(link, dict) and all(
                    isinstance(link.get(k), str)
                    for k in ("source", "target", "kind")
                )
                if payload_ok and link["kind"] not in _LINK_KINDS:
                    payload_ok = False
            if not payload_ok:
                self._shard_failures.append(
                    (name, f"line {lineno}: malformed {op!r} payload")
                )
                return False
            if op == "add_node":
                self._journal_nodes += 1
            elif op == "remove_node":
                self._journal_nodes -= 1
            elif op == "add_link":
                self._journal_links += 1
            elif op == "remove_link":
                self._journal_links -= 1
        self.report.segments_checked += 1
        return True

    # -- the search sidecar ----------------------------------------------------

    def _check_search_index(self) -> None:
        """Verify the search sidecar, if the manifest references one.

        The sidecar is **derived data** — every reader falls back to the
        streaming scan without it — so nothing here is ever fatal:
        damage (bad seal, tampered content-address, malformed records)
        is ``recoverable`` with a rebuild hint, and a *stale* index
        (previous base generation, unknown tokenizer version, watermark
        past the journal) is only a ``note``.
        """
        assert self.manifest is not None
        from ..core.search import TOKENIZER_VERSION
        from ..store.search import SEARCH_SCHEMA_VERSION, base_names_crc

        name = self.manifest.get("search_index")
        if name is None:
            return
        rebuild = (
            "the search index is derived data — rebuild it with "
            "StoredArgument(...).build_search_index()"
        )
        if not isinstance(name, str):
            self.recoverable(
                MANIFEST_NAME,
                f"malformed search_index reference {name!r}; {rebuild}",
            )
            return
        shards = self.manifest.get("shards")
        meta = shards.get(name) if isinstance(shards, dict) else None
        if (
            not isinstance(meta, dict)
            or not isinstance(meta.get("records"), int)
            or not isinstance(meta.get("crc32"), int)
        ):
            self.recoverable(
                MANIFEST_NAME,
                f"search sidecar {name!r} referenced without "
                f"records/crc32 metadata; {rebuild}",
            )
            return
        lines = self._read_lines(name)
        records = (
            None if lines is None
            else self._decode_records(name, lines, ("seq", "kind"))
        )
        if records is None:
            for artifact, detail in self._shard_failures:
                self.recoverable(artifact, f"{detail}; {rebuild}")
            self._shard_failures.clear()
            return
        self.report.shards_checked += 1
        header = records[0] if records else None
        if not isinstance(header, dict) or header.get("kind") != "header":
            self.recoverable(
                name, f"first record is not the sidecar header; {rebuild}"
            )
            return
        if header.get("search_schema") != SEARCH_SCHEMA_VERSION:
            self.recoverable(
                name,
                f"unsupported search schema "
                f"{header.get('search_schema')!r} (this checker knows "
                f"{SEARCH_SCHEMA_VERSION}); {rebuild}",
            )
            return
        for lineno, record in enumerate(records[1:], start=2):
            if (
                record.get("kind") not in ("token", "gram")
                or not isinstance(record.get("term"), str)
                or not isinstance(record.get("ids"), list)
                or not all(
                    isinstance(entry, str) for entry in record["ids"]
                )
            ):
                self.recoverable(
                    name,
                    f"line {lineno}: malformed "
                    f"{record.get('kind')!r} posting record; {rebuild}",
                )
                return
        stale: "list[str]" = []
        if header.get("tokenizer") != TOKENIZER_VERSION:
            stale.append(
                f"tokenizer version {header.get('tokenizer')!r} "
                f"(readers speak {TOKENIZER_VERSION})"
            )
        base = list(self.manifest["node_shards"]) + list(
            self.manifest["link_shards"]
        )
        if header.get("base_crc32") != base_names_crc(base):
            stale.append("it indexes a previous base shard generation")
        ops = header.get("ops")
        journal = self.manifest.get("journal", [])
        segment_counts = [
            self.manifest["shards"].get(segment, {}).get("records")
            for segment in (journal if isinstance(journal, list) else [])
        ]
        if not isinstance(ops, int) or isinstance(ops, bool) or ops < 0:
            stale.append(f"its journal watermark {ops!r} is malformed")
        elif not self._torn and all(
            isinstance(count, int) for count in segment_counts
        ) and ops > sum(segment_counts):
            stale.append(
                f"its journal watermark ({ops}) is past the journal's "
                f"{sum(segment_counts)} op(s)"
            )
        if stale:
            self.note(
                name,
                "stale search index (" + "; ".join(stale) + ") — "
                "readers fall back to the streaming scan; " + rebuild,
            )

    # -- counts ----------------------------------------------------------------

    def _check_counts(self) -> None:
        assert self.manifest is not None
        if self._torn:
            self.note(
                MANIFEST_NAME,
                "count cross-check skipped: a torn journal tail makes "
                "the journal's net contribution unknowable",
            )
            return
        if any(f.severity == FSCK_FATAL for f in self.report.findings):
            # Damaged shards already failed to contribute their records;
            # a count mismatch here would only echo the earlier finding.
            return
        expected_nodes = self._base_nodes + self._journal_nodes
        expected_links = self._base_links + self._journal_links
        if self.manifest.get("node_count") != expected_nodes:
            self.fatal(
                MANIFEST_NAME,
                f"manifest claims {self.manifest.get('node_count')} "
                f"node(s), shards + journal hold {expected_nodes}",
            )
        if self.manifest.get("link_count") != expected_links:
            self.fatal(
                MANIFEST_NAME,
                f"manifest claims {self.manifest.get('link_count')} "
                f"link(s), shards + journal hold {expected_links}",
            )

    # -- case extras -------------------------------------------------------------

    def _check_case(self) -> None:
        assert self.manifest is not None
        for key in ("case_name", "evidence_shard", "citations_shard"):
            if not isinstance(self.manifest.get(key), str):
                self.fatal(
                    MANIFEST_NAME, f"case manifest is missing {key!r}"
                )
                return
        evidence_ids: "set[str]" = set()
        lines = self._read_lines(self.manifest["evidence_shard"])
        if lines is not None:
            records = self._decode_records(
                self.manifest["evidence_shard"], lines, _EVIDENCE_KEYS
            )
            if records is not None:
                self.report.shards_checked += 1
                evidence_ids = {
                    record["id"] for record in records
                    if isinstance(record["id"], str)
                }
        self._flush_failures(FSCK_FATAL)
        citations_name = self.manifest["citations_shard"]
        lines = self._read_lines(citations_name)
        citations: "Optional[list[dict[str, Any]]]" = None
        if lines is not None:
            citations = self._decode_records(
                citations_name, lines, _CITATION_KEYS
            )
            if citations is not None:
                self.report.shards_checked += 1
        self._flush_failures(FSCK_FATAL)
        if citations is None:
            return
        journaled = bool(self.manifest.get("journal"))
        for record in citations:
            solution = record["solution"]
            dangling = (
                self._node_types.get(solution) != NodeType.SOLUTION.value
            )
            if not dangling and record["evidence"] not in evidence_ids:
                dangling = True
            if not dangling:
                continue
            detail = (
                f"citation {solution!r} -> {record['evidence']!r} does "
                f"not name a stored solution and evidence pair"
            )
            if journaled:
                # Journal edits may legitimately retire a cited
                # solution; the loader drops the citation and the
                # journal documents why.  Compaction reconciles.
                self.note(citations_name, f"{detail} (journal explains it)")
            else:
                self.fatal(citations_name, detail)

    # -- orphans ----------------------------------------------------------------

    def _check_orphans(self) -> None:
        assert self.manifest is not None
        referenced = set(self.manifest.get("shards", {})) | {MANIFEST_NAME}
        for entry in sorted(self.path.iterdir()):
            name = entry.name
            if name in referenced:
                continue
            if name == LEASE_NAME:
                self._note_lease()
                continue
            if not _STORE_FILE.match(name) and not _MANIFEST_TMP.match(name):
                continue
            self.report.orphans.append(name)
            self.note(
                name,
                "orphaned store file the manifest does not reference "
                "(gc() would remove it)",
            )

    def _note_lease(self) -> None:
        """A ``writer.lease`` is protocol state, not an orphan."""
        payload = read_lease(self.path)
        if payload is None:  # released between iterdir and the read
            return
        holder = payload.get("holder", "an unknown holder")
        if lease_is_stale(payload):
            self.note(
                LEASE_NAME,
                f"stale writer lease held by {holder!r} — a writer "
                "crashed mid-operation; the next writer takes it over",
            )
        else:
            self.note(
                LEASE_NAME,
                f"live writer lease held by {holder!r} — this store is "
                "being written right now; findings may be racing the "
                "commit",
            )


def fsck_store(path: "Path | str") -> FsckReport:
    """Verify one store directory offline; returns the full report."""
    return _Fsck(Path(path)).run()


def fsck_paths(paths: "Iterable[Path | str]") -> "list[FsckReport]":
    """Verify several stores; one report each, in input order."""
    return [fsck_store(path) for path in paths]
