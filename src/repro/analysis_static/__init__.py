"""Static assurance for the engine itself: auditor + offline fsck.

The paper asks whether formal assurance arguments pay their way; since
PR 4 the engine bets its own soundness on an *informal* contract —
scoped rules promise to read only their declared context slice, and the
serial/streaming/parallel/incremental equivalence (plus PR 5's journal
replay) holds only while they keep that promise.  Until now the promise
was checked solely by the randomized dynamic oracle, on whatever inputs
it happened to sample.  Following Resolute (Gacek et al.), where
argument soundness is established by *analysis of the artifact* rather
than by testing it, and Isabelle/SACM (Foster et al.), where evidence
is machine-checked before it is trusted, this package proves the
contract statically:

* :mod:`~repro.analysis_static.auditor` — the **rule-scope auditor**:
  an AST analysis of each scoped rule's callable (closures and helper
  calls resolved one level deep) verifying the rule touches only its
  declared :class:`~repro.core.analysis.RuleContext` surface, flagging
  hydration-forcing access, mutation of the subject or context, and
  nondeterminism sources — structured findings with severity, rule
  name, and source location;
* :mod:`~repro.analysis_static.fsck` — **casefsck**: an offline store
  verifier that cross-checks a store directory without loading it into
  the engine (manifest schema, shard CRC-32 + content-address + id-hash
  partition, journal segment seals, torn-tail classification, orphan
  inventory matching ``gc()``'s view); the CLI lives at
  ``python -m repro.store.fsck``;
* :mod:`~repro.analysis_static.gate` — the wiring: auditing everything
  the repo ships (``GSN_STANDARD_RULES``, ``DENNEY_PAI_RULES``, the
  streaming fallacy heuristics) at import time, backing
  ``RuleSet.audit()`` and the CI ``static-analysis`` job.
"""

from .auditor import (
    KIND_HYDRATION,
    KIND_MUTATION,
    KIND_NONDETERMINISM,
    KIND_UNDECLARED,
    KIND_UNREADABLE,
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    AuditFinding,
    audit_rule,
    audit_rule_set,
    audit_rules,
    audit_streaming_scan,
    errors_only,
)
from .fsck import (
    FSCK_FATAL,
    FSCK_NOTE,
    FSCK_RECOVERABLE,
    FsckFinding,
    FsckReport,
    fsck_store,
)

__all__ = [
    "AuditFinding",
    "audit_rule",
    "audit_rules",
    "audit_rule_set",
    "audit_streaming_scan",
    "errors_only",
    "KIND_UNDECLARED",
    "KIND_HYDRATION",
    "KIND_MUTATION",
    "KIND_NONDETERMINISM",
    "KIND_UNREADABLE",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "FsckFinding",
    "FsckReport",
    "fsck_store",
    "FSCK_FATAL",
    "FSCK_RECOVERABLE",
    "FSCK_NOTE",
]
