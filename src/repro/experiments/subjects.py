"""Simulated subjects for the §VI experiments.

The paper proposes five human-subject studies but reports no data — and
an offline reproduction has no humans.  Per the substitution policy in
DESIGN.md, the studies run on *parameterised cognitive models*: every
behavioural assumption is an explicit, documented constant below, so the
experimental harness (conditions, measures, statistics) is fully
exercised and a future run with real subjects could drop its data into
the same pipeline.

Model summary (directions follow the paper's own analysis, §V–§VI):

* formal-logic skill varies strongly by background — software engineers
  'learn symbolic, deductive logics at university; this is not
  necessarily true of managers, mechanical engineers, or safety
  assessors' (§VI.C);
* manual detection of a *formal* fallacy requires applying logic skill
  steadily across an argument; misses grow with argument size;
* detection of an *informal* fallacy rides on domain knowledge and care,
  not logic skill (equivocation is obvious 'to a human' with the domain
  context, §IV.C);
* reading formal notation is slower for everyone and much slower for
  backgrounds without logic training.

All sampling is driven by a caller-supplied :class:`random.Random`.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..fallacies.taxonomy import FormalFallacy, InformalFallacy

__all__ = [
    "Background",
    "SubjectProfile",
    "sample_subject",
    "sample_pool",
    "manual_formal_detection_probability",
    "informal_detection_probability",
    "reading_minutes",
    "comprehension_probability",
    "BACKGROUND_LOGIC_SKILL",
    "FORMAL_NOTATION_SPEED_PENALTY",
]


class Background(enum.Enum):
    """Stakeholder backgrounds from §II.A's reader list."""

    SOFTWARE_ENGINEER = "software_engineer"
    SAFETY_ENGINEER = "safety_engineer"
    MECHANICAL_ENGINEER = "mechanical_engineer"
    MANAGER = "manager"
    CERTIFIER = "certifier"
    OPERATOR = "operator"


#: Mean formal-logic skill per background (0..1).  Software engineers
#: trained in symbolic logic sit high; managers and operators low.
BACKGROUND_LOGIC_SKILL: Mapping[Background, float] = {
    Background.SOFTWARE_ENGINEER: 0.80,
    Background.SAFETY_ENGINEER: 0.55,
    Background.MECHANICAL_ENGINEER: 0.40,
    Background.MANAGER: 0.20,
    Background.CERTIFIER: 0.50,
    Background.OPERATOR: 0.25,
}

#: Mean domain knowledge per background (0..1) — what informal-fallacy
#: spotting rides on.
BACKGROUND_DOMAIN_KNOWLEDGE: Mapping[Background, float] = {
    Background.SOFTWARE_ENGINEER: 0.55,
    Background.SAFETY_ENGINEER: 0.80,
    Background.MECHANICAL_ENGINEER: 0.65,
    Background.MANAGER: 0.45,
    Background.CERTIFIER: 0.75,
    Background.OPERATOR: 0.60,
}

#: Reading-speed multiplier for *formalised* material relative to
#: natural-language material, by background.  Everyone slows down;
#: logic-trained readers slow least.
FORMAL_NOTATION_SPEED_PENALTY: Mapping[Background, float] = {
    Background.SOFTWARE_ENGINEER: 1.4,
    Background.SAFETY_ENGINEER: 2.0,
    Background.MECHANICAL_ENGINEER: 2.6,
    Background.MANAGER: 3.5,
    Background.CERTIFIER: 2.2,
    Background.OPERATOR: 3.0,
}

#: Base manual-detection difficulty per formal fallacy kind (probability
#: a perfectly skilled, careful reviewer spots one instance).
_FORMAL_BASE_DETECTABILITY: Mapping[FormalFallacy, float] = {
    FormalFallacy.BEGGING_THE_QUESTION: 0.85,
    FormalFallacy.INCOMPATIBLE_PREMISES: 0.70,
    FormalFallacy.PREMISE_CONCLUSION_CONTRADICTION: 0.80,
    FormalFallacy.DENYING_THE_ANTECEDENT: 0.65,
    FormalFallacy.AFFIRMING_THE_CONSEQUENT: 0.60,
    FormalFallacy.FALSE_CONVERSION: 0.55,
    FormalFallacy.UNDISTRIBUTED_MIDDLE: 0.50,
    FormalFallacy.ILLICIT_DISTRIBUTION: 0.50,
}

#: Base detectability per informal kind, for a knowledgeable, careful
#: reviewer.  Omission is hardest (you must know what's missing);
#: Greenwell's reviewers disagreed with each other, so none of these is 1.
_INFORMAL_BASE_DETECTABILITY: Mapping[InformalFallacy, float] = {
    InformalFallacy.DRAWING_WRONG_CONCLUSION: 0.65,
    InformalFallacy.FALLACIOUS_USE_OF_LANGUAGE: 0.60,
    InformalFallacy.FALLACY_OF_COMPOSITION: 0.55,
    InformalFallacy.HASTY_INDUCTIVE_GENERALISATION: 0.60,
    InformalFallacy.OMISSION_OF_KEY_EVIDENCE: 0.35,
    InformalFallacy.RED_HERRING: 0.70,
    InformalFallacy.USING_WRONG_REASONS: 0.55,
    InformalFallacy.EQUIVOCATION: 0.50,
    InformalFallacy.ARGUING_FROM_IGNORANCE: 0.55,
}

#: Natural-language reading rate in words per minute for working review
#: (slower than leisure reading).
_BASE_WPM = 110.0


@dataclass(frozen=True)
class SubjectProfile:
    """One simulated participant."""

    identifier: str
    background: Background
    logic_skill: float        # 0..1
    domain_knowledge: float   # 0..1
    care: float               # 0..1 thoroughness
    reading_wpm: float
    formal_methods_training: bool

    def __post_init__(self) -> None:
        for name in ("logic_skill", "domain_knowledge", "care"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")


def _clamp(value: float, low: float = 0.02, high: float = 0.98) -> float:
    return max(low, min(high, value))


def sample_subject(
    rng: random.Random,
    background: Background,
    identifier: str | None = None,
) -> SubjectProfile:
    """Draw one subject around the background's population means."""
    logic = _clamp(rng.gauss(BACKGROUND_LOGIC_SKILL[background], 0.12))
    domain = _clamp(
        rng.gauss(BACKGROUND_DOMAIN_KNOWLEDGE[background], 0.12)
    )
    care = _clamp(rng.gauss(0.65, 0.15))
    wpm = max(50.0, rng.gauss(_BASE_WPM, 20.0))
    return SubjectProfile(
        identifier=identifier or f"{background.value}-{rng.randrange(10**6)}",
        background=background,
        logic_skill=logic,
        domain_knowledge=domain,
        care=care,
        reading_wpm=wpm,
        formal_methods_training=logic > 0.6,
    )


def sample_pool(
    rng: random.Random,
    size: int,
    backgrounds: Sequence[Background] | None = None,
) -> list[SubjectProfile]:
    """Draw a pool, cycling over the requested backgrounds."""
    chosen = list(backgrounds or list(Background))
    return [
        sample_subject(rng, chosen[index % len(chosen)], f"s{index:03d}")
        for index in range(size)
    ]


def manual_formal_detection_probability(
    subject: SubjectProfile,
    fallacy: FormalFallacy,
    argument_size: int,
) -> float:
    """P(subject spots one formal-fallacy instance during manual review).

    Scales with logic skill and care, and decays with argument size —
    vigilance across a large argument is the failure mode Rushby's
    'evaluation of large safety cases requires automated assistance'
    hypothesis targets.
    """
    base = _FORMAL_BASE_DETECTABILITY[fallacy]
    skill_factor = 0.25 + 0.75 * subject.logic_skill
    care_factor = 0.5 + 0.5 * subject.care
    size_factor = 1.0 / (1.0 + max(0, argument_size - 10) / 40.0)
    return _clamp(base * skill_factor * care_factor * size_factor)


def informal_detection_probability(
    subject: SubjectProfile,
    fallacy: InformalFallacy,
    argument_size: int,
) -> float:
    """P(subject spots one informal-fallacy instance).

    Rides on domain knowledge and care; logic skill contributes almost
    nothing (the equivocation in Figure 1 is obvious to anyone who knows
    what the Desert Bank *is*, regardless of logic training).
    """
    base = _INFORMAL_BASE_DETECTABILITY[fallacy]
    knowledge_factor = 0.3 + 0.7 * subject.domain_knowledge
    care_factor = 0.5 + 0.5 * subject.care
    size_factor = 1.0 / (1.0 + max(0, argument_size - 10) / 50.0)
    return _clamp(base * knowledge_factor * care_factor * size_factor)


def reading_minutes(
    subject: SubjectProfile,
    word_count: int,
    formal: bool,
) -> float:
    """Minutes to read material of the given length.

    Formal material applies the background's speed penalty (§VI.C's
    restriction-of-audience effect, as a time cost).
    """
    minutes = word_count / subject.reading_wpm
    if formal:
        minutes *= FORMAL_NOTATION_SPEED_PENALTY[subject.background]
    return minutes


def comprehension_probability(
    subject: SubjectProfile,
    formal: bool,
) -> float:
    """P(correctly answering one comprehension question about the text).

    For natural-language arguments comprehension tracks domain knowledge.
    For formalised arguments it is gated by logic skill: a reader who
    cannot parse the notation cannot extract the claim, however well they
    know the domain.
    """
    if not formal:
        return _clamp(0.45 + 0.5 * subject.domain_knowledge)
    gate = subject.logic_skill ** 1.5
    return _clamp(0.15 + 0.75 * gate * (0.5 + 0.5 *
                                        subject.domain_knowledge))
