"""Experiment E: complication of evidence sufficiency judgments.

§VI.E: judging whether evidence is 'good enough' requires seeing every
claim the evidence directly and indirectly supports.  'Graphical argument
notations such as GSN and CAE are thought to ease this task by reducing
it to tracing a path in a graph.  Rushby proposes instead that developers
should assess impact by eliminating the corresponding formal premise and
rerunning the proof checker.'  The proposed measures: time per judgment
and inter-assessor agreement ('if they report very different values, at
least some must be wrong').

Design implemented here:

* Materials: a seeded assurance case; the judgment task, per evidence
  item, is 'how many claims does doubting this evidence touch?'  Ground
  truth comes from the real graph tracer
  (:func:`repro.core.impact.evidence_impact`).
* Condition ``graph_tracing``: the assessor traces paths in the GSN
  view.  Answer error grows mildly with path fan-out; time grows with
  the number of paths traced.
* Condition ``proof_probing``: the assessor runs the real Rushby what-if
  (:meth:`~repro.formalise.translator.Formalisation.what_if_without` —
  executed, not simulated) and learns a *boolean*: does the top-level
  proof still go through?  To produce the graded answer the task needs,
  they must extrapolate — high variance for low-logic-skill assessors,
  and systematic underestimation when redundant evidence masks the
  probe (the proof survives, so the impact 'must be small').  This is
  the paper's point that Rushby 'does not explain how evidence
  sufficiency should be judged in cases where an error is likely to be a
  matter of degree'.
* Measures: minutes per judgment, exact-answer accuracy, and mean
  pairwise inter-assessor agreement per condition.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from ..core.builder import ArgumentBuilder
from ..core.case import AssuranceCase, SafetyCriterion
from ..core.evidence import EvidenceItem, EvidenceKind
from ..core.impact import evidence_impact
from ..formalise.translator import Formalisation, formalise_argument
from .stats import Summary, mean_pairwise_agreement, summarise
from .subjects import Background, SubjectProfile, sample_pool
from .tables import render_rows

__all__ = [
    "SufficiencyStudyConfig",
    "SufficiencyOutcome",
    "SufficiencyStudyResult",
    "build_case",
    "run_sufficiency_study",
]

#: Minutes to trace one support path in the graph view.
_TRACE_MINUTES_PER_PATH = 0.9
#: Minutes to set up and run one what-if probe (tool interaction).
_PROBE_MINUTES = 0.5
#: Minutes spent interpreting a probe outcome into a graded judgment.
_INTERPRET_MINUTES = 1.8


def build_case(seed: int = 7, hazards: int = 6,
               redundancy: int = 2) -> AssuranceCase:
    """A seeded case whose evidence items vary in impact breadth.

    ``redundancy`` controls how many hazard claims get a second,
    independent evidence item — the situation where Rushby's boolean
    probe under-reports impact (removing one premise leaves the proof
    standing).
    """
    rng = random.Random(seed)
    builder = ArgumentBuilder(f"exp-e-case-{seed}")
    top = builder.goal("The system is acceptably safe to operate")
    strategy = builder.strategy(
        "Argument over each identified hazard", under=top
    )
    solutions: list[tuple[str, str]] = []
    # One batch for the whole hazard fan-out: a single version bump, and
    # the final well-formedness check in build() sees one mutation delta.
    with builder.bulk():
        _populate_hazards(builder, strategy, hazards, redundancy, solutions)
    argument = builder.build()
    case = AssuranceCase(
        name=argument.name,
        argument=argument,
        criterion=SafetyCriterion(
            "No hazardous failure condition more often than once per "
            "1e6 operating hours", "hazardous_failure_rate", 1e-6,
        ),
    )
    kinds = list(EvidenceKind)
    for solution_id, evidence_id in solutions:
        case.add_evidence(
            EvidenceItem(
                identifier=evidence_id,
                kind=rng.choice(kinds),
                description=f"artefact behind {solution_id}",
                coverage=round(rng.uniform(0.6, 1.0), 2),
            ),
            cited_by=solution_id,
        )
    return case


def _populate_hazards(
    builder: ArgumentBuilder,
    strategy: str,
    hazards: int,
    redundancy: int,
    solutions: list[tuple[str, str]],
) -> None:
    """Grow the per-hazard sub-arguments under the top strategy."""
    for index in range(1, hazards + 1):
        goal = builder.goal(
            f"Hazard H{index} is acceptably managed", under=strategy
        )
        if index % 2 == 0:
            # Deeper sub-structure: evidence here touches more claims.
            sub_strategy = builder.strategy(
                f"Argument over the H{index} mitigation barriers",
                under=goal,
            )
            for barrier in ("detection", "containment"):
                sub_goal = builder.goal(
                    f"The H{index} {barrier} barrier performs its "
                    "function", under=sub_strategy,
                )
                solution = builder.solution(
                    f"{barrier.title()} verification record "
                    f"{barrier[:2].upper()}-{index}", under=sub_goal,
                )
                solutions.append(
                    (solution, f"ev_{barrier[:2]}_{index}")
                )
        else:
            primary = builder.solution(
                f"Primary verification record PV-{index}", under=goal
            )
            solutions.append((primary, f"ev_pv_{index}"))
            if index <= redundancy:
                secondary = builder.solution(
                    f"Independent field-data review FD-{index}",
                    under=goal,
                )
                solutions.append((secondary, f"ev_fd_{index}"))


@dataclass(frozen=True)
class SufficiencyStudyConfig:
    """Knobs for Experiment E."""

    assessors_per_group: int = 10
    hazards: int = 6
    redundancy: int = 2
    seed: int = 20150626


@dataclass(frozen=True)
class SufficiencyOutcome:
    """One condition's aggregates."""

    condition: str
    minutes: Summary
    exact_accuracy: float
    agreement: float


@dataclass(frozen=True)
class SufficiencyStudyResult:
    """Both conditions plus the ground truth used."""

    graph: SufficiencyOutcome
    proof: SufficiencyOutcome
    ground_truth: tuple[int, ...]

    def rows(self) -> list[dict[str, object]]:
        return [
            {
                "condition": outcome.condition,
                "mean_minutes": outcome.minutes.mean,
                "ci_low": outcome.minutes.ci_low,
                "ci_high": outcome.minutes.ci_high,
                "exact_accuracy": outcome.exact_accuracy,
                "pairwise_agreement": outcome.agreement,
            }
            for outcome in (self.graph, self.proof)
        ]

    def render(self) -> str:
        table = render_rows(
            self.rows(),
            title="Experiment E: evidence-sufficiency judgments "
                  "(graph tracing vs proof probing)",
        )
        footer = (
            f"ground-truth impact breadths per evidence item: "
            f"{list(self.ground_truth)}\n"
        )
        return table + footer


def _graph_judgment(
    subject: SubjectProfile,
    truth: int,
    paths: int,
    rng: random.Random,
) -> tuple[int, float]:
    """Simulate one graph-tracing judgment: (answer, minutes)."""
    minutes = paths * _TRACE_MINUTES_PER_PATH * (
        1.2 - 0.4 * subject.care
    )
    # Careful tracing is nearly exact; low care occasionally drops or
    # double-counts one claim.
    answer = truth
    slip_probability = 0.25 * (1.0 - subject.care)
    if rng.random() < slip_probability:
        answer = max(0, truth + rng.choice((-1, 1)))
    return answer, minutes


def _proof_judgment(
    subject: SubjectProfile,
    truth: int,
    proof_fails_without: bool,
    rng: random.Random,
) -> tuple[int, float]:
    """Simulate one proof-probing judgment: (answer, minutes).

    The probe outcome (computed by the real checker) tells the assessor
    whether the top-level proof collapses.  Turning that boolean into a
    breadth estimate is extrapolation: skilled logicians reason about the
    rule structure and land near the truth; others guess coarsely, with
    a systematic pull toward 'small' when the proof survives.
    """
    minutes = _PROBE_MINUTES + _INTERPRET_MINUTES * (
        1.5 - 0.5 * subject.logic_skill
    )
    if proof_fails_without:
        # The probe names no claim set; estimate scales with skill.
        spread = max(1, round(3 * (1.0 - subject.logic_skill)))
        answer = max(1, truth + rng.randint(-spread, spread))
    else:
        # Proof stands: redundant evidence masks the impact entirely.
        anchored_low = rng.random() < 0.7
        answer = 0 if anchored_low else max(
            0, truth + rng.randint(-1, 1)
        )
    return answer, minutes


def run_sufficiency_study(
    config: SufficiencyStudyConfig | None = None,
) -> SufficiencyStudyResult:
    """Run Experiment E end to end."""
    config = config or SufficiencyStudyConfig()
    rng = random.Random(config.seed)
    case = build_case(
        seed=config.seed, hazards=config.hazards,
        redundancy=config.redundancy,
    )
    evidence_ids = sorted(item.identifier for item in case.evidence)

    # Ground truth from the real graph tracer.
    truths: list[int] = []
    path_counts: list[int] = []
    for evidence_id in evidence_ids:
        impact = evidence_impact(case, evidence_id)
        truths.append(impact.breadth)
        paths = 0
        for solution in impact.affected_solutions:
            paths += case.argument.count_paths_to_root(solution)
        path_counts.append(max(1, paths))

    # Real what-if probes via the Rushby formalisation.
    formalisation = formalise_argument(case.argument)
    formalisation.assent_all()
    solution_of = {
        evidence_id: case.citing_solutions(evidence_id)[0]
        for evidence_id in evidence_ids
    }
    probe_fails: list[bool] = [
        not formalisation.what_if_without(solution_of[evidence_id])
        for evidence_id in evidence_ids
    ]

    pool = sample_pool(
        rng, config.assessors_per_group * 2,
        backgrounds=(Background.SAFETY_ENGINEER,
                     Background.CERTIFIER,
                     Background.SOFTWARE_ENGINEER),
    )
    graph_group = pool[: config.assessors_per_group]
    proof_group = pool[config.assessors_per_group:]

    graph_minutes: list[float] = []
    graph_judgments: list[list[int]] = []
    for subject in graph_group:
        answers: list[int] = []
        for truth, paths in zip(truths, path_counts):
            answer, minutes = _graph_judgment(subject, truth, paths, rng)
            answers.append(answer)
            graph_minutes.append(minutes)
        graph_judgments.append(answers)

    proof_minutes: list[float] = []
    proof_judgments: list[list[int]] = []
    for subject in proof_group:
        answers = []
        for truth, fails in zip(truths, probe_fails):
            answer, minutes = _proof_judgment(subject, truth, fails, rng)
            answers.append(answer)
            proof_minutes.append(minutes)
        proof_judgments.append(answers)

    def accuracy(judgments: list[list[int]]) -> float:
        total = 0
        hits = 0
        for answers in judgments:
            for answer, truth in zip(answers, truths):
                total += 1
                hits += int(answer == truth)
        return hits / total

    graph_outcome = SufficiencyOutcome(
        condition="graph_tracing",
        minutes=summarise(graph_minutes, seed=config.seed),
        exact_accuracy=accuracy(graph_judgments),
        agreement=mean_pairwise_agreement(graph_judgments),
    )
    proof_outcome = SufficiencyOutcome(
        condition="proof_probing",
        minutes=summarise(proof_minutes, seed=config.seed + 1),
        exact_accuracy=accuracy(proof_judgments),
        agreement=mean_pairwise_agreement(proof_judgments),
    )
    return SufficiencyStudyResult(
        graph=graph_outcome,
        proof=proof_outcome,
        ground_truth=tuple(truths),
    )
