"""Experiment B: the effort of formalisation.

§VI.B: three surveyed proposals construct arguments informally first and
then formalise them [9], [19], [22]; 'this cost could be measured by
observing volunteers performing the formalisation task and measuring the
time needed.  (The study design would have to account for learning
effects and for the impact of formal methods expertise.)'

Design implemented here:

* Materials: hazard-avoidance arguments of increasing size; the actual
  Rushby translation (:func:`repro.formalise.translator.formalise_argument`)
  is run on each to obtain the ground-truth formalisation workload
  (rules to write, residue elements to triage).
* Subjects: pools with and without formal-methods training.
* Time model: per-rule authoring time scaled by expertise, plus residue
  triage time, with an exponential learning curve over successive tasks
  (both confounds the paper says a real design must control).
* Measures: minutes by expertise group and task index; the learning
  ratio (first task vs last); the formalisation overhead relative to the
  informal authoring baseline.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Sequence

from ..core.builder import ArgumentBuilder
from ..core.argument import Argument
from ..formalise.translator import formalise_argument
from .stats import Summary, summarise
from .subjects import Background, SubjectProfile, sample_pool
from .tables import render_rows

__all__ = [
    "EffortStudyConfig",
    "EffortCell",
    "EffortStudyResult",
    "run_effort_study",
]

#: Minutes to author one formal rule for a fully trained subject.
_RULE_MINUTES_TRAINED = 4.0
#: Multiplier for untrained subjects (must learn the notation as they go).
_UNTRAINED_MULTIPLIER = 2.8
#: Minutes to triage one informal-residue element (decide it cannot be
#: formalised and document why) — Rushby's categories need judgment.
_RESIDUE_MINUTES = 6.0
#: Minutes per node to author the *informal* argument (the baseline the
#: formalisation cost is compared against).
_INFORMAL_NODE_MINUTES = 3.0
#: Learning-curve shape: time multiplier = 1 + _LEARNING_GAIN * exp(-k/τ).
_LEARNING_GAIN = 0.8
_LEARNING_TAU = 2.5


def _task_argument(size_index: int) -> Argument:
    """A hazard argument whose size grows with the index."""
    hazards = 4 + 3 * size_index
    builder = ArgumentBuilder(f"exp-b-task-{size_index}")
    top = builder.goal("The system is acceptably safe to operate")
    strategy = builder.strategy(
        "Argument over each identified hazard", under=top
    )
    builder.justification(
        "Hazard identification performed per the applicable standard",
        under=strategy,
    )
    for index in range(1, hazards + 1):
        goal = builder.goal(
            f"Hazard H{index} is acceptably managed", under=strategy
        )
        if index % 3 == 0:
            # Every third hazard claim is probabilistic -> residue.
            builder.context(
                f"Residual likelihood of H{index} is below 1e-6 per hour",
                under=goal,
            )
            sub = builder.goal(
                f"Probability of H{index} occurrence is acceptably low",
                under=goal,
            )
            builder.solution(
                f"Reliability data review RD-{index}", under=sub
            )
        else:
            builder.solution(
                f"Mitigation verification record MV-{index}", under=goal
            )
    return builder.build()


@dataclass(frozen=True)
class EffortStudyConfig:
    """Knobs for Experiment B."""

    subjects_per_group: int = 12
    tasks: int = 5
    seed: int = 20150623


@dataclass(frozen=True)
class EffortCell:
    """One (group, task) aggregate."""

    group: str
    task_index: int
    argument_nodes: int
    rules: int
    residue: int
    minutes: Summary
    informal_baseline_minutes: float

    @property
    def overhead_ratio(self) -> float:
        """Formalisation minutes relative to informal authoring minutes."""
        return self.minutes.mean / self.informal_baseline_minutes


@dataclass(frozen=True)
class EffortStudyResult:
    """All cells plus learning summaries."""

    cells: tuple[EffortCell, ...]
    learning_ratio_trained: float
    learning_ratio_untrained: float
    expertise_gap_final_task: float

    def rows(self) -> list[dict[str, object]]:
        return [
            {
                "group": cell.group,
                "task": cell.task_index,
                "nodes": cell.argument_nodes,
                "rules": cell.rules,
                "residue": cell.residue,
                "mean_minutes": cell.minutes.mean,
                "ci_low": cell.minutes.ci_low,
                "ci_high": cell.minutes.ci_high,
                "overhead_vs_informal": cell.overhead_ratio,
            }
            for cell in self.cells
        ]

    def render(self) -> str:
        table = render_rows(
            self.rows(),
            title="Experiment B: effort of formalisation "
                  "(informal-first then formalise)",
        )
        footer = (
            f"learning ratio (task1/taskN): trained "
            f"{self.learning_ratio_trained:.2f}, untrained "
            f"{self.learning_ratio_untrained:.2f}; expertise gap on the "
            f"final task: x{self.expertise_gap_final_task:.2f}\n"
        )
        return table + footer


def _formalisation_minutes(
    subject: SubjectProfile,
    task_index: int,
    rules: int,
    residue: int,
    rng: random.Random,
) -> float:
    expertise = (
        1.0 if subject.formal_methods_training else _UNTRAINED_MULTIPLIER
    )
    learning = 1.0 + _LEARNING_GAIN * math.exp(
        -task_index / _LEARNING_TAU
    )
    noise = max(0.5, rng.gauss(1.0, 0.12))
    rule_minutes = rules * _RULE_MINUTES_TRAINED * expertise
    residue_minutes = residue * _RESIDUE_MINUTES * (
        0.8 + 0.4 * (1.0 - subject.care)
    )
    return (rule_minutes + residue_minutes) * learning * noise


def run_effort_study(
    config: EffortStudyConfig | None = None,
) -> EffortStudyResult:
    """Run Experiment B end to end."""
    config = config or EffortStudyConfig()
    rng = random.Random(config.seed)
    trained = [
        s for s in sample_pool(
            rng, config.subjects_per_group * 2,
            backgrounds=(Background.SOFTWARE_ENGINEER,),
        )
        if s.formal_methods_training
    ][: config.subjects_per_group]
    untrained = [
        s for s in sample_pool(
            rng, config.subjects_per_group * 3,
            backgrounds=(Background.MECHANICAL_ENGINEER,
                         Background.MANAGER),
        )
        if not s.formal_methods_training
    ][: config.subjects_per_group]

    cells: list[EffortCell] = []
    first_last: dict[str, dict[int, float]] = {"trained": {},
                                               "untrained": {}}
    for task_index in range(config.tasks):
        argument = _task_argument(task_index)
        formalisation = formalise_argument(argument)
        rules = len(formalisation.rules)
        residue = len(formalisation.residue)
        baseline = len(argument) * _INFORMAL_NODE_MINUTES
        for group_name, group in (("trained", trained),
                                  ("untrained", untrained)):
            minutes = [
                _formalisation_minutes(
                    subject, task_index, rules, residue, rng
                )
                for subject in group
            ]
            summary = summarise(minutes, seed=config.seed + task_index)
            cells.append(EffortCell(
                group=group_name,
                task_index=task_index,
                argument_nodes=len(argument),
                rules=rules,
                residue=residue,
                minutes=summary,
                informal_baseline_minutes=baseline,
            ))
            first_last[group_name][task_index] = summary.mean

    def _normalised_learning(group: str) -> float:
        per_task = first_last[group]
        first = per_task[0]
        last = per_task[config.tasks - 1]
        # Normalise by workload so the ratio isolates the learning effect.
        first_cell = next(
            c for c in cells if c.group == group and c.task_index == 0
        )
        last_cell = next(
            c for c in cells
            if c.group == group and c.task_index == config.tasks - 1
        )
        first_rate = first / max(1, first_cell.rules)
        last_rate = last / max(1, last_cell.rules)
        return first_rate / last_rate

    final_trained = first_last["trained"][config.tasks - 1]
    final_untrained = first_last["untrained"][config.tasks - 1]
    return EffortStudyResult(
        cells=tuple(cells),
        learning_ratio_trained=_normalised_learning("trained"),
        learning_ratio_untrained=_normalised_learning("untrained"),
        expertise_gap_final_task=final_untrained / final_trained,
    )
