"""Plain-text results tables shared by the §VI studies and benchmarks."""

from __future__ import annotations

from typing import Any, Mapping, Sequence

__all__ = ["render_rows"]


def _format(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def render_rows(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render dict rows as an aligned text table.

    ``columns`` fixes the column order; by default the first row's key
    order is used.
    """
    if not rows:
        return (title + "\n" if title else "") + "(no rows)\n"
    keys = list(columns) if columns else list(rows[0].keys())
    rendered = [[_format(row.get(key, "")) for key in keys] for row in rows]
    widths = [
        max(len(key), *(len(r[i]) for r in rendered))
        for i, key in enumerate(keys)
    ]
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(k.ljust(w) for k, w in zip(keys, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row_cells in rendered:
        lines.append(
            "  ".join(c.ljust(w) for c, w in zip(row_cells, widths))
        )
    return "\n".join(lines) + "\n"
