"""Experiment A: the ability to automatically identify formal fallacies.

§VI.A: 'one group of volunteers reviews an argument for informal
fallacies only, the other for both informal and formal fallacies, and the
experimenters measure time taken.  The number of formal fallacies missed
in manual review can be counted.'

Design implemented here:

* Materials: seeded GSN arguments, each carrying injected *informal*
  fallacies (Greenwell kinds) and a set of formalised argument steps,
  some clean and some carrying injected *formal* fallacies.
* Condition ``MANUAL_BOTH``: the subject reviews for informal fallacies
  *and* manually checks every formal step.
* Condition ``MANUAL_PLUS_TOOL``: the mechanical detector
  (:func:`repro.fallacies.formal_detector.detect`) — actually executed,
  not assumed — checks the formal steps; the subject reviews only for
  informal fallacies.
* Measures: review time, formal-fallacy miss rate, informal-fallacy miss
  rate (which no condition improves: the tool is blind to them, §IV.C).

The reported direction matches the paper's analysis: the tool drives the
formal miss rate to zero and saves checking time, while the informal
miss rate — covering every kind Greenwell actually observed — is
untouched.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from ..core.argument import Argument
from ..core.builder import ArgumentBuilder
from ..fallacies.formal_detector import detect
from ..fallacies.injector import (
    InjectionRecord,
    SeededFormalArgument,
    inject_formal,
    inject_informal,
    make_formal_argument,
)
from ..fallacies.taxonomy import FormalFallacy, GREENWELL_FINDINGS
from .stats import Summary, summarise
from .subjects import (
    SubjectProfile,
    informal_detection_probability,
    manual_formal_detection_probability,
    reading_minutes,
    sample_pool,
)
from .tables import render_rows

__all__ = [
    "ReviewStudyConfig",
    "ReviewMaterials",
    "ConditionOutcome",
    "ReviewStudyResult",
    "build_materials",
    "run_review_study",
]

_PROPOSITIONAL_FALLACIES = (
    FormalFallacy.BEGGING_THE_QUESTION,
    FormalFallacy.INCOMPATIBLE_PREMISES,
    FormalFallacy.PREMISE_CONCLUSION_CONTRADICTION,
    FormalFallacy.DENYING_THE_ANTECEDENT,
    FormalFallacy.AFFIRMING_THE_CONSEQUENT,
)

#: Minutes a subject spends manually checking one formal step, scaled by
#: (2 - logic skill): weak logicians are slower *and* less reliable.
_MANUAL_STEP_MINUTES = 1.6
#: Minutes to run the detector over one step and read its report.
_TOOL_STEP_MINUTES = 0.15
#: Minutes per node of informal review, scaled by care.
_INFORMAL_NODE_MINUTES = 0.5


@dataclass(frozen=True)
class ReviewStudyConfig:
    """Knobs for Experiment A."""

    subjects: int = 24
    arguments: int = 6
    hazards_per_argument: int = 8
    informal_per_argument: int = 4
    formal_steps: int = 6
    formal_fallacy_share: float = 0.5
    seed: int = 20150622


@dataclass(frozen=True)
class ReviewMaterials:
    """One argument pack: GSN argument + formal steps + ground truth."""

    argument: Argument
    informal_records: tuple[InjectionRecord, ...]
    formal_steps: tuple[SeededFormalArgument, ...]

    @property
    def injected_formal(self) -> int:
        return sum(len(s.records) for s in self.formal_steps)

    @property
    def injected_informal(self) -> int:
        return len(self.informal_records)


def _base_argument(name: str, hazards: int) -> Argument:
    builder = ArgumentBuilder(name)
    top = builder.goal("The system is acceptably safe to operate")
    builder.context("Definition of acceptably safe per the safety plan",
                    under=top)
    strategy = builder.strategy(
        "Argument over each identified hazard", under=top
    )
    for index in range(1, hazards + 1):
        goal = builder.goal(
            f"Hazard H{index} is acceptably managed", under=strategy
        )
        builder.solution(
            f"Mitigation analysis record MA-{index}", under=goal
        )
    return builder.build()


def build_materials(config: ReviewStudyConfig,
                    rng: random.Random) -> list[ReviewMaterials]:
    """Construct the seeded argument packs."""
    informal_kinds = list(GREENWELL_FINDINGS)
    packs: list[ReviewMaterials] = []
    for index in range(config.arguments):
        argument = _base_argument(f"exp-a-{index}",
                                  config.hazards_per_argument)
        records: list[InjectionRecord] = []
        for _ in range(config.informal_per_argument):
            kind = rng.choice(informal_kinds)
            argument, record = inject_informal(argument, kind, rng)
            records.append(record)
        steps: list[SeededFormalArgument] = []
        for _ in range(config.formal_steps):
            if rng.random() < config.formal_fallacy_share:
                steps.append(inject_formal(
                    rng, rng.choice(_PROPOSITIONAL_FALLACIES)
                ))
            else:
                steps.append(SeededFormalArgument(
                    make_formal_argument(rng, valid=True,
                                         size=rng.randrange(2, 5)),
                    (),
                ))
        packs.append(ReviewMaterials(argument, tuple(records),
                                     tuple(steps)))
    return packs


@dataclass(frozen=True)
class ConditionOutcome:
    """Aggregate outcome of one condition."""

    condition: str
    time: Summary
    formal_injected: int
    formal_missed: int
    informal_injected: int
    informal_missed: int

    @property
    def formal_miss_rate(self) -> float:
        if not self.formal_injected:
            return 0.0
        return self.formal_missed / self.formal_injected

    @property
    def informal_miss_rate(self) -> float:
        if not self.informal_injected:
            return 0.0
        return self.informal_missed / self.informal_injected


@dataclass(frozen=True)
class ReviewStudyResult:
    """Both conditions plus the rendering used by the benchmark."""

    manual_both: ConditionOutcome
    manual_plus_tool: ConditionOutcome
    tool_detected_all_injected: bool
    tool_false_positives: int

    def rows(self) -> list[dict[str, object]]:
        out = []
        for outcome in (self.manual_both, self.manual_plus_tool):
            out.append({
                "condition": outcome.condition,
                "mean_minutes": outcome.time.mean,
                "ci_low": outcome.time.ci_low,
                "ci_high": outcome.time.ci_high,
                "formal_miss_rate": outcome.formal_miss_rate,
                "informal_miss_rate": outcome.informal_miss_rate,
            })
        return out

    def render(self) -> str:
        table = render_rows(
            self.rows(),
            title="Experiment A: formal-fallacy review "
                  "(manual vs manual+tool)",
        )
        footer = (
            f"tool found every injected formal fallacy: "
            f"{self.tool_detected_all_injected}; "
            f"tool false positives on clean steps: "
            f"{self.tool_false_positives}\n"
        )
        return table + footer


def _informal_review(
    subject: SubjectProfile,
    pack: ReviewMaterials,
    rng: random.Random,
) -> tuple[float, int]:
    """Simulate the informal pass; returns (minutes, misses)."""
    size = len(pack.argument)
    words = sum(len(n.text.split()) for n in pack.argument.nodes)
    minutes = reading_minutes(subject, words, formal=False)
    minutes += size * _INFORMAL_NODE_MINUTES * (0.5 + 0.5 * subject.care)
    misses = 0
    for record in pack.informal_records:
        probability = informal_detection_probability(
            subject, record.fallacy, size
        )
        if rng.random() >= probability:
            misses += 1
    return minutes, misses


def run_review_study(
    config: ReviewStudyConfig | None = None,
) -> ReviewStudyResult:
    """Run Experiment A end to end (deterministic in the config seed)."""
    config = config or ReviewStudyConfig()
    rng = random.Random(config.seed)
    packs = build_materials(config, rng)
    pool = sample_pool(rng, config.subjects)
    half = len(pool) // 2
    group_manual = pool[:half]
    group_tool = pool[half:]

    # Pre-run the real detector over every step once: the tool's
    # performance is measured, not assumed.
    tool_hits = 0
    tool_injected = 0
    tool_false_positives = 0
    for pack in packs:
        for step in pack.formal_steps:
            result = detect(step.argument)
            injected_kinds = {r.fallacy for r in step.records}
            tool_injected += len(injected_kinds)
            tool_hits += len(
                injected_kinds & set(result.fallacies)
            )
            if not step.records and result.findings:
                tool_false_positives += len(result.findings)

    manual_times: list[float] = []
    manual_formal_missed = 0
    manual_informal_missed = 0
    formal_injected_total = 0
    informal_injected_total = 0
    for subject in group_manual:
        for pack in packs:
            minutes, informal_misses = _informal_review(
                subject, pack, rng
            )
            size = len(pack.argument)
            for step in pack.formal_steps:
                minutes += _MANUAL_STEP_MINUTES * (
                    2.0 - subject.logic_skill
                )
                for record in step.records:
                    probability = manual_formal_detection_probability(
                        subject, record.fallacy, size
                    )
                    if rng.random() >= probability:
                        manual_formal_missed += 1
            manual_times.append(minutes)
            manual_informal_missed += informal_misses
            formal_injected_total += sum(
                len(s.records) for s in pack.formal_steps
            )
            informal_injected_total += pack.injected_informal

    tool_times: list[float] = []
    tool_formal_missed_total = 0
    tool_informal_missed = 0
    tool_formal_injected_total = 0
    tool_informal_injected_total = 0
    per_pack_tool_misses = {
        id(pack): sum(len(s.records) for s in pack.formal_steps) -
        sum(
            len({r.fallacy for r in s.records} &
                set(detect(s.argument).fallacies))
            for s in pack.formal_steps
        )
        for pack in packs
    }
    for subject in group_tool:
        for pack in packs:
            minutes, informal_misses = _informal_review(
                subject, pack, rng
            )
            minutes += _TOOL_STEP_MINUTES * len(pack.formal_steps)
            tool_times.append(minutes)
            tool_informal_missed += informal_misses
            tool_formal_missed_total += per_pack_tool_misses[id(pack)]
            tool_formal_injected_total += sum(
                len(s.records) for s in pack.formal_steps
            )
            tool_informal_injected_total += pack.injected_informal

    manual = ConditionOutcome(
        condition="manual_both",
        time=summarise(manual_times, seed=config.seed),
        formal_injected=formal_injected_total,
        formal_missed=manual_formal_missed,
        informal_injected=informal_injected_total,
        informal_missed=manual_informal_missed,
    )
    tooled = ConditionOutcome(
        condition="manual_plus_tool",
        time=summarise(tool_times, seed=config.seed + 1),
        formal_injected=tool_formal_injected_total,
        formal_missed=tool_formal_missed_total,
        informal_injected=tool_informal_injected_total,
        informal_missed=tool_informal_missed,
    )
    return ReviewStudyResult(
        manual_both=manual,
        manual_plus_tool=tooled,
        tool_detected_all_injected=(tool_hits == tool_injected),
        tool_false_positives=tool_false_positives,
    )
