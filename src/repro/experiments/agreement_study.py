"""The §V.C reviewer-disagreement study.

§V.C: 'Human reviewers can fail to spot fallacies: Greenwell et al.
report results from two different reviewers that show that each
overlooked some fallacies that the other flagged.  (Perfect agreement
between reviewers is not expected ...)  But it is the efficacy of humans
at spotting formal fallacies that is at issue in the argument for
formalisation, and this remains unknown.'

This study simulates exactly that observation and then measures the
quantity §V.C says is missing:

* two independent reviewers examine a Greenwell-seeded argument;
  per-instance detection follows the subject models — the outputs are
  each reviewer's flag set;
* reported: overlap statistics (each reviewer's unique catches, Jaccard
  overlap, Cohen's kappa over instance-level flagged/not-flagged) —
  reproducing the qualitative Greenwell finding that neither reviewer's
  list contains the other's;
* the missing number: the same two-reviewer protocol over *formal*
  fallacies, giving the human formal-miss rate that the §VI.A tool
  comparison needs as its baseline.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.builder import ArgumentBuilder
from ..fallacies.injector import (
    InjectionRecord,
    inject_formal,
    seed_greenwell_argument,
)
from ..fallacies.taxonomy import FormalFallacy
from .stats import cohens_kappa
from .subjects import (
    Background,
    SubjectProfile,
    informal_detection_probability,
    manual_formal_detection_probability,
    sample_subject,
)
from .tables import render_rows

__all__ = [
    "AgreementStudyConfig",
    "PairOutcome",
    "AgreementStudyResult",
    "run_agreement_study",
]

_PROPOSITIONAL = (
    FormalFallacy.BEGGING_THE_QUESTION,
    FormalFallacy.INCOMPATIBLE_PREMISES,
    FormalFallacy.PREMISE_CONCLUSION_CONTRADICTION,
    FormalFallacy.DENYING_THE_ANTECEDENT,
    FormalFallacy.AFFIRMING_THE_CONSEQUENT,
)


@dataclass(frozen=True)
class AgreementStudyConfig:
    """Knobs for the §V.C simulation."""

    reviewer_pairs: int = 8
    hazards: int = 12
    formal_instances: int = 12
    seed: int = 20150627


@dataclass(frozen=True)
class PairOutcome:
    """One reviewer pair over one material set."""

    flagged_a: int
    flagged_b: int
    both: int
    only_a: int
    only_b: int
    kappa: float

    @property
    def jaccard(self) -> float:
        union = self.both + self.only_a + self.only_b
        return self.both / union if union else 1.0


@dataclass(frozen=True)
class AgreementStudyResult:
    """Aggregates over all pairs, informal vs formal material."""

    informal_pairs: tuple[PairOutcome, ...]
    formal_pairs: tuple[PairOutcome, ...]
    formal_instances_per_pair: int
    informal_instances_per_pair: int
    formal_union_miss_rate: float

    def _mean(self, outcomes: tuple[PairOutcome, ...],
              attribute: str) -> float:
        values = [getattr(o, attribute) for o in outcomes]
        return sum(values) / len(values)

    def rows(self) -> list[dict[str, object]]:
        out = []
        for label, outcomes, instances in (
            ("informal (Greenwell kinds)", self.informal_pairs,
             self.informal_instances_per_pair),
            ("formal (Damer kinds)", self.formal_pairs,
             self.formal_instances_per_pair),
        ):
            out.append({
                "material": label,
                "instances": instances,
                "mean_flagged_each": (
                    self._mean(outcomes, "flagged_a")
                    + self._mean(outcomes, "flagged_b")
                ) / 2,
                "mean_only_one_reviewer": (
                    self._mean(outcomes, "only_a")
                    + self._mean(outcomes, "only_b")
                ),
                "mean_jaccard": self._mean(outcomes, "jaccard"),
                "mean_kappa": self._mean(outcomes, "kappa"),
            })
        return out

    def render(self) -> str:
        table = render_rows(
            self.rows(),
            title="§V.C reviewer agreement: two independent reviewers "
                  "per material set",
        )
        footer = (
            "each reviewer overlooks fallacies the other flags "
            "(Greenwell's observation);\n"
            f"two-reviewer union miss rate on FORMAL fallacies: "
            f"{self.formal_union_miss_rate:.2f} — the §V.C unknown, "
            "measured\n"
        )
        return table + footer


def _pair_outcome(
    detections_a: list[bool], detections_b: list[bool]
) -> PairOutcome:
    both = sum(
        1 for a, b in zip(detections_a, detections_b) if a and b
    )
    only_a = sum(
        1 for a, b in zip(detections_a, detections_b) if a and not b
    )
    only_b = sum(
        1 for a, b in zip(detections_a, detections_b) if b and not a
    )
    return PairOutcome(
        flagged_a=sum(detections_a),
        flagged_b=sum(detections_b),
        both=both,
        only_a=only_a,
        only_b=only_b,
        kappa=cohens_kappa(detections_a, detections_b),
    )


def run_agreement_study(
    config: AgreementStudyConfig | None = None,
) -> AgreementStudyResult:
    """Run the §V.C simulation end to end."""
    config = config or AgreementStudyConfig()
    rng = random.Random(config.seed)

    informal_outcomes: list[PairOutcome] = []
    formal_outcomes: list[PairOutcome] = []
    informal_instances = 0
    formal_union_misses = 0
    formal_total = 0

    for pair_index in range(config.reviewer_pairs):
        reviewer_a = sample_subject(
            rng, Background.SAFETY_ENGINEER, f"a{pair_index}"
        )
        reviewer_b = sample_subject(
            rng, Background.CERTIFIER, f"b{pair_index}"
        )

        # Informal material: a Greenwell-seeded argument.
        builder = ArgumentBuilder(f"agree-{pair_index}")
        top = builder.goal("The system is acceptably safe")
        strategy = builder.strategy("Argument over hazards", under=top)
        for index in range(config.hazards):
            goal = builder.goal(
                f"Hazard H{index} is acceptably managed", under=strategy
            )
            builder.solution(f"Analysis record {index}", under=goal)
        argument, records = seed_greenwell_argument(builder.build(), rng)
        size = len(argument)
        informal_instances = len(records)

        def detect_informal(subject: SubjectProfile,
                            record: InjectionRecord) -> bool:
            probability = informal_detection_probability(
                subject, record.fallacy, size
            )
            return rng.random() < probability

        detections_a = [detect_informal(reviewer_a, r) for r in records]
        detections_b = [detect_informal(reviewer_b, r) for r in records]
        informal_outcomes.append(
            _pair_outcome(detections_a, detections_b)
        )

        # Formal material: seeded Damer-form argument steps.
        formal_records = [
            inject_formal(rng, rng.choice(_PROPOSITIONAL)).records[0]
            for _ in range(config.formal_instances)
        ]
        formal_a = [
            rng.random() < manual_formal_detection_probability(
                reviewer_a, record.fallacy, 10
            )
            for record in formal_records
        ]
        formal_b = [
            rng.random() < manual_formal_detection_probability(
                reviewer_b, record.fallacy, 10
            )
            for record in formal_records
        ]
        formal_outcomes.append(_pair_outcome(formal_a, formal_b))
        formal_union_misses += sum(
            1 for a, b in zip(formal_a, formal_b) if not (a or b)
        )
        formal_total += len(formal_records)

    return AgreementStudyResult(
        informal_pairs=tuple(informal_outcomes),
        formal_pairs=tuple(formal_outcomes),
        formal_instances_per_pair=config.formal_instances,
        informal_instances_per_pair=informal_instances,
        formal_union_miss_rate=formal_union_misses / formal_total,
    )
