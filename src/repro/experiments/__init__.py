"""The five §VI studies, run on simulated subjects.

The paper's conclusion — 'where evidence is lacking, we have sketched
empirical studies that could provide it' — is implemented here: every
sketched study is a runnable, seeded experiment whose *harness*
(materials, conditions, measures, statistics) is exactly as proposed, and
whose *subjects* are parameterised cognitive models (see
:mod:`~repro.experiments.subjects` and the substitution table in
DESIGN.md).

* :mod:`~repro.experiments.review_study` — §VI.A fallacy review
* :mod:`~repro.experiments.effort_study` — §VI.B formalisation effort
* :mod:`~repro.experiments.audience_study` — §VI.C reading audience
* :mod:`~repro.experiments.instantiation_study` — §VI.D patterns
* :mod:`~repro.experiments.sufficiency_study` — §VI.E sufficiency
"""

from .agreement_study import (
    AgreementStudyConfig,
    AgreementStudyResult,
    run_agreement_study,
)
from .audience_study import (
    AudienceStudyConfig,
    AudienceStudyResult,
    run_audience_study,
    specimen_argument,
)
from .effort_study import (
    EffortStudyConfig,
    EffortStudyResult,
    run_effort_study,
)
from .instantiation_study import (
    InstantiationStudyConfig,
    InstantiationStudyResult,
    run_instantiation_study,
)
from .review_study import (
    ReviewStudyConfig,
    ReviewStudyResult,
    build_materials,
    run_review_study,
)
from .stats import (
    Summary,
    bootstrap_ci,
    cliffs_delta,
    cohens_d,
    cohens_kappa,
    mann_whitney,
    mean_pairwise_agreement,
    summarise,
)
from .subjects import (
    Background,
    SubjectProfile,
    sample_pool,
    sample_subject,
)
from .sufficiency_study import (
    SufficiencyStudyConfig,
    SufficiencyStudyResult,
    build_case,
    run_sufficiency_study,
)
from .tables import render_rows

__all__ = [
    "AgreementStudyConfig",
    "AgreementStudyResult",
    "run_agreement_study",
    "AudienceStudyConfig",
    "AudienceStudyResult",
    "run_audience_study",
    "specimen_argument",
    "EffortStudyConfig",
    "EffortStudyResult",
    "run_effort_study",
    "InstantiationStudyConfig",
    "InstantiationStudyResult",
    "run_instantiation_study",
    "ReviewStudyConfig",
    "ReviewStudyResult",
    "build_materials",
    "run_review_study",
    "Summary",
    "bootstrap_ci",
    "cliffs_delta",
    "cohens_d",
    "cohens_kappa",
    "mann_whitney",
    "mean_pairwise_agreement",
    "summarise",
    "Background",
    "SubjectProfile",
    "sample_pool",
    "sample_subject",
    "SufficiencyStudyConfig",
    "SufficiencyStudyResult",
    "build_case",
    "run_sufficiency_study",
    "render_rows",
]
