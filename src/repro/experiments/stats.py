"""Statistics for the §VI studies.

Small, audited implementations of the analyses the studies report:
bootstrap confidence intervals (seeded, deterministic), Mann-Whitney U
via scipy, Cohen's d and Cliff's delta effect sizes, Cohen's kappa for
two raters, and mean pairwise agreement for assessor pools (the §VI.E
'if many assessors report similar values ... if they report very
different values, at least some must be wrong').
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Sequence

from scipy import stats as scipy_stats

__all__ = [
    "Summary",
    "summarise",
    "bootstrap_ci",
    "mann_whitney",
    "cohens_d",
    "cliffs_delta",
    "cohens_kappa",
    "mean_pairwise_agreement",
]


@dataclass(frozen=True)
class Summary:
    """Descriptive summary of one sample."""

    n: int
    mean: float
    sd: float
    ci_low: float
    ci_high: float

    def __str__(self) -> str:
        return (
            f"n={self.n} mean={self.mean:.3f} sd={self.sd:.3f} "
            f"95% CI [{self.ci_low:.3f}, {self.ci_high:.3f}]"
        )


def summarise(
    values: Sequence[float], seed: int = 0, resamples: int = 2000
) -> Summary:
    """Mean, SD, and a seeded bootstrap 95% CI."""
    if not values:
        raise ValueError("empty sample")
    n = len(values)
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / max(1, n - 1)
    low, high = bootstrap_ci(values, seed=seed, resamples=resamples)
    return Summary(n, mean, math.sqrt(variance), low, high)


def bootstrap_ci(
    values: Sequence[float],
    seed: int = 0,
    resamples: int = 2000,
    alpha: float = 0.05,
) -> tuple[float, float]:
    """Percentile bootstrap CI for the mean (deterministic in ``seed``)."""
    if not values:
        raise ValueError("empty sample")
    rng = random.Random(seed)
    n = len(values)
    means: list[float] = []
    for _ in range(resamples):
        total = 0.0
        for _ in range(n):
            total += values[rng.randrange(n)]
        means.append(total / n)
    means.sort()
    low_index = int((alpha / 2) * resamples)
    high_index = min(resamples - 1, int((1 - alpha / 2) * resamples))
    return means[low_index], means[high_index]


def mann_whitney(
    left: Sequence[float], right: Sequence[float]
) -> tuple[float, float]:
    """Two-sided Mann-Whitney U; returns (statistic, p-value)."""
    if not left or not right:
        raise ValueError("both samples must be non-empty")
    result = scipy_stats.mannwhitneyu(
        list(left), list(right), alternative="two-sided"
    )
    return float(result.statistic), float(result.pvalue)


def cohens_d(left: Sequence[float], right: Sequence[float]) -> float:
    """Cohen's d with pooled SD (positive when left > right)."""
    n1, n2 = len(left), len(right)
    if n1 < 2 or n2 < 2:
        raise ValueError("need at least two observations per group")
    mean1 = sum(left) / n1
    mean2 = sum(right) / n2
    var1 = sum((v - mean1) ** 2 for v in left) / (n1 - 1)
    var2 = sum((v - mean2) ** 2 for v in right) / (n2 - 1)
    pooled = math.sqrt(
        ((n1 - 1) * var1 + (n2 - 1) * var2) / (n1 + n2 - 2)
    )
    if pooled == 0:
        return 0.0
    return (mean1 - mean2) / pooled


def cliffs_delta(left: Sequence[float], right: Sequence[float]) -> float:
    """Cliff's delta: P(left > right) - P(left < right)."""
    if not left or not right:
        raise ValueError("both samples must be non-empty")
    greater = 0
    lesser = 0
    for a in left:
        for b in right:
            if a > b:
                greater += 1
            elif a < b:
                lesser += 1
    return (greater - lesser) / (len(left) * len(right))


def cohens_kappa(
    rater_a: Sequence[object], rater_b: Sequence[object]
) -> float:
    """Cohen's kappa for two raters over matched items."""
    if len(rater_a) != len(rater_b):
        raise ValueError("raters must judge the same items")
    if not rater_a:
        raise ValueError("empty ratings")
    n = len(rater_a)
    categories = sorted(
        set(rater_a) | set(rater_b), key=repr
    )
    observed = sum(
        1 for a, b in zip(rater_a, rater_b) if a == b
    ) / n
    expected = 0.0
    for category in categories:
        pa = sum(1 for a in rater_a if a == category) / n
        pb = sum(1 for b in rater_b if b == category) / n
        expected += pa * pb
    if expected == 1.0:
        return 1.0
    return (observed - expected) / (1.0 - expected)


def mean_pairwise_agreement(
    judgments: Sequence[Sequence[object]],
) -> float:
    """Mean exact-match rate over all assessor pairs (matched items).

    ``judgments[k]`` is assessor ``k``'s verdict list.  The §VI.E
    inter-assessor agreement measure: near 1.0 means assessors converge;
    low values mean 'at least some must be wrong'.
    """
    if len(judgments) < 2:
        raise ValueError("need at least two assessors")
    length = len(judgments[0])
    if any(len(j) != length for j in judgments):
        raise ValueError("assessors must judge the same items")
    if length == 0:
        raise ValueError("no items judged")
    pair_scores: list[float] = []
    for i in range(len(judgments)):
        for j in range(i + 1, len(judgments)):
            matches = sum(
                1 for a, b in zip(judgments[i], judgments[j]) if a == b
            )
            pair_scores.append(matches / length)
    return sum(pair_scores) / len(pair_scores)
