"""Experiment C: restriction of the reading audience.

§VI.C: 'we could experimentally measure reading speed and comprehension,
using an informal version of the specimen argument as a control.
Subjects should be selected from the backgrounds that might be expected
of an argument reader.'

Design implemented here:

* Materials: one specimen safety argument rendered two ways — the
  informal control (prose rendering of the GSN argument) and the
  formalised treatment (the same argument with its Rushby-style formal
  skeleton inlined, so each claim carries its symbolic form).  Word
  counts come from the actual renderings.
* Subjects: pools from all six §II.A stakeholder backgrounds; each
  subject reads both versions (order effects are outside this model) and
  answers a fixed battery of comprehension questions.
* Measures per background x version: mean reading minutes and mean
  comprehension score, with bootstrap CIs; the slowdown ratio and the
  comprehension drop quantify the audience restriction.

A questionnaire records each subject's background and training (§VI.C's
analysis covariate), exposed via the per-subject records.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from ..core.argument import Argument
from ..core.builder import ArgumentBuilder
from ..formalise.translator import formalise_argument
from ..notation.prose import render_prose
from .stats import Summary, summarise
from .subjects import (
    Background,
    SubjectProfile,
    comprehension_probability,
    reading_minutes,
    sample_subject,
)
from .tables import render_rows

__all__ = [
    "AudienceStudyConfig",
    "AudienceCell",
    "SubjectRecord",
    "AudienceStudyResult",
    "specimen_argument",
    "run_audience_study",
]


def specimen_argument() -> Argument:
    """The specimen argument both versions render.

    A compact thrust-reverser case built around the paper's own §II.B
    example claim: 'the thrust reversers are inhibited when the aircraft
    is not on the ground'.
    """
    builder = ArgumentBuilder("thrust-reverser")
    top = builder.goal(
        "The thrust reversers are inhibited when the aircraft is not "
        "on the ground"
    )
    builder.context(
        "Aircraft type: twin-engine transport; reverser system R2",
        under=top,
    )
    strategy = builder.strategy(
        "Argument over the inhibit interlock and its monitoring",
        under=top,
    )
    interlock = builder.goal(
        "The weight-on-wheels interlock blocks reverser deployment "
        "in flight", under=strategy,
    )
    builder.solution(
        "Interlock logic verification report VR-114", under=interlock
    )
    monitor = builder.goal(
        "The deployment monitor annunciates any uncommanded transit",
        under=strategy,
    )
    builder.solution(
        "Monitor coverage analysis MC-7", under=monitor
    )
    crew = builder.goal(
        "Crew procedures recover an uncommanded deployment within "
        "the certified envelope", under=strategy,
    )
    builder.solution(
        "Simulator trial records ST-31", under=crew
    )
    return builder.build()


def _word_counts(argument: Argument) -> tuple[int, int]:
    """(informal words, formalised words) from actual renderings."""
    informal_words = len(render_prose(argument).split())
    formalisation = formalise_argument(argument)
    formal_extra = sum(
        len(str(rule).split()) for rule in
        formalisation.rules + formalisation.assumed_rules
    ) + sum(
        len(str(atom).split()) + 1
        for atom in formalisation.evidence_atoms.values()
    )
    return informal_words, informal_words + formal_extra


@dataclass(frozen=True)
class AudienceStudyConfig:
    """Knobs for Experiment C."""

    subjects_per_background: int = 12
    questions: int = 8
    seed: int = 20150624


@dataclass(frozen=True)
class SubjectRecord:
    """The questionnaire row for one subject (§VI.C covariates)."""

    identifier: str
    background: Background
    formal_methods_training: bool
    informal_minutes: float
    formal_minutes: float
    informal_score: float
    formal_score: float


@dataclass(frozen=True)
class AudienceCell:
    """Aggregates for one background x version."""

    background: Background
    version: str
    minutes: Summary
    comprehension: Summary


@dataclass(frozen=True)
class AudienceStudyResult:
    """All cells plus per-subject records and headline ratios."""

    cells: tuple[AudienceCell, ...]
    records: tuple[SubjectRecord, ...]

    def rows(self) -> list[dict[str, object]]:
        return [
            {
                "background": cell.background.value,
                "version": cell.version,
                "mean_minutes": cell.minutes.mean,
                "minutes_ci_low": cell.minutes.ci_low,
                "minutes_ci_high": cell.minutes.ci_high,
                "mean_comprehension": cell.comprehension.mean,
                "compr_ci_low": cell.comprehension.ci_low,
                "compr_ci_high": cell.comprehension.ci_high,
            }
            for cell in self.cells
        ]

    def slowdown(self, background: Background) -> float:
        informal = next(
            c for c in self.cells
            if c.background is background and c.version == "informal"
        )
        formal = next(
            c for c in self.cells
            if c.background is background and c.version == "formalised"
        )
        return formal.minutes.mean / informal.minutes.mean

    def comprehension_drop(self, background: Background) -> float:
        informal = next(
            c for c in self.cells
            if c.background is background and c.version == "informal"
        )
        formal = next(
            c for c in self.cells
            if c.background is background and c.version == "formalised"
        )
        return informal.comprehension.mean - formal.comprehension.mean

    def render(self) -> str:
        table = render_rows(
            self.rows(),
            title="Experiment C: reading speed and comprehension by "
                  "stakeholder background",
        )
        lines = [table]
        for background in Background:
            lines.append(
                f"{background.value}: slowdown x"
                f"{self.slowdown(background):.2f}, comprehension drop "
                f"{self.comprehension_drop(background):+.3f}"
            )
        return "\n".join(lines) + "\n"


def run_audience_study(
    config: AudienceStudyConfig | None = None,
) -> AudienceStudyResult:
    """Run Experiment C end to end."""
    config = config or AudienceStudyConfig()
    rng = random.Random(config.seed)
    argument = specimen_argument()
    informal_words, formal_words = _word_counts(argument)

    records: list[SubjectRecord] = []
    for background in Background:
        for index in range(config.subjects_per_background):
            subject = sample_subject(
                rng, background, f"{background.value}-{index:02d}"
            )
            informal_minutes = reading_minutes(
                subject, informal_words, formal=False
            ) * max(0.6, rng.gauss(1.0, 0.1))
            formal_minutes = reading_minutes(
                subject, formal_words, formal=True
            ) * max(0.6, rng.gauss(1.0, 0.1))
            informal_correct = sum(
                1 for _ in range(config.questions)
                if rng.random() < comprehension_probability(
                    subject, formal=False
                )
            )
            formal_correct = sum(
                1 for _ in range(config.questions)
                if rng.random() < comprehension_probability(
                    subject, formal=True
                )
            )
            records.append(SubjectRecord(
                identifier=subject.identifier,
                background=background,
                formal_methods_training=subject.formal_methods_training,
                informal_minutes=informal_minutes,
                formal_minutes=formal_minutes,
                informal_score=informal_correct / config.questions,
                formal_score=formal_correct / config.questions,
            ))

    cells: list[AudienceCell] = []
    for background in Background:
        mine = [r for r in records if r.background is background]
        cells.append(AudienceCell(
            background=background,
            version="informal",
            minutes=summarise(
                [r.informal_minutes for r in mine], seed=config.seed
            ),
            comprehension=summarise(
                [r.informal_score for r in mine], seed=config.seed + 1
            ),
        ))
        cells.append(AudienceCell(
            background=background,
            version="formalised",
            minutes=summarise(
                [r.formal_minutes for r in mine], seed=config.seed + 2
            ),
            comprehension=summarise(
                [r.formal_score for r in mine], seed=config.seed + 3
            ),
        ))
    return AudienceStudyResult(tuple(cells), tuple(records))
