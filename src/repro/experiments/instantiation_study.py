"""Experiment D: more reliably correct pattern instantiation.

§VI.D: 'we could measure and compare defect rates between volunteers who
instantiate informal patterns and review them and volunteers that use a
formalised pattern instantiation tool with parameter checking.  We could
also measure whether the proposed mechanism speeds up or slows down
argument creation.'

Design implemented here:

* Materials: the hazard-avoidance pattern of
  :func:`repro.core.patterns.hazard_avoidance_pattern`, instantiated over
  tasks of varying hazard-list length.
* Condition ``informal``: the subject hand-copies the pattern.  Error
  processes (rates scale with 1-care): omitting a claim, replacing two
  placeholders standing for the same concept with incompatible text,
  type/range errors (a residual-risk percentage of 250), and — care-
  independent — *semantic misuse*: a well-typed but meaningless binding
  (Matsuno's 'Railway hazards' for 'System X').  A manual review then
  catches each defect with a care-scaled probability.
* Condition ``tool``: the same error attempts hit the real
  :meth:`~repro.core.patterns.Pattern.instantiate` type checker — which
  is *executed*, not simulated: omissions are partial bindings, type and
  range errors are sort violations, and both raise
  :class:`~repro.core.patterns.InstantiationError`, forcing a fix (a time
  cost).  Incompatible-replacement errors cannot occur at all (one
  binding fills every occurrence).  Semantic misuse sails through —
  type checking cannot see meaning.
* Measures: residual defects per 100 instantiations by category, and
  creation time, per condition.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Mapping

from ..core.patterns import (
    Binding,
    InstantiationError,
    Pattern,
    hazard_avoidance_pattern,
)
from .stats import Summary, summarise
from .subjects import Background, SubjectProfile, sample_pool
from .tables import render_rows

__all__ = [
    "InstantiationStudyConfig",
    "DefectCounts",
    "InstantiationOutcome",
    "InstantiationStudyResult",
    "run_instantiation_study",
]

#: Minutes to hand-copy one pattern element informally.
_COPY_MINUTES_PER_ELEMENT = 1.2
#: Minutes to enter one binding value in the tool.
_TOOL_BINDING_MINUTES = 0.6
#: One-off tool setup minutes per task (loading the pattern, etc.).
_TOOL_SETUP_MINUTES = 2.0
#: Minutes to fix one tool-rejected binding.
_TOOL_FIX_MINUTES = 1.5
#: Minutes for the manual review pass, per element.
_REVIEW_MINUTES_PER_ELEMENT = 0.8

#: Base error-attempt rates (scaled by 1 - care where care-dependent).
_P_OMIT = 0.30
_P_INCOMPATIBLE = 0.25
_P_TYPE = 0.20
_P_SEMANTIC = 0.08  # care-independent: the subject believes it's right
#: Probability a manual review catches one present defect, times care.
_REVIEW_CATCH = 0.75


@dataclass(frozen=True)
class InstantiationStudyConfig:
    """Knobs for Experiment D."""

    subjects_per_group: int = 14
    tasks: int = 6
    min_hazards: int = 3
    max_hazards: int = 9
    seed: int = 20150625


@dataclass
class DefectCounts:
    """Residual defects by category."""

    omissions: int = 0
    incompatible: int = 0
    type_errors: int = 0
    semantic: int = 0

    @property
    def total(self) -> int:
        return (
            self.omissions + self.incompatible + self.type_errors
            + self.semantic
        )

    def as_dict(self) -> dict[str, int]:
        return {
            "omissions": self.omissions,
            "incompatible": self.incompatible,
            "type_errors": self.type_errors,
            "semantic": self.semantic,
        }


@dataclass(frozen=True)
class InstantiationOutcome:
    """One condition's aggregates."""

    condition: str
    instantiations: int
    defects: DefectCounts
    minutes: Summary

    def defects_per_100(self) -> dict[str, float]:
        scale = 100.0 / self.instantiations
        return {
            name: count * scale
            for name, count in self.defects.as_dict().items()
        } | {"total": self.defects.total * scale}


@dataclass(frozen=True)
class InstantiationStudyResult:
    """Both conditions plus the tool-check audit."""

    informal: InstantiationOutcome
    tool: InstantiationOutcome
    tool_rejected_every_typing_error: bool

    def rows(self) -> list[dict[str, object]]:
        out = []
        for outcome in (self.informal, self.tool):
            per_100 = outcome.defects_per_100()
            out.append({
                "condition": outcome.condition,
                "mean_minutes": outcome.minutes.mean,
                "omissions/100": per_100["omissions"],
                "incompatible/100": per_100["incompatible"],
                "type_errors/100": per_100["type_errors"],
                "semantic/100": per_100["semantic"],
                "total/100": per_100["total"],
            })
        return out

    def render(self) -> str:
        table = render_rows(
            self.rows(),
            title="Experiment D: pattern instantiation defect rates "
                  "(informal+review vs typed tool)",
        )
        footer = (
            "tool rejected every attempted typing error: "
            f"{self.tool_rejected_every_typing_error}; semantic misuse "
            "(well-typed, meaningless) survives both conditions\n"
        )
        return table + footer


def _task_binding(task_index: int, config: InstantiationStudyConfig,
                  rng: random.Random) -> Binding:
    span = config.max_hazards - config.min_hazards + 1
    hazards = config.min_hazards + (task_index % span)
    names = [f"H{i}-{rng.randrange(100)}" for i in range(hazards)]
    return Binding.of(
        system=f"System-{task_index}",
        hazards=names,
        residual_risk=rng.randrange(5, 60),
    )


def run_instantiation_study(
    config: InstantiationStudyConfig | None = None,
) -> InstantiationStudyResult:
    """Run Experiment D end to end."""
    config = config or InstantiationStudyConfig()
    rng = random.Random(config.seed)
    pattern = hazard_avoidance_pattern()
    pool = sample_pool(
        rng, config.subjects_per_group * 2,
        backgrounds=(Background.SAFETY_ENGINEER,
                     Background.SOFTWARE_ENGINEER),
    )
    group_informal = pool[: config.subjects_per_group]
    group_tool = pool[config.subjects_per_group:]

    informal_defects = DefectCounts()
    informal_minutes: list[float] = []
    informal_count = 0
    for subject in group_informal:
        error_proneness = 1.0 - subject.care
        for task_index in range(config.tasks):
            binding = _task_binding(task_index, config, rng)
            hazards = len(binding.get("hazards"))
            elements = 4 + 2 * hazards  # matches the pattern expansion
            minutes = elements * _COPY_MINUTES_PER_ELEMENT
            attempts = DefectCounts(
                omissions=int(rng.random() < _P_OMIT * error_proneness),
                incompatible=int(
                    rng.random() < _P_INCOMPATIBLE * error_proneness
                ),
                type_errors=int(
                    rng.random() < _P_TYPE * error_proneness
                ),
                semantic=int(rng.random() < _P_SEMANTIC),
            )
            # Manual review pass: catches non-semantic defects with a
            # care-scaled probability; semantic misuse looks plausible to
            # the same person who made it.
            minutes += elements * _REVIEW_MINUTES_PER_ELEMENT
            catch = _REVIEW_CATCH * subject.care
            for name in ("omissions", "incompatible", "type_errors"):
                present = getattr(attempts, name)
                if present and rng.random() < catch:
                    setattr(attempts, name, 0)
                    minutes += 2.0  # rework
            informal_defects.omissions += attempts.omissions
            informal_defects.incompatible += attempts.incompatible
            informal_defects.type_errors += attempts.type_errors
            informal_defects.semantic += attempts.semantic
            informal_minutes.append(minutes)
            informal_count += 1

    tool_defects = DefectCounts()
    tool_minutes: list[float] = []
    tool_count = 0
    tool_always_rejected = True
    for subject in group_tool:
        error_proneness = 1.0 - subject.care
        for task_index in range(config.tasks):
            binding = _task_binding(task_index, config, rng)
            values = binding.as_dict()
            minutes = _TOOL_SETUP_MINUTES + len(values) * \
                _TOOL_BINDING_MINUTES
            # Attempted omission: leave a parameter unbound.
            if rng.random() < _P_OMIT * error_proneness:
                partial = Binding.of(
                    system=values["system"], hazards=values["hazards"]
                )
                try:
                    pattern.instantiate(partial)
                    tool_always_rejected = False
                    tool_defects.omissions += 1
                except InstantiationError:
                    minutes += _TOOL_FIX_MINUTES
            # Attempted type/range error: risk percentage out of range.
            if rng.random() < _P_TYPE * error_proneness:
                broken = Binding.of(
                    system=values["system"],
                    hazards=values["hazards"],
                    residual_risk=250,
                )
                try:
                    pattern.instantiate(broken)
                    tool_always_rejected = False
                    tool_defects.type_errors += 1
                except InstantiationError:
                    minutes += _TOOL_FIX_MINUTES
            # Incompatible replacement cannot happen: one binding fills
            # every occurrence of a placeholder.
            # Semantic misuse: well-typed nonsense sails through.
            if rng.random() < _P_SEMANTIC:
                nonsense = Binding.of(
                    system="Railway hazards",  # Matsuno's example misuse
                    hazards=values["hazards"],
                    residual_risk=values["residual_risk"],
                )
                pattern.instantiate(nonsense)  # type checker accepts it
                tool_defects.semantic += 1
            else:
                pattern.instantiate(Binding.of(**values))
            tool_minutes.append(minutes)
            tool_count += 1

    return InstantiationStudyResult(
        informal=InstantiationOutcome(
            condition="informal+review",
            instantiations=informal_count,
            defects=informal_defects,
            minutes=summarise(informal_minutes, seed=config.seed),
        ),
        tool=InstantiationOutcome(
            condition="typed_tool",
            instantiations=tool_count,
            defects=tool_defects,
            minutes=summarise(tool_minutes, seed=config.seed + 1),
        ),
        tool_rejected_every_typing_error=tool_always_rejected,
    )
