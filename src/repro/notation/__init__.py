"""Concrete syntaxes for assurance arguments.

§II.B surveys the forms arguments have taken — prose, tables, GSN, CAE —
and notes opinions differ on which is best [32].  This package provides
all of them, plus machine interchange forms:

* :mod:`~repro.notation.gsn_text` — round-tripping textual GSN
* :mod:`~repro.notation.cae` — Claims-Argument-Evidence + converters
* :mod:`~repro.notation.prose` — numbered prose rendering
* :mod:`~repro.notation.tabular` — table rendering
* :mod:`~repro.notation.dot` — Graphviz DOT export
* :mod:`~repro.notation.ascii_art` — terminal trees (hicase-aware)
* :mod:`~repro.notation.json_io` — JSON interchange
"""

from .ascii_art import render_tree, render_view
from .cae import CaeCase, CaeNode, CaeNodeType, cae_to_gsn, gsn_to_cae
from .dot import to_dot
from .gsn_text import GsnTextError, parse, serialise
from .json_io import (
    argument_from_json,
    argument_to_json,
    case_from_json,
    case_to_json,
)
from .prose import render_prose
from .tabular import render_table, rows

__all__ = [
    "render_tree",
    "render_view",
    "CaeCase",
    "CaeNode",
    "CaeNodeType",
    "cae_to_gsn",
    "gsn_to_cae",
    "to_dot",
    "GsnTextError",
    "parse",
    "serialise",
    "argument_from_json",
    "argument_to_json",
    "case_from_json",
    "case_to_json",
    "render_prose",
    "render_table",
    "rows",
]
