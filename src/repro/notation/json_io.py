"""JSON de/serialisation for arguments and assurance cases.

A stable interchange form for tooling: nodes, links, metadata, evidence,
citations, and the lifecycle log all round-trip.  The schema is plain and
versioned so downstream tools can consume it without this library.
"""

from __future__ import annotations

import json
from typing import Any

from ..core.argument import Argument, LinkKind
from ..core.case import AssuranceCase, SafetyCriterion
from ..core.evidence import EvidenceItem, EvidenceKind
from ..core.nodes import Node, NodeType

__all__ = [
    "argument_to_json",
    "argument_from_json",
    "case_to_json",
    "case_from_json",
    "SCHEMA_VERSION",
]

SCHEMA_VERSION = 1


def _node_payload(node: Node) -> dict[str, Any]:
    payload: dict[str, Any] = {
        "id": node.identifier,
        "type": node.node_type.value,
        "text": node.text,
    }
    if node.undeveloped:
        payload["undeveloped"] = True
    if node.module:
        payload["module"] = node.module
    if node.metadata:
        payload["metadata"] = {
            name: list(params) for name, params in node.metadata
        }
    return payload


def argument_to_json(argument: Argument, indent: int | None = 2) -> str:
    """Serialise an argument to a JSON document."""
    payload = {
        "schema": SCHEMA_VERSION,
        "name": argument.name,
        "nodes": [_node_payload(node) for node in argument.nodes],
        "links": [
            {
                "source": link.source,
                "target": link.target,
                "kind": link.kind.value,
            }
            for link in argument.links
        ],
    }
    return json.dumps(payload, indent=indent)


def _node_from_payload(payload: dict[str, Any]) -> Node:
    metadata = tuple(sorted(
        (name, tuple(params))
        for name, params in payload.get("metadata", {}).items()
    ))
    return Node(
        identifier=payload["id"],
        node_type=NodeType(payload["type"]),
        text=payload["text"],
        undeveloped=payload.get("undeveloped", False),
        module=payload.get("module"),
        metadata=metadata,
    )


def argument_from_json(document: str) -> Argument:
    """Parse an argument from its JSON form."""
    payload = json.loads(document)
    if payload.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported schema version {payload.get('schema')!r}"
        )
    argument = Argument(name=payload["name"])
    for node_payload in payload["nodes"]:
        argument.add_node(_node_from_payload(node_payload))
    for link_payload in payload["links"]:
        argument.add_link(
            link_payload["source"],
            link_payload["target"],
            LinkKind(link_payload["kind"]),
        )
    return argument


def case_to_json(case: AssuranceCase, indent: int | None = 2) -> str:
    """Serialise a whole assurance case (argument + evidence + citations)."""
    payload = {
        "schema": SCHEMA_VERSION,
        "name": case.name,
        "criterion": (
            {
                "statement": case.criterion.statement,
                "risk_metric": case.criterion.risk_metric,
                "threshold": case.criterion.threshold,
            }
            if case.criterion
            else None
        ),
        "argument": json.loads(argument_to_json(case.argument, indent=None)),
        "evidence": [
            {
                "id": item.identifier,
                "kind": item.kind.value,
                "description": item.description,
                "coverage": item.coverage,
                "age_days": item.age_days,
                "trusted_tool": item.trusted_tool,
                "topic": item.topic,
            }
            for item in case.evidence
        ],
        "citations": {
            node.identifier: [
                item.identifier for item in case.citations(node.identifier)
            ]
            for node in case.argument.nodes
            if case.citations(node.identifier)
        },
    }
    return json.dumps(payload, indent=indent)


def case_from_json(document: str) -> AssuranceCase:
    """Parse an assurance case from its JSON form.

    The lifecycle log is intentionally not round-tripped: history belongs
    to the live case that produced it; a loaded case starts a fresh log
    with its own CREATED event.
    """
    payload = json.loads(document)
    if payload.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported schema version {payload.get('schema')!r}"
        )
    argument = argument_from_json(json.dumps(payload["argument"]))
    criterion = None
    if payload.get("criterion"):
        criterion = SafetyCriterion(
            statement=payload["criterion"]["statement"],
            risk_metric=payload["criterion"]["risk_metric"],
            threshold=payload["criterion"]["threshold"],
        )
    case = AssuranceCase(payload["name"], argument, criterion)
    for item_payload in payload.get("evidence", []):
        case.evidence.add(EvidenceItem(
            identifier=item_payload["id"],
            kind=EvidenceKind(item_payload["kind"]),
            description=item_payload["description"],
            coverage=item_payload.get("coverage", 1.0),
            age_days=item_payload.get("age_days", 0),
            trusted_tool=item_payload.get("trusted_tool", True),
            topic=item_payload.get("topic", "functional"),
        ))
    for solution, cited in payload.get("citations", {}).items():
        for evidence_id in cited:
            case.cite(solution, evidence_id)
    return case
