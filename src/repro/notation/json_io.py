"""JSON de/serialisation for arguments and assurance cases.

A stable interchange form for tooling: nodes, links, metadata, evidence,
citations, and the lifecycle log all round-trip.  The schema is plain and
versioned so downstream tools can consume it without this library.

The per-record payload helpers (:func:`node_payload`,
:func:`node_from_payload`, :func:`evidence_payload`,
:func:`evidence_from_payload`) are public: the persistent sharded store
(:mod:`repro.store`) streams exactly these payloads, so the document form
and the sharded form stay one schema.

Malformed documents are rejected up front with a clear :class:`ValueError`
— duplicate node identifiers and links whose endpoints name no node in
the document fail *before* any graph is built, instead of surfacing as
confusing downstream errors mid-construction.
"""

from __future__ import annotations

import json
from typing import Any

from ..core.argument import Argument, LinkKind
from ..core.case import AssuranceCase, SafetyCriterion
from ..core.evidence import EvidenceItem, EvidenceKind
from ..core.nodes import Node, NodeType

__all__ = [
    "argument_to_json",
    "argument_from_json",
    "case_to_json",
    "case_from_json",
    "node_payload",
    "node_from_payload",
    "evidence_payload",
    "evidence_from_payload",
    "SCHEMA_VERSION",
]

SCHEMA_VERSION = 1


def node_payload(node: Node) -> dict[str, Any]:
    """The JSON-ready payload of one node (shared with :mod:`repro.store`)."""
    payload: dict[str, Any] = {
        "id": node.identifier,
        "type": node.node_type.value,
        "text": node.text,
    }
    if node.undeveloped:
        payload["undeveloped"] = True
    if node.module:
        payload["module"] = node.module
    if node.metadata:
        payload["metadata"] = {
            name: list(params) for name, params in node.metadata
        }
    return payload


def node_from_payload(payload: dict[str, Any]) -> Node:
    """Rebuild a node from its payload (extra keys are ignored)."""
    metadata = tuple(sorted(
        (name, tuple(params))
        for name, params in payload.get("metadata", {}).items()
    ))
    return Node(
        identifier=payload["id"],
        node_type=NodeType(payload["type"]),
        text=payload["text"],
        undeveloped=payload.get("undeveloped", False),
        module=payload.get("module"),
        metadata=metadata,
    )


def argument_to_json(argument: Argument, indent: int | None = 2) -> str:
    """Serialise an argument to a JSON document."""
    payload = {
        "schema": SCHEMA_VERSION,
        "name": argument.name,
        "nodes": [node_payload(node) for node in argument.nodes],
        "links": [
            {
                "source": link.source,
                "target": link.target,
                "kind": link.kind.value,
            }
            for link in argument.links
        ],
    }
    return json.dumps(payload, indent=indent)


def _argument_from_payload(payload: dict[str, Any]) -> Argument:
    """Validate and build the argument described by a parsed document.

    Checks the schema version (also for argument documents nested in a
    case).  Duplicate node identifiers and dangling link endpoints are
    rejected here, with messages naming the offending record — the
    structural errors a hand-edited or tool-merged document most often
    contains.
    """
    if payload.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported schema version {payload.get('schema')!r}"
        )
    nodes: list[Node] = []
    seen: set[str] = set()
    for node_doc in payload["nodes"]:
        node = node_from_payload(node_doc)
        if node.identifier in seen:
            raise ValueError(
                "invalid argument document: duplicate node id "
                f"{node.identifier!r}"
            )
        seen.add(node.identifier)
        nodes.append(node)
    links: list[tuple[str, str, LinkKind]] = []
    for link_doc in payload["links"]:
        source, target = link_doc["source"], link_doc["target"]
        for role, endpoint in (("source", source), ("target", target)):
            if endpoint not in seen:
                raise ValueError(
                    f"invalid argument document: link {source!r} -> "
                    f"{target!r} has a dangling {role} ({endpoint!r} "
                    "names no node in the document)"
                )
        links.append((source, target, LinkKind(link_doc["kind"])))
    argument = Argument(name=payload["name"])
    with argument.batch():
        argument.add_nodes(nodes)
        argument.add_links(links)
    return argument


def argument_from_json(document: str) -> Argument:
    """Parse an argument from its JSON form."""
    return _argument_from_payload(json.loads(document))


def evidence_payload(item: EvidenceItem) -> dict[str, Any]:
    """The JSON-ready payload of one evidence item."""
    return {
        "id": item.identifier,
        "kind": item.kind.value,
        "description": item.description,
        "coverage": item.coverage,
        "age_days": item.age_days,
        "trusted_tool": item.trusted_tool,
        "topic": item.topic,
    }


def evidence_from_payload(payload: dict[str, Any]) -> EvidenceItem:
    """Rebuild an evidence item from its payload."""
    return EvidenceItem(
        identifier=payload["id"],
        kind=EvidenceKind(payload["kind"]),
        description=payload["description"],
        coverage=payload.get("coverage", 1.0),
        age_days=payload.get("age_days", 0),
        trusted_tool=payload.get("trusted_tool", True),
        topic=payload.get("topic", "functional"),
    )


def case_to_json(case: AssuranceCase, indent: int | None = 2) -> str:
    """Serialise a whole assurance case (argument + evidence + citations)."""
    payload = {
        "schema": SCHEMA_VERSION,
        "name": case.name,
        "criterion": (
            {
                "statement": case.criterion.statement,
                "risk_metric": case.criterion.risk_metric,
                "threshold": case.criterion.threshold,
            }
            if case.criterion
            else None
        ),
        "argument": json.loads(argument_to_json(case.argument, indent=None)),
        "evidence": [evidence_payload(item) for item in case.evidence],
        "citations": {
            node.identifier: [
                item.identifier for item in case.citations(node.identifier)
            ]
            for node in case.argument.nodes
            if case.citations(node.identifier)
        },
    }
    return json.dumps(payload, indent=indent)


def case_from_json(document: str) -> AssuranceCase:
    """Parse an assurance case from its JSON form.

    The lifecycle log is intentionally not round-tripped: history belongs
    to the live case that produced it; a loaded case starts a fresh log
    with its own CREATED event.  The argument document is validated as in
    :func:`argument_from_json`; citations naming unknown solutions or
    evidence are likewise rejected with a clear :class:`ValueError`.
    """
    payload = json.loads(document)
    if payload.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported schema version {payload.get('schema')!r}"
        )
    argument = _argument_from_payload(payload["argument"])
    criterion = None
    if payload.get("criterion"):
        criterion = SafetyCriterion(
            statement=payload["criterion"]["statement"],
            risk_metric=payload["criterion"]["risk_metric"],
            threshold=payload["criterion"]["threshold"],
        )
    case = AssuranceCase(payload["name"], argument, criterion)
    for item_payload in payload.get("evidence", []):
        case.evidence.add(evidence_from_payload(item_payload))
    for solution, cited in payload.get("citations", {}).items():
        if solution not in argument:
            raise ValueError(
                "invalid case document: citation references unknown "
                f"solution node {solution!r}"
            )
        for evidence_id in cited:
            if evidence_id not in case.evidence:
                raise ValueError(
                    f"invalid case document: citation on {solution!r} "
                    f"references unknown evidence {evidence_id!r}"
                )
            case.cite(solution, evidence_id)
    return case
