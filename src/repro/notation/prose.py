"""Prose rendering of assurance arguments.

'Many [arguments] have been written in prose' (§II.B, citing the Opalinus
Clay safety report [29]), and Holloway [32] argues prose remains a live
alternative to graphics.  This renderer turns a GSN argument into numbered
prose paragraphs so the audience-study (§VI.C) can present the same
argument in graphical-text, tabular, and prose conditions.

The rendering is deterministic: claims become declarative sentences with
their support introduced by connective phrases chosen by node kind, and
section numbering follows the support hierarchy (1, 1.1, 1.1.2, ...).
"""

from __future__ import annotations

from ..core.argument import Argument, LinkKind
from ..core.nodes import Node, NodeType

__all__ = ["render_prose", "render_paragraph"]

_SUPPORT_PHRASES: dict[NodeType, str] = {
    NodeType.GOAL: "This holds because",
    NodeType.AWAY_GOAL: "This is established elsewhere:",
    NodeType.STRATEGY: "The argument proceeds as follows:",
    NodeType.SOLUTION: "This is evidenced by",
}

_CONTEXT_PHRASES: dict[NodeType, str] = {
    NodeType.CONTEXT: "In the context of",
    NodeType.ASSUMPTION: "Assuming that",
    NodeType.JUSTIFICATION: "This step is justified because",
}


def render_prose(argument: Argument) -> str:
    """Render the whole argument as numbered prose sections."""
    roots = argument.roots()
    if not roots:
        return f"(The argument {argument.name!r} states no top-level claim.)"
    sections: list[str] = [f"The case {argument.name!r} argues as follows.",
                           ""]
    for index, root in enumerate(roots, start=1):
        _render_node(argument, root, str(index), sections, set())
    return "\n".join(sections).rstrip() + "\n"


def _render_node(
    argument: Argument,
    node: Node,
    number: str,
    sections: list[str],
    seen: set[str],
) -> None:
    # Explicit-stack pre-order so 10k-deep tool-generated arguments
    # render without RecursionError; output is byte-identical to the
    # recursive original.
    stack: list[tuple[Node, str]] = [(node, number)]
    while stack:
        current, number = stack.pop()
        if current.identifier in seen:
            sections.append(
                f"{number}. (See the earlier discussion of "
                f"{current.identifier}.)"
            )
            continue
        seen.add(current.identifier)
        sections.append(f"{number}. {render_paragraph(argument, current)}")
        supporters = argument.supporters(current.identifier)
        stack.extend(
            (child, f"{number}.{child_index}")
            for child_index, child in reversed(
                list(enumerate(supporters, start=1))
            )
        )


def render_paragraph(argument: Argument, node: Node) -> str:
    """One node as a prose paragraph, folding in its contextual elements."""
    sentences: list[str] = []
    contexts = argument.context_of(node.identifier)
    for context in contexts:
        phrase = _CONTEXT_PHRASES.get(
            context.node_type, "Noting that"
        )
        sentences.append(f"{phrase} {_sentence_case(context.text)}.")
    if node.node_type is NodeType.STRATEGY:
        sentences.append(f"{_sentence_case(node.text)}.")
    elif node.node_type is NodeType.SOLUTION:
        sentences.append(f"Evidence: {_sentence_case(node.text)}.")
    elif node.node_type is NodeType.AWAY_GOAL:
        sentences.append(
            f"{_sentence_case(node.text)} "
            f"(argued in module {node.module!r})."
        )
    else:
        sentences.append(f"We claim that {_lower_first(node.text)}.")
    if node.undeveloped:
        sentences.append(
            "(Support for this point is not yet developed.)"
        )
    supporters = argument.supporters(node.identifier)
    if supporters:
        kinds = {child.node_type for child in supporters}
        if kinds == {NodeType.SOLUTION}:
            sentences.append(
                "The supporting evidence follows."
            )
        else:
            sentences.append(
                "The supporting argument follows."
            )
    return " ".join(sentences)


def _sentence_case(text: str) -> str:
    stripped = text.strip().rstrip(".")
    if not stripped:
        return stripped
    return stripped[0].upper() + stripped[1:]


def _lower_first(text: str) -> str:
    stripped = text.strip().rstrip(".")
    if not stripped:
        return stripped
    # Keep acronyms and identifiers intact.
    if len(stripped) > 1 and stripped[1].isupper():
        return stripped
    return stripped[0].lower() + stripped[1:]
