"""A textual concrete syntax for GSN arguments, with parser and serialiser.

Holloway asks whether safety case notations have 'alternatives for the
non-graphically inclined' [32]; prose and tabular forms are surveyed in
§II.B.  This module defines a line-oriented textual GSN format that
round-trips (``parse(serialise(a)) == a`` is a property-test invariant),
giving the library a durable on-disk form and the experiments a
text-diffable argument representation.

Format, one statement per line (``#`` comments allowed)::

    argument "brake-case"
    goal G1 "The braking system is acceptably safe"
    goal G2 undeveloped "Secondary brake path is independent"
    strategy S1 "Argument over all identified hazards"
    solution Sn1 "Fault tree analysis FTA-3"
    context C1 "Operating context: urban light rail"
    awaygoal AG1 module "power-module" "Power supply is acceptably safe"
    G1 -> S1          # SupportedBy
    G1 ~> C1          # InContextOf
"""

from __future__ import annotations

import re
import shlex
from typing import Iterable

from ..core.argument import Argument, LinkKind
from ..core.nodes import Node, NodeType

__all__ = ["serialise", "parse", "GsnTextError"]


class GsnTextError(ValueError):
    """Raised when :func:`parse` rejects its input."""

    def __init__(self, line_number: int, message: str) -> None:
        super().__init__(f"line {line_number}: {message}")
        self.line_number = line_number


_KEYWORDS: dict[NodeType, str] = {
    NodeType.GOAL: "goal",
    NodeType.STRATEGY: "strategy",
    NodeType.SOLUTION: "solution",
    NodeType.CONTEXT: "context",
    NodeType.ASSUMPTION: "assumption",
    NodeType.JUSTIFICATION: "justification",
    NodeType.AWAY_GOAL: "awaygoal",
}
_TYPES_BY_KEYWORD = {v: k for k, v in _KEYWORDS.items()}


def _quote(text: str) -> str:
    escaped = text.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def serialise(argument: Argument) -> str:
    """Render an argument in the textual GSN format."""
    lines: list[str] = [f"argument {_quote(argument.name)}"]
    for node in argument.nodes:
        parts = [_KEYWORDS[node.node_type], node.identifier]
        if node.undeveloped:
            parts.append("undeveloped")
        if node.node_type is NodeType.AWAY_GOAL:
            parts.extend(["module", _quote(node.module or "")])
        parts.append(_quote(node.text))
        lines.append(" ".join(parts))
    for link in argument.links:
        arrow = "->" if link.kind is LinkKind.SUPPORTED_BY else "~>"
        lines.append(f"{link.source} {arrow} {link.target}")
    return "\n".join(lines) + "\n"


_LINK_PATTERN = re.compile(
    r"^(?P<source>\S+)\s+(?P<arrow>->|~>)\s+(?P<target>\S+)$"
)


def parse(text: str) -> Argument:
    """Parse the textual GSN format back into an argument."""
    argument: Argument | None = None
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("argument"):
            if argument is not None:
                raise GsnTextError(
                    line_number, "duplicate 'argument' declaration"
                )
            tokens = _tokens(line, line_number)
            if len(tokens) != 2:
                raise GsnTextError(
                    line_number, "expected: argument \"name\""
                )
            argument = Argument(name=tokens[1])
            continue
        if argument is None:
            raise GsnTextError(
                line_number, "file must start with an 'argument' declaration"
            )
        link_match = _LINK_PATTERN.match(line)
        if link_match:
            kind = (
                LinkKind.SUPPORTED_BY
                if link_match.group("arrow") == "->"
                else LinkKind.IN_CONTEXT_OF
            )
            try:
                argument.add_link(
                    link_match.group("source"),
                    link_match.group("target"),
                    kind,
                )
            except ValueError as error:
                raise GsnTextError(line_number, str(error)) from None
            continue
        _parse_node_line(argument, line, line_number)
    if argument is None:
        raise GsnTextError(0, "empty document")
    return argument


def _tokens(line: str, line_number: int) -> list[str]:
    try:
        return shlex.split(line)
    except ValueError as error:
        raise GsnTextError(line_number, f"bad quoting: {error}") from None


def _parse_node_line(
    argument: Argument, line: str, line_number: int
) -> None:
    tokens = _tokens(line, line_number)
    keyword = tokens[0].lower()
    node_type = _TYPES_BY_KEYWORD.get(keyword)
    if node_type is None:
        raise GsnTextError(
            line_number,
            f"unknown statement {keyword!r} (expected a node keyword, "
            "a link, or 'argument')",
        )
    if len(tokens) < 3:
        raise GsnTextError(
            line_number, f"{keyword} needs an identifier and quoted text"
        )
    identifier = tokens[1]
    rest = tokens[2:]
    undeveloped = False
    module: str | None = None
    while len(rest) > 1:
        if rest[0] == "undeveloped":
            undeveloped = True
            rest = rest[1:]
        elif rest[0] == "module":
            if len(rest) < 3:
                raise GsnTextError(
                    line_number, "module keyword needs a name and text"
                )
            module = rest[1]
            rest = rest[2:]
        else:
            break
    if len(rest) != 1:
        raise GsnTextError(
            line_number, f"trailing tokens after node text: {rest[1:]}"
        )
    try:
        argument.add_node(Node(
            identifier=identifier,
            node_type=node_type,
            text=rest[0],
            undeveloped=undeveloped,
            module=module,
        ))
    except ValueError as error:
        raise GsnTextError(line_number, str(error)) from None
