"""Tabular rendering of assurance arguments.

Kelly's thesis [2] and several standards present safety arguments as
tables (§II.B).  The renderer emits one row per node with its kind,
identifier, text, support, and context columns — the layout review
checklists typically use — plus a machine-readable list-of-dicts form
consumed by the experiments.
"""

from __future__ import annotations

from typing import Any

from ..core.argument import Argument, LinkKind

__all__ = ["rows", "render_table"]


def rows(argument: Argument) -> list[dict[str, Any]]:
    """One dict per node: id, kind, text, supported_by, in_context_of."""
    out: list[dict[str, Any]] = []
    for node in argument.nodes:
        supported = [
            child.identifier
            for child in argument.children(
                node.identifier, LinkKind.SUPPORTED_BY
            )
        ]
        context = [
            child.identifier
            for child in argument.children(
                node.identifier, LinkKind.IN_CONTEXT_OF
            )
        ]
        out.append({
            "id": node.identifier,
            "kind": node.node_type.value,
            "text": node.text,
            "undeveloped": node.undeveloped,
            "supported_by": supported,
            "in_context_of": context,
        })
    return out


def render_table(argument: Argument, max_text_width: int = 48) -> str:
    """A fixed-width text table of the argument."""
    table_rows = rows(argument)
    headers = ["Id", "Kind", "Text", "Supported by", "Context"]
    rendered: list[list[str]] = []
    for row in table_rows:
        text = row["text"]
        if len(text) > max_text_width:
            text = text[: max_text_width - 3] + "..."
        if row["undeveloped"]:
            text += " [undeveloped]"
        rendered.append([
            row["id"],
            row["kind"],
            text,
            ", ".join(row["supported_by"]),
            ", ".join(row["in_context_of"]),
        ])
    widths = [
        max(len(headers[col]), *(len(r[col]) for r in rendered))
        if rendered else len(headers[col])
        for col in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row_cells in rendered:
        lines.append(
            "  ".join(c.ljust(w) for c, w in zip(row_cells, widths))
        )
    return "\n".join(lines) + "\n"
