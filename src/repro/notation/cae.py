"""The Claims-Argument-Evidence (CAE) notation.

CAE (Bishop & Bloomfield [31]) is the other graphical notation the paper
names alongside GSN (§II.B): *claims* are supported by *arguments* (the
reasoning step) which cite *evidence* or further sub-claims; claims may
carry *side-warrants* (the CAE analogue of context/justification).

This module models CAE natively and provides lossless-enough converters:

* :func:`gsn_to_cae` — goals become claims, strategies become arguments,
  solutions become evidence, contextual elements become side-warrants;
* :func:`cae_to_gsn` — the inverse mapping.

A GSN goal directly supporting another goal has no CAE intermediary, so
``gsn_to_cae`` synthesises an implicit 'direct' argument node — the
round-trip therefore preserves *meaning* but not node count, which the
tests pin down precisely.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable

from ..core.argument import Argument, LinkKind
from ..core.nodes import Node, NodeType

__all__ = [
    "CaeNodeType",
    "CaeNode",
    "CaeCase",
    "gsn_to_cae",
    "cae_to_gsn",
]


class CaeNodeType(enum.Enum):
    """The three CAE element kinds plus the side-warrant."""

    CLAIM = "claim"
    ARGUMENT = "argument"
    EVIDENCE = "evidence"
    SIDE_WARRANT = "side_warrant"


@dataclass(frozen=True)
class CaeNode:
    """One CAE element.

    ``role`` preserves a finer-grained source classification when the
    node was converted from GSN: CAE folds context, assumptions, and
    justifications into one side-warrant kind, so the original GSN role
    is kept as an annotation for lossless round-tripping.
    """

    identifier: str
    node_type: CaeNodeType
    text: str
    role: str | None = None
    undeveloped: bool = False

    def __str__(self) -> str:
        return f"{self.identifier} [{self.node_type.value}] {self.text!r}"


class CaeCase:
    """A CAE structure: claims, arguments, evidence, and support links."""

    def __init__(self, name: str = "cae-case") -> None:
        self.name = name
        self._nodes: dict[str, CaeNode] = {}
        self._supports: list[tuple[str, str]] = []  # (parent, child)

    def add(self, node: CaeNode) -> CaeNode:
        if node.identifier in self._nodes:
            raise ValueError(f"duplicate identifier {node.identifier!r}")
        self._nodes[node.identifier] = node
        return node

    def support(self, parent: str, child: str) -> None:
        """Record that ``child`` supports (or warrants) ``parent``."""
        if parent not in self._nodes:
            raise ValueError(f"unknown node {parent!r}")
        if child not in self._nodes:
            raise ValueError(f"unknown node {child!r}")
        self._supports.append((parent, child))

    def node(self, identifier: str) -> CaeNode:
        return self._nodes[identifier]

    @property
    def nodes(self) -> list[CaeNode]:
        return list(self._nodes.values())

    @property
    def supports(self) -> list[tuple[str, str]]:
        return list(self._supports)

    def children(self, identifier: str) -> list[CaeNode]:
        return [
            self._nodes[child]
            for parent, child in self._supports
            if parent == identifier
        ]

    def claims(self) -> list[CaeNode]:
        return [
            n for n in self._nodes.values()
            if n.node_type is CaeNodeType.CLAIM
        ]

    def validate(self) -> list[str]:
        """CAE structural rules (empty = well-formed).

        Evidence is terminal; arguments sit between claims and their
        support; side-warrants attach to argument nodes.
        """
        problems: list[str] = []
        for parent, child in self._supports:
            parent_node = self._nodes[parent]
            child_node = self._nodes[child]
            if parent_node.node_type is CaeNodeType.EVIDENCE:
                problems.append(
                    f"evidence {parent!r} cannot be supported by {child!r}"
                )
            if (
                parent_node.node_type is CaeNodeType.CLAIM
                and child_node.node_type is CaeNodeType.SIDE_WARRANT
            ):
                problems.append(
                    f"side-warrant {child!r} must attach to an argument, "
                    f"not claim {parent!r}"
                )
            if (
                parent_node.node_type is CaeNodeType.ARGUMENT
                and child_node.node_type is CaeNodeType.ARGUMENT
            ):
                problems.append(
                    f"argument {child!r} cannot directly support "
                    f"argument {parent!r}"
                )
        return problems

    def __len__(self) -> int:
        return len(self._nodes)


def gsn_to_cae(argument: Argument) -> CaeCase:
    """Convert a GSN argument to CAE.

    Goal -> claim; strategy -> argument; solution -> evidence; context,
    assumption, justification -> side-warrant on the relevant argument
    node (or on a synthesised one).  Goal-to-goal support synthesises an
    implicit 'direct appeal' argument node, because CAE requires an
    argument between a claim and its support.
    """
    case = CaeCase(name=f"{argument.name}(cae)")
    mapping: dict[NodeType, CaeNodeType] = {
        NodeType.GOAL: CaeNodeType.CLAIM,
        NodeType.AWAY_GOAL: CaeNodeType.CLAIM,
        NodeType.STRATEGY: CaeNodeType.ARGUMENT,
        NodeType.SOLUTION: CaeNodeType.EVIDENCE,
        NodeType.CONTEXT: CaeNodeType.SIDE_WARRANT,
        NodeType.ASSUMPTION: CaeNodeType.SIDE_WARRANT,
        NodeType.JUSTIFICATION: CaeNodeType.SIDE_WARRANT,
    }
    for node in argument.nodes:
        role = node.node_type.value
        if node.node_type is NodeType.AWAY_GOAL:
            role = f"away_goal:{node.module}"
        case.add(CaeNode(
            node.identifier, mapping[node.node_type], node.text,
            role=role, undeveloped=node.undeveloped,
        ))
    synth_counter = 0
    for link in argument.links:
        source = argument.node(link.source)
        target = argument.node(link.target)
        if (
            link.kind is LinkKind.SUPPORTED_BY
            and source.node_type.is_claim_like
            and target.node_type.is_claim_like
        ):
            synth_counter += 1
            bridge = CaeNode(
                f"_arg{synth_counter}",
                CaeNodeType.ARGUMENT,
                f"Direct appeal: {target.identifier} supports "
                f"{source.identifier}",
            )
            case.add(bridge)
            case.support(source.identifier, bridge.identifier)
            case.support(bridge.identifier, target.identifier)
        else:
            case.support(link.source, link.target)
    return case


def cae_to_gsn(case: CaeCase) -> Argument:
    """Convert a CAE case to GSN.

    Claim -> goal; argument -> strategy; evidence -> solution;
    side-warrant -> justification.  Synthesised '_arg' bridges from
    :func:`gsn_to_cae` are collapsed back into direct goal-to-goal links.
    """
    argument = Argument(name=case.name.removesuffix("(cae)") or case.name)
    mapping: dict[CaeNodeType, NodeType] = {
        CaeNodeType.CLAIM: NodeType.GOAL,
        CaeNodeType.ARGUMENT: NodeType.STRATEGY,
        CaeNodeType.EVIDENCE: NodeType.SOLUTION,
        CaeNodeType.SIDE_WARRANT: NodeType.JUSTIFICATION,
    }
    bridges = {
        node.identifier
        for node in case.nodes
        if node.node_type is CaeNodeType.ARGUMENT
        and node.identifier.startswith("_arg")
    }
    for node in case.nodes:
        if node.identifier in bridges:
            continue
        node_type = mapping[node.node_type]
        module: str | None = None
        if node.role is not None:
            if node.role.startswith("away_goal:"):
                node_type = NodeType.AWAY_GOAL
                module = node.role.split(":", 1)[1]
            else:
                node_type = NodeType(node.role)
        argument.add_node(Node(
            identifier=node.identifier,
            node_type=node_type,
            text=node.text,
            module=module,
            undeveloped=node.undeveloped,
        ))
    for parent, child in case.supports:
        if child in bridges:
            # Collapse: parent <- bridge <- grandchild becomes parent <- gc.
            for grandchild in case.children(child):
                argument.add_link(
                    parent, grandchild.identifier, LinkKind.SUPPORTED_BY
                )
            continue
        if parent in bridges:
            continue  # handled when the bridge was collapsed
        child_node = case.node(child)
        kind = (
            LinkKind.IN_CONTEXT_OF
            if child_node.node_type is CaeNodeType.SIDE_WARRANT
            else LinkKind.SUPPORTED_BY
        )
        argument.add_link(parent, child, kind)
    return argument
