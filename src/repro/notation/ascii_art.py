"""ASCII tree rendering of assurance arguments for terminals.

The hicases display concept (§III.I) needs an on-screen rendering; this is
the terminal version, honouring fold state when given a
:class:`~repro.core.hicases.HiView` and marking node kinds with the
conventional GSN letters.
"""

from __future__ import annotations

from ..core.argument import Argument, LinkKind
from ..core.hicases import HiView
from ..core.nodes import Node, NodeType

__all__ = ["render_tree", "render_view"]

_TAGS: dict[NodeType, str] = {
    NodeType.GOAL: "G",
    NodeType.STRATEGY: "S",
    NodeType.SOLUTION: "Sn",
    NodeType.CONTEXT: "C",
    NodeType.ASSUMPTION: "A",
    NodeType.JUSTIFICATION: "J",
    NodeType.AWAY_GOAL: "AG",
}


def render_tree(argument: Argument, max_width: int = 72) -> str:
    """Render the support hierarchy as an indented ASCII tree."""
    roots = argument.roots()
    lines: list[str] = []
    seen: set[str] = set()
    for root in roots:
        _render(argument, root, "", True, lines, seen, max_width,
                is_root=True)
    orphans = [
        node for node in argument.nodes
        if node.identifier not in seen
        and not argument.parents(node.identifier)
    ]
    for orphan in orphans:
        _render(argument, orphan, "", True, lines, seen, max_width,
                is_root=True)
    return "\n".join(lines) + ("\n" if lines else "")


def _render(
    argument: Argument,
    node: Node,
    prefix: str,
    is_last: bool,
    lines: list[str],
    seen: set[str],
    max_width: int,
    is_root: bool = False,
) -> None:
    # Explicit-stack pre-order so 10k-deep arguments render without
    # RecursionError; output is byte-identical to the recursive original.
    stack: list[tuple[Node, str, bool, bool]] = [
        (node, prefix, is_last, is_root)
    ]
    while stack:
        current, prefix, is_last, is_root = stack.pop()
        connector = "" if is_root else ("`-- " if is_last else "|-- ")
        tag = _TAGS[current.node_type]
        text = current.text
        budget = max_width - len(prefix) - len(connector) - len(tag) - \
            len(current.identifier) - 5
        if budget > 8 and len(text) > budget:
            text = text[: budget - 3] + "..."
        marker = " <>" if current.undeveloped else ""
        if current.identifier in seen:
            lines.append(
                f"{prefix}{connector}({tag}) {current.identifier} "
                "(see above)"
            )
            continue
        seen.add(current.identifier)
        lines.append(
            f"{prefix}{connector}({tag}) {current.identifier}: "
            f"{text}{marker}"
        )
        child_prefix = prefix if is_root else prefix + (
            "    " if is_last else "|   "
        )
        contexts = argument.context_of(current.identifier)
        supporters = argument.supporters(current.identifier)
        children = [(c, LinkKind.IN_CONTEXT_OF) for c in contexts] + [
            (s, LinkKind.SUPPORTED_BY) for s in supporters
        ]
        stack.extend(
            (child, child_prefix, index == len(children) - 1, False)
            for index, (child, _) in reversed(list(enumerate(children)))
        )


def render_view(view: HiView, max_width: int = 72) -> str:
    """Render the visible fragment of a hierarchical view."""
    return render_tree(view.visible_argument(), max_width=max_width)
