"""Graphviz DOT export for assurance arguments.

Produces the conventional GSN shapes: rectangles for goals, parallelograms
for strategies, circles for solutions, rounded rectangles for context,
ovals for assumptions/justifications (with the A/J letter), and the module
decoration for away goals.  Pure text output — no graphviz runtime is
needed to generate it.
"""

from __future__ import annotations

from ..core.argument import Argument, LinkKind
from ..core.nodes import Node, NodeType

__all__ = ["to_dot"]

_SHAPES: dict[NodeType, str] = {
    NodeType.GOAL: "box",
    NodeType.STRATEGY: "parallelogram",
    NodeType.SOLUTION: "circle",
    NodeType.CONTEXT: "box",
    NodeType.ASSUMPTION: "ellipse",
    NodeType.JUSTIFICATION: "ellipse",
    NodeType.AWAY_GOAL: "box",
}

_STYLES: dict[NodeType, str] = {
    NodeType.CONTEXT: "rounded",
    NodeType.AWAY_GOAL: "bold",
}


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def _wrap(text: str, width: int = 28) -> str:
    words = text.split()
    lines: list[str] = []
    current: list[str] = []
    count = 0
    for word in words:
        if count + len(word) + (1 if current else 0) > width and current:
            lines.append(" ".join(current))
            current = [word]
            count = len(word)
        else:
            current.append(word)
            count += len(word) + (1 if count else 0)
    if current:
        lines.append(" ".join(current))
    return "\\n".join(_escape(line) for line in lines)


def _label(node: Node) -> str:
    suffix = ""
    if node.node_type is NodeType.ASSUMPTION:
        suffix = "\\n[A]"
    elif node.node_type is NodeType.JUSTIFICATION:
        suffix = "\\n[J]"
    elif node.node_type is NodeType.AWAY_GOAL:
        suffix = f"\\n<<module {_escape(node.module or '')}>>"
    if node.undeveloped:
        suffix += "\\n(undeveloped)"
    return f"{node.identifier}\\n{_wrap(node.text)}{suffix}"


def to_dot(argument: Argument, rankdir: str = "TB") -> str:
    """Render the argument as a Graphviz digraph."""
    lines = [
        f'digraph "{_escape(argument.name)}" {{',
        f"  rankdir={rankdir};",
        '  node [fontname="Helvetica", fontsize=10];',
    ]
    for node in argument.nodes:
        shape = _SHAPES[node.node_type]
        style = _STYLES.get(node.node_type)
        attributes = [f'label="{_label(node)}"', f"shape={shape}"]
        if style:
            attributes.append(f'style="{style}"')
        lines.append(
            f'  "{_escape(node.identifier)}" [{", ".join(attributes)}];'
        )
    for link in argument.links:
        if link.kind is LinkKind.SUPPORTED_BY:
            attributes = "arrowhead=normal"
        else:
            attributes = "arrowhead=empty, style=dashed"
        lines.append(
            f'  "{_escape(link.source)}" -> "{_escape(link.target)}" '
            f"[{attributes}];"
        )
    lines.append("}")
    return "\n".join(lines) + "\n"
