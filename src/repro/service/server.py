"""The asyncio HTTP/JSON front end over shared argument stores.

Stdlib only — ``asyncio`` streams and a deliberately small HTTP/1.1
subset (request line, headers, ``Content-Length`` bodies, keep-alive) —
because the repository's reproduction environment installs nothing.
The interesting part is not the HTTP, it is the serving discipline:

* one :class:`_StoreState` per store directory, holding the **current
  snapshot handle** (a pinned :class:`~repro.store.StoredArgument`) and
  an :class:`asyncio.Lock` that admits one mutation at a time;
* reads run in worker threads against whatever snapshot was current
  when they were routed — snapshots are immutable views of one
  committed generation, so no read ever blocks on or observes a write;
* a committed write opens a fresh handle, lets it
  :meth:`~repro.store.StoredArgument.adopt_base_caches` from the
  outgoing snapshot (same content-addressed base shards → same caches),
  and swaps it in with plain assignment — the asyncio equivalent of the
  store's atomic manifest rename.

Endpoints (all payloads JSON)::

    GET  /health
    GET  /stores
    GET  /stores/{name}
    GET  /stores/{name}/nodes/{id}
    GET  /stores/{name}/subtree/{id}
    POST /stores/{name}/query    {"type": ..., "all": [...], ...}
    POST /stores/{name}/search   {"q": "...", "limit": 10}
    POST /stores/{name}/check
    POST /stores/{name}/append   {"ops": [...], "expect_generation": ...}
    POST /stores/{name}/compact
    POST /stores/{name}/gc

Append ops use exactly the journal's record encoding (see
:func:`repro.store.journal.encode_op`): what a client POSTs is what a
crashed session's journal segment would have held.  Failure mapping:
``400`` malformed request, ``404`` unknown store/node/route, ``409``
generation conflict (:class:`~repro.store.StoreConflictError`), ``500``
store corruption or unexpected errors.
"""

from __future__ import annotations

import asyncio
import json
import re
from pathlib import Path
from typing import Any
from urllib.parse import unquote

from ..core.argument import MutationDelta
from ..core.nodes import NodeType
from ..core.query import (
    Query,
    attribute_param,
    has_attribute,
    node_type_is,
    text_contains,
)
from ..checking import check as run_check
from ..claims import GSN_OBLIGATION_RULES
from ..core.wellformed import RuleSet
from ..notation.json_io import node_payload
from ..store import (
    StoreConflictError,
    StoreCorruptionError,
    StoredArgument,
    StoreError,
)
from ..store.format import MANIFEST_NAME
from ..store.journal import decode_op

__all__ = ["ArgumentService", "ServiceError"]

#: Largest accepted request body — an append of tens of thousands of
#: ops fits comfortably; anything bigger should go through the store
#: API directly.
MAX_BODY_BYTES = 16 * 1024 * 1024

#: Store names are path segments; this keeps them that way.
_STORE_NAME = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


class ServiceError(Exception):
    """A request failure with an HTTP status (rendered as JSON)."""

    def __init__(self, status: int, detail: str) -> None:
        super().__init__(detail)
        self.status = status
        self.detail = detail


class _StoreState:
    """One served store: its snapshot handle and write queue."""

    __slots__ = ("name", "path", "lock", "snapshot")

    def __init__(self, name: str, path: Path) -> None:
        self.name = name
        self.path = path
        self.lock = asyncio.Lock()
        self.snapshot = StoredArgument(path)


def _parse_query(spec: Any) -> Query:
    """Build a :class:`~repro.core.query.Query` from its JSON form.

    One operator per object: ``{"type": "goal"}``,
    ``{"has_attribute": "hazard"}``, ``{"text_contains": "brake"}`` (or
    ``{"text_contains": {"needle": ..., "case_sensitive": true}}``),
    ``{"attribute_param": {"name": ..., "index": ..., "value": ...}}``,
    combined with ``{"all": [...]}``, ``{"any": [...]}``, and
    ``{"not": {...}}`` — a JSON mirror of the query combinators, so
    planned queries stay planned across the wire.
    """
    if not isinstance(spec, dict) or len(spec) != 1:
        raise ServiceError(
            400, "a query is one single-operator object, e.g. "
            '{"type": "goal"} or {"all": [...]}'
        )
    (op, value), = spec.items()
    if op == "all" or op == "any":
        if not isinstance(value, list) or not value:
            raise ServiceError(400, f"{op!r} takes a non-empty list")
        parts = [_parse_query(part) for part in value]
        combined = parts[0]
        for part in parts[1:]:
            combined = combined & part if op == "all" else combined | part
        return combined
    if op == "not":
        return ~_parse_query(value)
    if op == "type":
        try:
            return node_type_is(NodeType(value))
        except ValueError:
            raise ServiceError(
                400, f"unknown node type {value!r} (one of: "
                + ", ".join(t.value for t in NodeType) + ")"
            ) from None
    if op == "has_attribute":
        if not isinstance(value, str):
            raise ServiceError(400, "'has_attribute' takes a name string")
        return has_attribute(value)
    if op == "text_contains":
        if isinstance(value, str):
            return text_contains(value)
        if isinstance(value, dict) and isinstance(value.get("needle"), str):
            return text_contains(
                value["needle"],
                case_sensitive=bool(value.get("case_sensitive", False)),
            )
        raise ServiceError(
            400, "'text_contains' takes a needle string or "
            '{"needle": ..., "case_sensitive": ...}'
        )
    if op == "attribute_param":
        if not (
            isinstance(value, dict)
            and isinstance(value.get("name"), str)
            and isinstance(value.get("index"), int)
            and "value" in value
        ):
            raise ServiceError(
                400, "'attribute_param' takes "
                '{"name": ..., "index": ..., "value": ...}'
            )
        return attribute_param(value["name"], value["index"], value["value"])
    raise ServiceError(400, f"unknown query operator {op!r}")


def _decode_ops(body: Any) -> MutationDelta:
    """The request's op list as a :class:`MutationDelta` (or 400)."""
    if not isinstance(body, dict) or not isinstance(body.get("ops"), list):
        raise ServiceError(
            400, 'an append body is {"ops": [...]} with journal-encoded '
            "mutation records"
        )
    ops = []
    for record in body["ops"]:
        if not isinstance(record, dict):
            raise ServiceError(400, "each op must be an object")
        try:
            ops.append(decode_op(record, "request"))
        except StoreError as error:
            raise ServiceError(400, f"malformed op: {error}") from None
    return MutationDelta(tuple(ops))


class ArgumentService:
    """Serve every store directory under ``root`` over HTTP/JSON.

    A *store* is any direct subdirectory of ``root`` carrying a store
    manifest; its name is its directory name (``brake.store`` →
    ``/stores/brake.store``).  Discovery is lazy — a directory that
    appears after startup is picked up on first request — and serving
    state per store is exactly one snapshot handle plus one write lock
    (see the module docstring for the swap discipline).
    """

    def __init__(
        self, root: Path | str, *, rules: RuleSet = GSN_OBLIGATION_RULES
    ) -> None:
        self.root = Path(root)
        self.rules = rules
        self._stores: dict[str, _StoreState] = {}
        self._server: asyncio.AbstractServer | None = None

    # -- lifecycle ----------------------------------------------------------

    async def start(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> tuple[str, int]:
        """Bind and start serving; returns the bound ``(host, port)``."""
        self._server = await asyncio.start_server(
            self._handle_connection, host, port
        )
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- store registry -----------------------------------------------------

    def _store(self, name: str) -> _StoreState:
        state = self._stores.get(name)
        if state is not None:
            return state
        if not _STORE_NAME.match(name):
            raise ServiceError(404, f"no store named {name!r}")
        path = self.root / name
        if not (path / MANIFEST_NAME).is_file():
            raise ServiceError(404, f"no store named {name!r}")
        try:
            state = _StoreState(name, path)
        except StoreError as error:
            raise ServiceError(500, f"store {name!r} unreadable: {error}")
        return self._stores.setdefault(name, state)

    def _store_names(self) -> list[str]:
        names = set(self._stores)
        try:
            for child in self.root.iterdir():
                if (
                    _STORE_NAME.match(child.name)
                    and (child / MANIFEST_NAME).is_file()
                ):
                    names.add(child.name)
        except OSError:
            pass
        return sorted(names)

    @staticmethod
    def _summary(state: _StoreState) -> dict[str, Any]:
        snapshot = state.snapshot
        return {
            "name": state.name,
            "argument": snapshot.name,
            "kind": snapshot.kind,
            "nodes": snapshot.node_count,
            "links": snapshot.link_count,
            "journal_segments": len(snapshot.journal_segments),
            "generation": str(snapshot.generation),
        }

    # -- request handling ---------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except ServiceError as error:
                    # The request itself is unusable (bad JSON, too
                    # large, torn request line): answer, then drop the
                    # connection — framing can no longer be trusted.
                    await self._respond(
                        writer, error.status, {"error": error.detail}, False
                    )
                    break
                if request is None:
                    break
                method, path, headers, body = request
                try:
                    status, payload = await self._route(method, path, body)
                except ServiceError as error:
                    status, payload = error.status, {"error": error.detail}
                except StoreConflictError as error:
                    status, payload = 409, {"error": str(error)}
                except StoreCorruptionError as error:
                    status, payload = 500, {"error": str(error)}
                except StoreError as error:
                    status, payload = 400, {"error": str(error)}
                except Exception as error:  # pragma: no cover - safety net
                    status, payload = 500, {"error": repr(error)}
                keep_alive = headers.get("connection", "").lower() != "close"
                await self._respond(writer, status, payload, keep_alive)
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError, ConnectionError, ServiceError
        ):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> "tuple[str, str, dict[str, str], Any] | None":
        request_line = await reader.readline()
        if not request_line:
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            raise ServiceError(400, "malformed request line")
        method, target, _version = parts
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise ServiceError(413, "request body too large")
        body: Any = None
        if length:
            raw = await reader.readexactly(length)
            try:
                body = json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                raise ServiceError(400, "request body is not valid JSON")
        return method, target.split("?", 1)[0], headers, body

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Any,
        keep_alive: bool,
    ) -> None:
        body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    async def _route(
        self, method: str, path: str, body: Any
    ) -> tuple[int, Any]:
        segments = [unquote(part) for part in path.split("/") if part]
        if segments == ["health"]:
            if method != "GET":
                raise ServiceError(405, "GET only")
            return 200, {"status": "ok", "stores": len(self._store_names())}
        if not segments or segments[0] != "stores":
            raise ServiceError(404, f"no route {path!r}")
        if len(segments) == 1:
            if method != "GET":
                raise ServiceError(405, "GET only")
            return 200, [
                self._summary(self._store(name))
                for name in self._store_names()
            ]
        state = self._store(segments[1])
        rest = segments[2:]
        if not rest:
            if method != "GET":
                raise ServiceError(405, "GET only")
            return 200, self._summary(state)
        if method == "GET" and len(rest) == 2 and rest[0] == "nodes":
            return await self._get_node(state, rest[1])
        if method == "GET" and len(rest) == 2 and rest[0] == "subtree":
            return await self._get_subtree(state, rest[1])
        if method == "POST" and rest == ["query"]:
            return await self._post_query(state, body)
        if method == "POST" and rest == ["search"]:
            return await self._post_search(state, body)
        if method == "POST" and rest == ["check"]:
            return await self._post_check(state, body)
        if method == "POST" and rest == ["append"]:
            return await self._post_append(state, body)
        if method == "POST" and rest == ["compact"]:
            return await self._post_compact(state)
        if method == "POST" and rest == ["gc"]:
            return await self._post_gc(state)
        raise ServiceError(404, f"no route {path!r}")

    # -- reads: snapshot handle, worker thread, no locks --------------------

    @staticmethod
    async def _in_thread(func: Any, *args: Any) -> Any:
        return await asyncio.get_running_loop().run_in_executor(
            None, func, *args
        )

    async def _get_node(
        self, state: _StoreState, identifier: str
    ) -> tuple[int, Any]:
        snapshot = state.snapshot

        def read() -> Any:
            if identifier not in snapshot:
                raise ServiceError(
                    404, f"no node {identifier!r} in {state.name!r}"
                )
            return node_payload(snapshot.node(identifier))

        return 200, {
            "generation": str(snapshot.generation),
            "node": await self._in_thread(read),
        }

    async def _get_subtree(
        self, state: _StoreState, identifier: str
    ) -> tuple[int, Any]:
        snapshot = state.snapshot

        def read() -> Any:
            if identifier not in snapshot:
                raise ServiceError(
                    404, f"no node {identifier!r} in {state.name!r}"
                )
            subtree = snapshot.subtree(identifier)
            return {
                "nodes": [node_payload(node) for node in subtree.nodes],
                "links": [
                    {
                        "source": link.source,
                        "target": link.target,
                        "kind": link.kind.value,
                    }
                    for link in subtree.links
                ],
            }

        return 200, {
            "generation": str(snapshot.generation),
            **await self._in_thread(read),
        }

    async def _post_query(
        self, state: _StoreState, body: Any
    ) -> tuple[int, Any]:
        from ..core.query import select

        if not isinstance(body, dict):
            raise ServiceError(400, 'a query body is {"query": {...}}')
        query = _parse_query(body.get("query"))
        snapshot = state.snapshot
        matches = await self._in_thread(select, snapshot, query)
        return 200, {
            "generation": str(snapshot.generation),
            "nodes": [node_payload(node) for node in matches],
        }

    async def _post_search(
        self, state: _StoreState, body: Any
    ) -> tuple[int, Any]:
        from ..core.search import search

        if not isinstance(body, dict):
            raise ServiceError(400, 'a search body is {"q": "..."}')
        q = body.get("q")
        if not isinstance(q, str) or not q.strip():
            raise ServiceError(400, "'q' must be a non-empty string")
        limit = body.get("limit", 10)
        if (
            not isinstance(limit, int)
            or isinstance(limit, bool)
            or limit < 1
        ):
            raise ServiceError(400, "'limit' must be a positive integer")
        snapshot = state.snapshot
        hits = await self._in_thread(
            lambda: search(snapshot, q, limit=limit)
        )
        return 200, {
            "generation": str(snapshot.generation),
            "q": q,
            "hits": [
                {
                    "id": hit.identifier,
                    "score": hit.score,
                    "type": hit.node_type,
                    "snippet": hit.snippet,
                    "matched_terms": list(hit.matched_terms),
                    "neighbourhood": list(hit.neighbourhood),
                    "summary": hit.summary,
                }
                for hit in hits
            ],
        }

    _CHECK_MODES = ("auto", "serial", "streaming", "parallel", "full")

    async def _post_check(
        self, state: _StoreState, body: Any
    ) -> tuple[int, Any]:
        mode = "streaming"
        workers = None
        if isinstance(body, dict):
            mode = body.get("mode", "streaming")
            workers = body.get("workers")
        if mode not in self._CHECK_MODES:
            raise ServiceError(
                400,
                f"'mode' must be one of {', '.join(self._CHECK_MODES)}",
            )
        if workers is not None and (
            isinstance(workers, bool)
            or not isinstance(workers, int)
            or workers < 1
        ):
            raise ServiceError(400, "'workers' must be a positive integer")
        snapshot = state.snapshot
        report = await self._in_thread(
            lambda: run_check(
                snapshot, self.rules, mode=mode, workers=workers
            )
        )
        failed = [
            v for v in report.violations
            if v.rule == "evidence-obligation"
        ]
        return 200, {
            "generation": str(snapshot.generation),
            "well_formed": report.well_formed,
            "mode": report.mode,
            "violations": [
                {
                    "rule": violation.rule,
                    "subject": violation.subject,
                    "detail": violation.detail,
                }
                for violation in report.violations
            ],
            "obligations": {"failed": len(failed)},
        }

    # -- writes: one at a time per store, snapshot swap on commit -----------

    async def _post_append(
        self, state: _StoreState, body: Any
    ) -> tuple[int, Any]:
        delta = _decode_ops(body)
        expect = body.get("expect_generation")
        if expect is not None and not isinstance(expect, str):
            raise ServiceError(400, "'expect_generation' is a string token")
        async with state.lock:
            outgoing = state.snapshot

            def write() -> StoredArgument:
                handle = StoredArgument(state.path)
                if expect is not None and str(handle.generation) != expect:
                    raise StoreConflictError(
                        f"store {state.name!r} is at generation "
                        f"{handle.generation}, not {expect} — refetch and "
                        "rebase the edit"
                    )
                handle.append_delta(delta)
                handle.adopt_base_caches(outgoing)
                return handle

            fresh = await self._in_thread(write)
            state.snapshot = fresh
        return 200, {
            "generation": str(fresh.generation),
            "applied": len(delta),
            "nodes": fresh.node_count,
            "links": fresh.link_count,
        }

    async def _post_compact(self, state: _StoreState) -> tuple[int, Any]:
        async with state.lock:

            def write() -> StoredArgument:
                handle = StoredArgument(state.path)
                handle.compact()
                return handle

            fresh = await self._in_thread(write)
            state.snapshot = fresh
        return 200, {"generation": str(fresh.generation)}

    async def _post_gc(self, state: _StoreState) -> tuple[int, Any]:
        async with state.lock:

            def write() -> "tuple[StoredArgument, list[str]]":
                handle = StoredArgument(state.path)
                removed = handle.gc()
                handle.adopt_base_caches(state.snapshot)
                return handle, removed

            fresh, removed = await self._in_thread(write)
            state.snapshot = fresh
        return 200, {
            "generation": str(fresh.generation), "removed": removed,
        }


def run(root: Path | str, host: str = "127.0.0.1", port: int = 8873) -> None:
    """Blocking entry point (``python -m repro.service``)."""

    async def main() -> None:
        service = ArgumentService(root)
        bound_host, bound_port = await service.start(host, port)
        print(f"repro argument service on http://{bound_host}:{bound_port}")
        for name in service._store_names():
            print(f"  /stores/{name}")
        await service.serve_forever()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
