"""A multi-editor argument service over one shared store directory.

The store layer (:mod:`repro.store`) gives many processes safe access to
one on-disk case: lock-free snapshot readers over content-addressed
generations, and lease-serialized writers with compare-and-append
conflict detection.  This package puts a wire protocol on top so the
processes do not even have to share a filesystem: a stdlib-only asyncio
HTTP/JSON front end (:mod:`~repro.service.server`) serving reads from
pinned snapshot handles — concurrently, without locks — and funnelling
every mutation through one per-store write queue, plus a small
synchronous client (:mod:`~repro.service.client`) for editor tooling
and tests.

Run it with ``python -m repro.service /path/to/root``; every
``<name>.store`` directory under the root (any directory carrying a
store manifest, actually) is served as ``/stores/<name>``.

Concurrency model
=================

* **Reads** (``GET`` node/subtree, ``POST`` query/check) execute against
  the store's *current snapshot handle* in worker threads.  A snapshot
  never changes under a request: commits swap in a fresh handle (which
  adopts the previous one's base-shard caches, so the swap is O(journal
  delta)) while in-flight reads finish on the generation they started
  with.
* **Writes** (``POST`` append/compact/gc) serialize on an
  :class:`asyncio.Lock` per store, then take the store's on-disk writer
  lease like any other writer — so a service instance composes safely
  with direct ``save(journal=True)`` editors on the same directory.
* **Optimistic concurrency** for editors: every response carries the
  store's generation token; ``POST append`` accepts
  ``expect_generation`` and fails with ``409`` when the store moved —
  the HTTP rendering of :class:`repro.store.StoreConflictError`.
"""

from .client import ServiceClient, ServiceClientError
from .server import ArgumentService

__all__ = ["ArgumentService", "ServiceClient", "ServiceClientError"]
