"""A small synchronous client for the argument service.

``http.client`` only — the counterpart to the server's stdlib-only
constraint — with one connection reused across calls (the server speaks
keep-alive).  The client's job is marshalling, not policy: it exposes
the generation tokens and raises :class:`ServiceClientError` carrying
the HTTP status and the server's error detail, so editor loops can
implement fetch → edit → append-with-``expect_generation`` → on-409
rebase-and-retry in a few lines (see ``examples/service_demo.py``).

``ops_for_delta`` turns a live :class:`~repro.core.argument.
MutationDelta` — e.g. ``argument.persisted_delta(...)`` from a local
editing session — into the journal-encoded op list the append endpoint
takes, closing the loop between offline edits and the shared service.
"""

from __future__ import annotations

import http.client
import json
from typing import Any

from ..core.argument import MutationDelta
from ..store.journal import encode_op

__all__ = ["ServiceClient", "ServiceClientError", "ops_for_delta"]


def ops_for_delta(delta: MutationDelta) -> "list[dict[str, Any]]":
    """A delta's mutations as journal-encoded op records for ``append``."""
    return [encode_op(op, payload) for op, payload in delta.records]


class ServiceClientError(Exception):
    """A non-2xx service response (carries status and server detail)."""

    def __init__(self, status: int, detail: str) -> None:
        super().__init__(f"HTTP {status}: {detail}")
        self.status = status
        self.detail = detail


class ServiceClient:
    """One editor's connection to a running argument service."""

    def __init__(
        self, host: str, port: int, *, timeout: float = 30.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._connection: http.client.HTTPConnection | None = None

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- plumbing -----------------------------------------------------------

    def _request(self, method: str, path: str, body: Any = None) -> Any:
        payload = (
            json.dumps(body, separators=(",", ":")).encode("utf-8")
            if body is not None else None
        )
        headers = {"Content-Type": "application/json"} if payload else {}
        for attempt in (0, 1):
            if self._connection is None:
                self._connection = http.client.HTTPConnection(
                    self.host, self.port, timeout=self.timeout
                )
            try:
                self._connection.request(method, path, payload, headers)
                response = self._connection.getresponse()
                raw = response.read()
                break
            except (http.client.HTTPException, ConnectionError, OSError):
                # A dropped keep-alive connection is normal churn; one
                # reconnect per request, then the error is real.
                self.close()
                if attempt:
                    raise
        try:
            decoded = json.loads(raw.decode("utf-8")) if raw else None
        except ValueError:
            raise ServiceClientError(
                response.status, f"undecodable response body {raw[:80]!r}"
            ) from None
        if response.status >= 400:
            detail = ""
            if isinstance(decoded, dict):
                detail = str(decoded.get("error", ""))
            raise ServiceClientError(response.status, detail)
        return decoded

    # -- endpoints ----------------------------------------------------------

    def health(self) -> Any:
        return self._request("GET", "/health")

    def stores(self) -> Any:
        return self._request("GET", "/stores")

    def store(self, name: str) -> Any:
        return self._request("GET", f"/stores/{name}")

    def node(self, name: str, identifier: str) -> Any:
        return self._request("GET", f"/stores/{name}/nodes/{identifier}")

    def subtree(self, name: str, identifier: str) -> Any:
        return self._request("GET", f"/stores/{name}/subtree/{identifier}")

    def query(self, name: str, query: "dict[str, Any]") -> Any:
        return self._request(
            "POST", f"/stores/{name}/query", {"query": query}
        )

    def search(
        self, name: str, q: str, *, limit: "int | None" = None
    ) -> Any:
        body: "dict[str, Any]" = {"q": q}
        if limit is not None:
            body["limit"] = limit
        return self._request("POST", f"/stores/{name}/search", body)

    def check(
        self,
        name: str,
        *,
        mode: "str | None" = None,
        workers: "int | None" = None,
    ) -> Any:
        """Check the store; ``mode`` selects the engine (server default:
        streaming).  The response carries ``mode`` (the engine actually
        used) and ``obligations.failed`` (formal obligations that did
        not discharge) alongside the violations."""
        body: "dict[str, Any]" = {}
        if mode is not None:
            body["mode"] = mode
        if workers is not None:
            body["workers"] = workers
        return self._request(
            "POST", f"/stores/{name}/check", body or None
        )

    def append(
        self,
        name: str,
        ops: "list[dict[str, Any]] | MutationDelta",
        *,
        expect_generation: "str | None" = None,
    ) -> Any:
        if isinstance(ops, MutationDelta):
            ops = ops_for_delta(ops)
        body: "dict[str, Any]" = {"ops": ops}
        if expect_generation is not None:
            body["expect_generation"] = expect_generation
        return self._request("POST", f"/stores/{name}/append", body)

    def compact(self, name: str) -> Any:
        return self._request("POST", f"/stores/{name}/compact")

    def gc(self, name: str) -> Any:
        return self._request("POST", f"/stores/{name}/gc")
