"""``python -m repro.service ROOT [--host H] [--port P]``.

Serves every store directory under ROOT (see
:class:`repro.service.ArgumentService`).  Port 0 picks a free port and
prints it.
"""

from __future__ import annotations

import argparse
from pathlib import Path

from .server import run


def main(argv: "list[str] | None" = None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve argument stores under a root directory "
        "over HTTP/JSON.",
    )
    parser.add_argument(
        "root", type=Path,
        help="directory whose store subdirectories are served",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8873)
    arguments = parser.parse_args(argv)
    run(arguments.root, arguments.host, arguments.port)


if __name__ == "__main__":
    main()
