"""The unified checking facade: one entry point, four engines.

Before this module, callers picked among four surfaces —
``wellformed.check`` (live arguments), ``RuleSet.check`` (mode
keyword), ``RuleSet.incremental`` / ``IncrementalChecker`` (delta-log
re-checking), and ``IncrementalChecker.from_store`` (journaled
stores).  :func:`check` subsumes them:

``repro.check(subject, rules=..., mode=...)``
    *subject* is a live :class:`~repro.core.argument.Argument` or a
    stored handle (anything satisfying
    :func:`~repro.core.analysis.is_stored_argument`).  ``mode`` is
    ``"auto"`` (default), ``"serial"``, ``"streaming"``,
    ``"parallel"``, ``"full"``, or ``"incremental"`` — the last keeps
    a delta-log checker alive per (subject, rules) behind the scenes,
    so repeated incremental checks of the same subject re-run only
    what changed (including re-proving only the formal obligations an
    edit touched; see :mod:`repro.claims.obligations`).

The result is a typed :class:`CheckReport`: the violations (in the
engine's canonical order), the **mode actually used** (``auto`` and
degraded ``parallel`` resolve to a concrete engine), and the
obligation outcomes — discharged and failed — when the subject or a
:class:`~repro.claims.compiler.CompiledClaims` carries bindings.  The
report is list-like over its violations, so existing call sites that
truth-test or iterate the old ``list[Violation]`` return value keep
working through the delegating shims.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Optional, Sequence

from .claims.compiler import CompiledClaims
from .claims.obligations import (
    CACHE,
    ObligationSyntaxError,
    obligation_specs,
    parse_obligation,
)
from .core.analysis import (
    IncrementalChecker,
    ScopedRule,
    Violation,
    is_stored_argument,
    run_rules,
)
from .core.argument import Argument
from .core.wellformed import GSN_STANDARD_RULES, RuleSet

__all__ = [
    "CHECK_MODES",
    "CheckReport",
    "ObligationOutcome",
    "check",
]

#: Modes accepted by :func:`check`; the first five mirror
#: :func:`~repro.core.analysis.run_rules`.
CHECK_MODES = (
    "auto", "serial", "streaming", "parallel", "full", "incremental",
)


@dataclass(frozen=True)
class ObligationOutcome:
    """One formal obligation's fate during a check."""

    evidence: str
    spec: str
    discharged: bool
    detail: str = ""


@dataclass(frozen=True)
class CheckReport:
    """A typed checking result: violations + obligations + mode used.

    List-like over its violations (``len``, iteration, indexing,
    truthiness), so it drops into code written against the legacy
    ``list[Violation]`` surface; ``well_formed`` and the obligation
    partitions carry the richer story.
    """

    subject: str
    mode: str
    violations: "tuple[Violation, ...]"
    obligations: "tuple[ObligationOutcome, ...]" = ()

    @property
    def well_formed(self) -> bool:
        """True when the check found no violations at all."""
        return not self.violations

    @property
    def discharged(self) -> "tuple[ObligationOutcome, ...]":
        return tuple(o for o in self.obligations if o.discharged)

    @property
    def failed(self) -> "tuple[ObligationOutcome, ...]":
        return tuple(o for o in self.obligations if not o.discharged)

    def __len__(self) -> int:
        return len(self.violations)

    def __iter__(self) -> "Iterator[Violation]":
        return iter(self.violations)

    def __getitem__(self, index: int) -> Violation:
        return self.violations[index]

    def __contains__(self, item: object) -> bool:
        return item in self.violations


# -- incremental checker registry --------------------------------------------
#
# ``mode="incremental"`` needs a long-lived IncrementalChecker per
# (subject, rules) pair: the checker owns the delta-log cursor, so a
# fresh one per call would be a full recompute every time.  Arguments
# are deliberately unhashable (mutable identity), so the registry keys
# by id().  Each checker holds its subject strongly — that is what
# keeps the id valid while the entry exists — so the registry is a
# bounded LRU rather than weakref-evicted: beyond
# :data:`_MAX_INCREMENTAL_SUBJECTS` distinct subjects, the least
# recently checked one is dropped (its next incremental check simply
# pays one fresh full check again).

_MAX_INCREMENTAL_SUBJECTS = 8

_CHECKERS: "OrderedDict[int, list[tuple[tuple[ScopedRule, ...], IncrementalChecker]]]" = OrderedDict()


def _incremental_checker(
    subject: Any, scoped: "tuple[ScopedRule, ...]"
) -> IncrementalChecker:
    key = id(subject)
    entries = _CHECKERS.get(key)
    if entries is None:
        entries = []
        _CHECKERS[key] = entries
    _CHECKERS.move_to_end(key)
    while len(_CHECKERS) > _MAX_INCREMENTAL_SUBJECTS:
        _CHECKERS.popitem(last=False)
    for cached_rules, checker in entries:
        if cached_rules == scoped:
            return checker
    if is_stored_argument(subject):
        checker = IncrementalChecker.from_store(subject, scoped)
    else:
        checker = IncrementalChecker(subject, scoped)
    entries.append((scoped, checker))
    return checker


# -- mode resolution ----------------------------------------------------------


def _resolved_mode(subject: Any, mode: str, workers: Optional[int]) -> str:
    """The engine :func:`~repro.core.analysis.run_rules` actually used.

    Mirrors its dispatch: ``auto`` picks streaming for stored subjects
    and serial for live ones; ``parallel`` degrades the same way when
    fewer than two effective workers are available.
    """
    stored = is_stored_argument(subject)
    if mode == "parallel":
        effective = workers if workers is not None else (os.cpu_count() or 1)
        if effective >= 2:
            return "parallel"
        mode = "streaming"  # the engine's one-core degradation
    if mode in ("auto", "serial", "streaming"):
        return "streaming" if stored else "serial"
    return mode


# -- obligation outcomes ------------------------------------------------------


def _iter_bindings(
    subject: Any, claims: Optional[CompiledClaims]
) -> "Iterable[tuple[str, str]]":
    """(evidence id, spec) pairs to report outcomes for."""
    if claims is not None:
        for identifier, specs in claims.bindings.items():
            for spec in specs:
                yield identifier, spec
        return
    if isinstance(subject, Argument):
        for node in subject.nodes:
            for spec in obligation_specs(node):
                yield node.identifier, spec
    # Stored subjects without a compiled module are not scanned here:
    # enumerating their bindings would stream every shard a second
    # time.  Their failed obligations still appear as violations.


def _outcomes(
    subject: Any, claims: Optional[CompiledClaims]
) -> "tuple[ObligationOutcome, ...]":
    out: "list[ObligationOutcome]" = []
    for identifier, spec in _iter_bindings(subject, claims):
        try:
            obligation = parse_obligation(spec)
        except ObligationSyntaxError as exc:
            out.append(ObligationOutcome(
                identifier, spec, False, f"malformed obligation: {exc}",
            ))
            continue
        detail = CACHE.result(identifier, obligation)
        out.append(ObligationOutcome(
            identifier, obligation.spec, detail is None, detail or "",
        ))
    return tuple(out)


# -- the facade ---------------------------------------------------------------


def check(
    subject: Any,
    rules: "RuleSet | CompiledClaims | Sequence[ScopedRule]" = GSN_STANDARD_RULES,
    *,
    mode: str = "auto",
    workers: Optional[int] = None,
    claims: Optional[CompiledClaims] = None,
) -> CheckReport:
    """Check *subject* against *rules* and report the result.

    *subject* — a live :class:`~repro.core.argument.Argument` or a
    stored handle.  *rules* — a :class:`~repro.core.wellformed
    .RuleSet`, a :class:`~repro.claims.compiler.CompiledClaims` rule
    set, or a plain sequence of scoped rules.  *claims* — optionally
    the compiled claim module whose evidence bindings should be
    reported as typed obligation outcomes (live arguments report
    their metadata-bound obligations automatically).

    ``mode="incremental"`` reuses a cached delta-log checker per
    (subject, rules): the first call pays a full check, later calls
    re-run only the rules the intervening mutations touched.
    """
    if mode not in CHECK_MODES:
        raise ValueError(
            f"mode must be one of {', '.join(CHECK_MODES)}; got {mode!r}"
        )
    if isinstance(rules, CompiledClaims):
        if claims is None:
            claims = rules
        rules = rules.rule_set
    scoped = tuple(rules.rules) if isinstance(rules, RuleSet) \
        else tuple(rules)
    if mode == "incremental":
        checker = _incremental_checker(subject, scoped)
        violations = tuple(checker.check())
        used = "incremental"
    else:
        violations = tuple(
            run_rules(subject, scoped, mode=mode, workers=workers)
        )
        used = _resolved_mode(subject, mode, workers)
    name = getattr(subject, "name", None)
    return CheckReport(
        subject=str(name) if name is not None else type(subject).__name__,
        mode=used,
        violations=violations,
        obligations=_outcomes(subject, claims),
    )
