"""The systematic literature survey (§III), as a runnable pipeline.

* :mod:`~repro.survey.records` — the twenty selected papers, their §III
  characterisation, and the published Table I numbers;
* :mod:`~repro.survey.corpus` — the calibrated synthetic four-library
  corpus standing in for the 2014 snapshot (see DESIGN.md substitutions);
* :mod:`~repro.survey.search` — ranked queries with the first-60 cut-off;
* :mod:`~repro.survey.selection` — the two-phase inclusion procedure;
* :mod:`~repro.survey.report` — the driver regenerating Table I.
"""

from .characterise import (
    GROUPS,
    characterise,
    group_report,
    maturity_summary,
    render_characterisation,
)
from .corpus import Corpus, CorpusPaper, LIBRARIES, build_corpus
from .records import (
    Domain,
    FormalisationKind,
    PaperRecord,
    Relationship,
    SELECTED_PAPERS,
    TABLE_I,
    TABLE_I_UNIQUE,
    papers_claiming_mechanical_confidence,
    papers_formalising_content,
    papers_formalising_pattern_parameters,
    papers_formalising_pattern_structure,
    papers_formalising_syntax,
    papers_informal_first,
    papers_mentioning_mechanical_verification,
)
from .report import SurveyOutcome, render_table_i, run_survey
from .search import DigitalLibrary, QUERIES, SearchResult, run_searches
from .selection import (
    Phase1Selection,
    noisy_phase1,
    phase1_keep,
    phase2_keep,
    select_phase1,
    select_phase2,
)

__all__ = [
    "GROUPS",
    "characterise",
    "group_report",
    "maturity_summary",
    "render_characterisation",
    "Corpus",
    "CorpusPaper",
    "LIBRARIES",
    "build_corpus",
    "Domain",
    "FormalisationKind",
    "PaperRecord",
    "Relationship",
    "SELECTED_PAPERS",
    "TABLE_I",
    "TABLE_I_UNIQUE",
    "papers_claiming_mechanical_confidence",
    "papers_formalising_content",
    "papers_formalising_pattern_parameters",
    "papers_formalising_pattern_structure",
    "papers_formalising_syntax",
    "papers_informal_first",
    "papers_mentioning_mechanical_verification",
    "SurveyOutcome",
    "render_table_i",
    "run_survey",
    "DigitalLibrary",
    "QUERIES",
    "SearchResult",
    "run_searches",
    "Phase1Selection",
    "noisy_phase1",
    "phase1_keep",
    "phase2_keep",
    "select_phase1",
    "select_phase2",
]
