"""The two-phase selection procedure (§III.C).

Phase one examines titles and abstracts and *excludes* papers where:

1. nothing hints the paper is about an assurance argument or related
   technology;
2. the paper is about an item of evidence (e.g. an algorithm proof)
   rather than argument formalisation;
3. 'formal' is used in a sense other than formalised syntax or
   symbolic/deductive logic.

Phase two examines full texts and excludes papers that are not concerned
with a system for documenting support for a dependability claim, or that
never discuss recording the evidence-to-claim linkage in symbolic or
deductive logic.

The predicates below consume the selectors' judgments carried on each
:class:`~repro.survey.corpus.CorpusPaper` — the corpus is where the human
decisions live; this module is the documented procedure that applies
them.  ``noisy_phase1`` adds a seeded error model for the §VI-style
sensitivity benchmarks (single-researcher selection, as the paper's
threats-to-validity paragraph concedes, has a miss rate).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Sequence

from .corpus import CorpusPaper
from .records import Domain
from .search import SearchResult

__all__ = [
    "phase1_keep",
    "phase2_keep",
    "select_phase1",
    "select_phase2",
    "noisy_phase1",
    "Phase1Selection",
]


def phase1_keep(paper: CorpusPaper) -> bool:
    """Phase one: keep unless an exclusion criterion fires."""
    if not paper.hints_assurance_argument:
        return False
    if paper.evidence_item_only:
        return False
    if paper.formal_other_sense:
        return False
    return True


def phase2_keep(paper: CorpusPaper) -> bool:
    """Phase two: both full-text criteria must hold."""
    return (
        paper.documents_claim_support
        and paper.symbolic_or_deductive_linkage
    )


@dataclass(frozen=True)
class Phase1Selection:
    """Phase-one outcome: per-cell keeps plus the unique union."""

    per_cell: dict[tuple[str, str], tuple[CorpusPaper, ...]]
    unique: tuple[CorpusPaper, ...]

    def cell_count(self, library: str, domain: Domain) -> int:
        return len(self.per_cell[(library, domain.value)])

    def unique_in_domain(self, domain: Domain) -> list[CorpusPaper]:
        return [p for p in self.unique if domain in p.matches]


def select_phase1(results: Sequence[SearchResult]) -> Phase1Selection:
    """Apply phase one to every search window."""
    per_cell: dict[tuple[str, str], tuple[CorpusPaper, ...]] = {}
    seen: dict[str, CorpusPaper] = {}
    for result in results:
        kept = tuple(p for p in result.examined if phase1_keep(p))
        per_cell[(result.library, result.domain.value)] = kept
        for paper in kept:
            seen.setdefault(paper.key, paper)
    unique = tuple(
        sorted(seen.values(), key=lambda p: p.key)
    )
    return Phase1Selection(per_cell, unique)


def select_phase2(
    phase1: Phase1Selection,
) -> list[CorpusPaper]:
    """Apply phase two to the unique phase-one survivors."""
    return [p for p in phase1.unique if phase2_keep(p)]


def noisy_phase1(
    results: Sequence[SearchResult],
    rng: random.Random,
    miss_rate: float = 0.05,
    false_keep_rate: float = 0.02,
) -> Phase1Selection:
    """Phase one with a single-researcher error model.

    Each genuinely relevant paper is overlooked with ``miss_rate``; each
    excludable paper is wrongly kept with ``false_keep_rate``.  Used by
    the survey-sensitivity benchmark to show how Table I shifts under
    realistic selection noise — the quantified version of the paper's
    'we might obtain more complete and accurate results by ... including
    multiple researchers'.
    """
    per_cell: dict[tuple[str, str], tuple[CorpusPaper, ...]] = {}
    seen: dict[str, CorpusPaper] = {}
    decisions: dict[str, bool] = {}
    for result in results:
        kept: list[CorpusPaper] = []
        for paper in result.examined:
            if paper.key not in decisions:
                truth = phase1_keep(paper)
                if truth:
                    decisions[paper.key] = rng.random() >= miss_rate
                else:
                    decisions[paper.key] = rng.random() < false_keep_rate
            if decisions[paper.key]:
                kept.append(paper)
        per_cell[(result.library, result.domain.value)] = tuple(kept)
        for paper in kept:
            seen.setdefault(paper.key, paper)
    unique = tuple(sorted(seen.values(), key=lambda p: p.key))
    return Phase1Selection(per_cell, unique)
