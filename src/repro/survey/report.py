"""Survey pipeline driver and Table I generation.

:func:`run_survey` executes the full documented method — build the corpus,
run the eight searches, apply both selection phases — and packages the
outcome so the Table I benchmark can compare it cell-by-cell against the
published numbers in :data:`~repro.survey.records.TABLE_I`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from .corpus import Corpus, LIBRARIES, build_corpus
from .records import (
    Domain,
    PaperRecord,
    SELECTED_PAPERS,
    TABLE_I,
    TABLE_I_UNIQUE,
)
from .search import SearchResult, run_searches
from .selection import Phase1Selection, select_phase1, select_phase2

__all__ = ["SurveyOutcome", "run_survey", "render_table_i"]


@dataclass(frozen=True)
class SurveyOutcome:
    """Everything the pipeline produced."""

    corpus_size: int
    searches: tuple[SearchResult, ...]
    phase1: Phase1Selection
    phase2_keys: tuple[str, ...]

    def table(self) -> dict[str, dict[str, int]]:
        """Phase-one counts in the Table I layout."""
        return {
            library: {
                "safety": self.phase1.cell_count(library, Domain.SAFETY),
                "security": self.phase1.cell_count(
                    library, Domain.SECURITY
                ),
            }
            for library in LIBRARIES
        }

    def unique_counts(self) -> dict[str, int]:
        """The unique-results row of Table I."""
        return {
            "total": len(self.phase1.unique),
            "safety": len(self.phase1.unique_in_domain(Domain.SAFETY)),
            "security": len(
                self.phase1.unique_in_domain(Domain.SECURITY)
            ),
        }

    def matches_published_table(self) -> bool:
        """Cell-by-cell agreement with the published Table I."""
        if self.table() != {
            library: dict(cells) for library, cells in TABLE_I.items()
        }:
            return False
        return self.unique_counts() == dict(TABLE_I_UNIQUE)

    def selected_records(self) -> list[PaperRecord]:
        """The phase-two survivors' bibliographic records."""
        by_key = {p.key: p for p in SELECTED_PAPERS}
        return [by_key[k] for k in self.phase2_keys if k in by_key]


def run_survey(seed: int = 2014, first_n: int = 60) -> SurveyOutcome:
    """Execute the full survey method."""
    corpus = build_corpus(seed)
    searches = tuple(run_searches(corpus, first_n=first_n))
    phase1 = select_phase1(searches)
    phase2 = select_phase2(phase1)
    return SurveyOutcome(
        corpus_size=len(corpus),
        searches=searches,
        phase1=phase1,
        phase2_keys=tuple(sorted(p.key for p in phase2)),
    )


def render_table_i(outcome: SurveyOutcome) -> str:
    """Render the outcome in the shape of the paper's Table I."""
    lines = [
        "NUMBER OF PAPERS SELECTED IN THE FIRST SELECTION PHASE",
        "",
        f"{'Digital library':<24} {'Safety':>7} {'Security':>9}",
        "-" * 42,
    ]
    table = outcome.table()
    for library in LIBRARIES:
        lines.append(
            f"{library:<24} {table[library]['safety']:>7} "
            f"{table[library]['security']:>9}"
        )
    unique = outcome.unique_counts()
    lines.append("-" * 42)
    lines.append(
        f"{'Unique results (' + str(unique['total']) + ' total):':<24} "
        f"{unique['safety']:>7} {unique['security']:>9}"
    )
    lines.append("")
    lines.append(
        f"Phase two yielded {len(outcome.phase2_keys)} selected papers."
    )
    return "\n".join(lines)
