"""The synthetic four-library corpus behind the survey pipeline.

The paper's searches ran against IEEE Xplore, the ACM Digital Library,
Springer Link, and Google Scholar in 2014 — a snapshot no offline build
can query.  Per the substitution policy in DESIGN.md, this module builds
an explicit, auditable stand-in: a corpus whose *relevant* population is
exactly the structure Table I reports —

* 72 unique phase-one-selectable papers: 49 matched only by the safety
  query, 18 only by the security query, and 5 by both (54 and 23 unique
  per query respectively);
* library indexing with multiplicity: the safety query's 61 per-library
  selections over 54 unique papers mean seven papers surface in two
  libraries; each security selection surfaces in exactly one;
* the twenty papers of :data:`~repro.survey.records.SELECTED_PAPERS`
  embedded among the 72 (they are the only ones passing phase two);
* per-library noise — lexically query-matching but irrelevant papers —
  so the 'first sixty' cut-off of §III.B has something to cut (Springer
  famously claimed 40,283 hits for 'formal security argument').

Every judgment the human selectors made is carried as explicit boolean
annotations on :class:`CorpusPaper` (see
:mod:`repro.survey.selection`), so the pipeline's logic is the paper's
documented method, and the corpus is the documented 2014 snapshot model.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from .records import Domain, PaperRecord, SELECTED_PAPERS, TABLE_I

__all__ = ["CorpusPaper", "Corpus", "LIBRARIES", "build_corpus"]

LIBRARIES: tuple[str, ...] = (
    "IEEE Xplore",
    "ACM Digital Library",
    "Springer Link",
    "Google Scholar",
)

#: Nominal total hit counts each library reports (display only; the paper
#: quotes Springer's 40,283 for 'formal security argument').
CLAIMED_TOTALS: Mapping[tuple[str, str], int] = {
    ("IEEE Xplore", "safety"): 1_418,
    ("IEEE Xplore", "security"): 2_034,
    ("ACM Digital Library", "safety"): 3_127,
    ("ACM Digital Library", "security"): 2_855,
    ("Springer Link", "safety"): 28_907,
    ("Springer Link", "security"): 40_283,
    ("Google Scholar", "safety"): 17_400,
    ("Google Scholar", "security"): 21_900,
}


@dataclass(frozen=True)
class CorpusPaper:
    """One paper in the corpus, with the selectors' judgments as data.

    ``matches`` records which query strings surface the paper.
    ``hints_assurance_argument`` / ``evidence_item_only`` /
    ``formal_other_sense`` encode the three phase-one exclusion criteria;
    ``documents_claim_support`` / ``symbolic_or_deductive_linkage`` encode
    the two phase-two criteria (§III.C).  ``relevance`` drives result
    ranking within a library.
    """

    key: str
    title: str
    abstract: str
    libraries: frozenset[str]
    matches: frozenset[Domain]
    relevance: float
    hints_assurance_argument: bool
    evidence_item_only: bool
    formal_other_sense: bool
    documents_claim_support: bool
    symbolic_or_deductive_linkage: bool
    record: PaperRecord | None = None


_SYNTH_SAFETY_TOPICS = (
    "hazard log consistency", "ALARP determinations",
    "safety monitor synthesis", "FMEA table generation",
    "safety kernel verification", "certification data packaging",
    "assurance deficit scoring", "safety contract composition",
    "goal decomposition heuristics", "risk matrix calibration",
    "incident precursors mining", "safety envelope estimation",
)

_SYNTH_SECURITY_TOPICS = (
    "threat model elicitation", "attack tree pruning",
    "security control mapping", "trust boundary documentation",
    "misuse case derivation", "penetration finding triage",
)

_NOISE_TEMPLATES = (
    ("A formal {domain} analysis of {topic} protocols",
     "We prove properties of a protocol; no assurance case is involved."),
    ("Formal verification of {topic} algorithms for {domain} systems",
     "An item of evidence: algorithm-level proof, not an argument."),
    ("{topic} in formal attire: a position on {domain} culture",
     "Uses 'formal' in the sartorial sense."),
    ("Towards formal {domain} training curricula: {topic}",
     "Education-focused; formal here means accredited."),
    ("Model checking {topic} for {domain}-critical middleware",
     "Verification evidence for middleware; no argumentation."),
)

_NOISE_TOPICS = (
    "handshake", "consensus", "cache coherence", "routing",
    "scheduler", "garbage collection", "authentication", "telemetry",
    "watchdog", "bus arbitration", "key exchange", "logging",
)


@dataclass
class Corpus:
    """The full synthetic corpus, indexable by library."""

    papers: list[CorpusPaper]

    def in_library(self, library: str) -> list[CorpusPaper]:
        return [p for p in self.papers if library in p.libraries]

    def relevant(self) -> list[CorpusPaper]:
        """Papers a careful phase-one selector keeps."""
        return [
            p for p in self.papers
            if p.hints_assurance_argument
            and not p.evidence_item_only
            and not p.formal_other_sense
        ]

    def paper(self, key: str) -> CorpusPaper:
        for candidate in self.papers:
            if candidate.key == key:
                return candidate
        raise KeyError(key)

    def __len__(self) -> int:
        return len(self.papers)


def _allocate_instances(
    quotas: Mapping[str, int],
    unique_count: int,
    rng: random.Random,
) -> list[tuple[str, ...]]:
    """Assign library tuples to ``unique_count`` papers to meet quotas.

    Total quota instances may exceed the unique count; the surplus papers
    are indexed in two libraries.  Returns one library tuple per paper.
    """
    slots: list[str] = []
    for library in LIBRARIES:
        slots.extend([library] * quotas.get(library, 0))
    surplus = len(slots) - unique_count
    if surplus < 0:
        raise ValueError("quotas smaller than unique paper count")
    rng.shuffle(slots)
    assignments: list[tuple[str, ...]] = []
    index = 0
    for paper_number in range(unique_count):
        if paper_number < surplus:
            # Doubly indexed: take two distinct libraries from the pool.
            first = slots[index]
            second_index = next(
                (j for j in range(index + 1, len(slots))
                 if slots[j] != first),
                None,
            )
            if second_index is None:
                raise ValueError("cannot find distinct second library")
            second = slots.pop(second_index)
            assignments.append((first, second))
            index += 1
        else:
            assignments.append((slots[index],))
            index += 1
    return assignments


def build_corpus(seed: int = 2014) -> Corpus:
    """Construct the calibrated corpus (deterministic in ``seed``)."""
    rng = random.Random(seed)
    papers: list[CorpusPaper] = []

    selected_safety = [
        p for p in SELECTED_PAPERS if p.domain is Domain.SAFETY
    ]
    selected_security = [
        p for p in SELECTED_PAPERS if p.domain is Domain.SECURITY
    ]

    # --- the 54-unique safety population -------------------------------
    # 15 selected + 34 synthetic phase-2-rejects, single- or double-indexed
    # to fill the safety column quotas net of the 5 dual-domain papers.
    both_library_homes = ["IEEE Xplore", "IEEE Xplore", "IEEE Xplore",
                          "ACM Digital Library", "ACM Digital Library"]
    safety_quotas = {
        library: TABLE_I[library]["safety"] for library in LIBRARIES
    }
    for library in both_library_homes:
        safety_quotas[library] -= 1
    security_quotas = {
        library: TABLE_I[library]["security"] for library in LIBRARIES
    }
    for library in both_library_homes:
        security_quotas[library] -= 1

    safety_unique = len(selected_safety) + 34  # 49
    safety_libraries = _allocate_instances(
        safety_quotas, safety_unique, rng
    )
    security_unique = len(selected_security) + 13  # 18
    security_libraries = _allocate_instances(
        security_quotas, security_unique, rng
    )

    def relevance(rank_band: float) -> float:
        return rank_band + rng.random() * 0.2

    # Selected papers first (they must reach phase 2).
    for record, libs in zip(selected_safety,
                            safety_libraries[: len(selected_safety)]):
        papers.append(CorpusPaper(
            key=record.key,
            title=record.title,
            abstract=f"{record.authors} ({record.year}). {record.notes}",
            libraries=frozenset(libs),
            matches=frozenset((Domain.SAFETY,)),
            relevance=relevance(0.8),
            hints_assurance_argument=True,
            evidence_item_only=False,
            formal_other_sense=False,
            documents_claim_support=True,
            symbolic_or_deductive_linkage=True,
            record=record,
        ))
    for record, libs in zip(selected_security,
                            security_libraries[: len(selected_security)]):
        papers.append(CorpusPaper(
            key=record.key,
            title=record.title,
            abstract=f"{record.authors} ({record.year}). {record.notes}",
            libraries=frozenset(libs),
            matches=frozenset((Domain.SECURITY,)),
            relevance=relevance(0.8),
            hints_assurance_argument=True,
            evidence_item_only=False,
            formal_other_sense=False,
            documents_claim_support=True,
            symbolic_or_deductive_linkage=True,
            record=record,
        ))

    # Phase-1-pass / phase-2-fail synthetics.  They look like assurance-
    # argument papers from title and abstract but the full text reveals no
    # symbolic/deductive evidence-to-claim linkage (the phase-two cut).
    def synthetic(key: str, topic: str, domains: frozenset[Domain],
                  libs: tuple[str, ...]) -> CorpusPaper:
        domain_word = (
            "safety" if Domain.SAFETY in domains else "security"
        )
        if len(domains) == 2:
            domain_word = "safety and security"
        return CorpusPaper(
            key=key,
            title=f"Structuring {domain_word} argumentation for "
                  f"{topic}",
            abstract=(
                f"We discuss how {domain_word} cases might address "
                f"{topic}, surveying argument structures."
            ),
            libraries=frozenset(libs),
            matches=domains,
            relevance=relevance(0.6),
            hints_assurance_argument=True,
            evidence_item_only=False,
            formal_other_sense=False,
            documents_claim_support=True,
            symbolic_or_deductive_linkage=False,
            record=None,
        )

    for index in range(34):
        topic = _SYNTH_SAFETY_TOPICS[index % len(_SYNTH_SAFETY_TOPICS)]
        libs = safety_libraries[len(selected_safety) + index]
        papers.append(synthetic(
            f"synth_safety_{index:02d}", topic,
            frozenset((Domain.SAFETY,)), libs,
        ))
    for index in range(13):
        topic = _SYNTH_SECURITY_TOPICS[index % len(_SYNTH_SECURITY_TOPICS)]
        libs = security_libraries[len(selected_security) + index]
        papers.append(synthetic(
            f"synth_security_{index:02d}", topic,
            frozenset((Domain.SECURITY,)), libs,
        ))
    # The five dual-domain papers (each in one library).
    for index, library in enumerate(both_library_homes):
        papers.append(synthetic(
            f"synth_both_{index:02d}",
            "dependability cases for mixed-criticality platforms",
            frozenset((Domain.SAFETY, Domain.SECURITY)),
            (library,),
        ))

    # --- noise -----------------------------------------------------------
    # Lexically matching, phase-one-excluded papers in every cell.  Enough
    # of them rank inside the first sixty to make the cut-off meaningful.
    noise_counter = 0
    for library in LIBRARIES:
        for domain in (Domain.SAFETY, Domain.SECURITY):
            for _ in range(70):
                template_title, template_abstract = rng.choice(
                    _NOISE_TEMPLATES
                )
                topic = rng.choice(_NOISE_TOPICS)
                reason = rng.random()
                papers.append(CorpusPaper(
                    key=f"noise_{noise_counter:04d}",
                    title=template_title.format(
                        domain=domain.value, topic=topic
                    ),
                    abstract=template_abstract,
                    libraries=frozenset((library,)),
                    matches=frozenset((domain,)),
                    relevance=relevance(0.3),
                    hints_assurance_argument=reason < 0.15,
                    evidence_item_only=reason < 0.40,
                    formal_other_sense=0.40 <= reason < 0.55,
                    documents_claim_support=False,
                    symbolic_or_deductive_linkage=False,
                    record=None,
                ))
                noise_counter += 1

    return Corpus(papers)
