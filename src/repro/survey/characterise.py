"""Per-paper characterisation reports (the §III research questions).

§III.A lists the survey's research questions: what is formalised and how
it is used (RQ1), whether the formalism replaces or augments informal
argument (RQ2), how it constrains structure (RQ3), what benefits are
claimed with what evidence (RQ4), and what drawbacks are mentioned
(RQ5).  §III.E–P answer them per proposal group.

This module renders those answers from the structured records — the
machine-readable version of the survey's §III prose — and computes the
summary judgments §VII rests on ('while several of the selected papers
claim or speculate on some benefit of formalism, none supplies
substantial empirical evidence').
"""

from __future__ import annotations

from dataclasses import dataclass

from .records import (
    FormalisationKind,
    PaperRecord,
    Relationship,
    SELECTED_PAPERS,
)

__all__ = [
    "GROUPS",
    "characterise",
    "group_report",
    "maturity_summary",
    "render_characterisation",
]

#: §III subsection letter -> proposal-family title.
GROUPS: dict[str, str] = {
    "E": "Basir, Denney, Fischer, Pai & Pohl: automatically-generated "
         "arguments",
    "F": "Bishop & Bloomfield: deterministic arguments",
    "G": "Brunel & Cazin: arguments in LTL",
    "H": "Denney, Naylor & Pai: annotated informal arguments",
    "I": "Denney, Pai & Whiteside: formally-specified syntax",
    "J": "Forder: a safety argument manager",
    "K": "Haley et al.: security requirements satisfaction arguments",
    "L": "Matsuno & Taguchi: formalised GSN patterns",
    "M": "Rushby: partial formalisation into proofs",
    "N": "Sokolsky, Lee & Heimdahl: first-order logic",
    "O": "Tolchinsky et al.: decision support",
    "P": "Tun et al.: policy checking",
}


@dataclass(frozen=True)
class Characterisation:
    """One paper's answers to the survey's research questions."""

    paper: PaperRecord
    rq1_formalises: str
    rq2_relationship: str
    rq4_claims_benefit: bool
    rq4_evidence: bool
    rq5_drawbacks: bool


def characterise(paper: PaperRecord) -> Characterisation:
    """Answer the research questions for one record."""
    formalises = {
        FormalisationKind.SYNTAX: "the argument's syntax",
        FormalisationKind.CONTENT:
            "claim content, in symbolic/deductive logic",
        FormalisationKind.ANNOTATION:
            "metadata annotations on informal content",
        FormalisationKind.SYNTAX_AND_PARAMETERS:
            "pattern syntax plus typed parameters",
    }[paper.formalises]
    relationship = {
        Relationship.REPLACES: "replaces informal argumentation",
        Relationship.AUGMENTS: "augments the informal argument",
        Relationship.GENERATED_FROM_PROOF:
            "is generated from a machine proof",
        Relationship.UNCLEAR: "unclear from the paper",
    }[paper.relationship]
    return Characterisation(
        paper=paper,
        rq1_formalises=formalises,
        rq2_relationship=relationship,
        rq4_claims_benefit=paper.claims_benefit,
        rq4_evidence=paper.provides_substantial_evidence,
        rq5_drawbacks=paper.mentions_drawbacks,
    )


def group_report(group: str) -> list[Characterisation]:
    """All characterisations in one §III group (by subsection letter)."""
    if group not in GROUPS:
        raise KeyError(f"unknown group {group!r}; expected one of "
                       f"{sorted(GROUPS)}")
    return [
        characterise(paper)
        for paper in SELECTED_PAPERS
        if paper.group == group
    ]


@dataclass(frozen=True)
class MaturitySummary:
    """The §VII maturity verdict, computed."""

    total: int
    claiming_benefit: int
    with_substantial_evidence: int
    mentioning_drawbacks: int

    @property
    def conclusion_holds(self) -> bool:
        """'None supplies substantial empirical evidence' (§VII)."""
        return self.with_substantial_evidence == 0


def maturity_summary() -> MaturitySummary:
    """Compute the §VII verdict over all selected papers."""
    return MaturitySummary(
        total=len(SELECTED_PAPERS),
        claiming_benefit=sum(
            1 for p in SELECTED_PAPERS if p.claims_benefit
        ),
        with_substantial_evidence=sum(
            1 for p in SELECTED_PAPERS
            if p.provides_substantial_evidence
        ),
        mentioning_drawbacks=sum(
            1 for p in SELECTED_PAPERS if p.mentions_drawbacks
        ),
    )


def render_characterisation() -> str:
    """The whole §III survey-findings section as a text report."""
    lines: list[str] = ["SURVEY FINDINGS (per §III research questions)",
                        ""]
    for group, title in GROUPS.items():
        members = group_report(group)
        if not members:
            continue
        lines.append(f"--- {group}. {title}")
        for entry in members:
            paper = entry.paper
            lines.append(
                f"  [{paper.reference}] {paper.authors} ({paper.year}), "
                f"{paper.venue}"
            )
            lines.append(f"      formalises: {entry.rq1_formalises}")
            lines.append(
                f"      relationship: {entry.rq2_relationship}"
            )
            lines.append(
                f"      claims benefit: {entry.rq4_claims_benefit}; "
                f"substantial evidence: {entry.rq4_evidence}; "
                f"mentions drawbacks: {entry.rq5_drawbacks}"
            )
            if paper.notes:
                lines.append(f"      note: {paper.notes}")
        lines.append("")
    summary = maturity_summary()
    lines.append(
        f"Of {summary.total} papers: {summary.claiming_benefit} claim "
        f"some benefit, {summary.with_substantial_evidence} supply "
        f"substantial evidence, {summary.mentioning_drawbacks} mention "
        "drawbacks."
    )
    lines.append(
        "The §VII verdict "
        + ("holds" if summary.conclusion_holds else "FAILS")
        + ": no proposal is mature by the paper's definition."
    )
    return "\n".join(lines) + "\n"
