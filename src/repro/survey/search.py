"""Digital-library search simulation.

§III.B: two query strings — 'formal safety argument' and 'formal security
argument' — against four libraries, English only, no date limits, and
'where electronic searches returned many results ... we restricted our
attention to the first sixty'.  :class:`DigitalLibrary` reproduces that
interface: ranked results, a claimed total (Springer's 40,283 makes the
cut-off vivid), and the first-60 truncation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .corpus import CLAIMED_TOTALS, Corpus, CorpusPaper, LIBRARIES
from .records import Domain

__all__ = ["QUERIES", "SearchResult", "DigitalLibrary", "run_searches"]

#: The two survey queries, keyed by domain.
QUERIES: dict[Domain, str] = {
    Domain.SAFETY: "formal safety argument",
    Domain.SECURITY: "formal security argument",
}

FIRST_N = 60


@dataclass(frozen=True)
class SearchResult:
    """One library's response to one query."""

    library: str
    domain: Domain
    query: str
    claimed_total: int
    examined: tuple[CorpusPaper, ...]  # the first-60 window

    def __len__(self) -> int:
        return len(self.examined)


class DigitalLibrary:
    """One searchable library over the corpus."""

    def __init__(self, name: str, corpus: Corpus) -> None:
        if name not in LIBRARIES:
            raise ValueError(f"unknown library {name!r}")
        self.name = name
        self._holdings = corpus.in_library(name)

    def search(self, domain: Domain, first_n: int = FIRST_N) -> SearchResult:
        """Ranked results for one query, truncated to the first ``first_n``.

        Ranking is by stored relevance, descending, with the paper key as
        a deterministic tiebreak.
        """
        matching = [
            paper for paper in self._holdings if domain in paper.matches
        ]
        ranked = sorted(
            matching, key=lambda p: (-p.relevance, p.key)
        )
        claimed = CLAIMED_TOTALS.get(
            (self.name, domain.value), len(ranked)
        )
        return SearchResult(
            library=self.name,
            domain=domain,
            query=QUERIES[domain],
            claimed_total=max(claimed, len(ranked)),
            examined=tuple(ranked[:first_n]),
        )


def run_searches(
    corpus: Corpus, first_n: int = FIRST_N
) -> list[SearchResult]:
    """All eight library x query searches, in library order."""
    results: list[SearchResult] = []
    for name in LIBRARIES:
        library = DigitalLibrary(name, corpus)
        for domain in (Domain.SAFETY, Domain.SECURITY):
            results.append(library.search(domain, first_n=first_n))
    return results
