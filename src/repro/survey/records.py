"""The survey's data: selected papers, characterisations, Table I.

This module encodes §III of the paper as structured data:

* :data:`SELECTED_PAPERS` — the twenty selected proposals with their
  §III characterisation (the four research questions of §III.A);
* :data:`TABLE_I` — the phase-one selection counts per digital library
  and domain, exactly as published;
* the derived in-text counts of §IV/§V (six papers claiming mechanical-
  validation confidence, eleven formalising content, four syntax, ...),
  via the ``papers_*`` query helpers.

A note on the selected set.  The paper states 'Phase two yielded twenty
selected papers [6]-[25]', but its own in-text count lists cite reference
[39] (Sokolsky et al.) — which §III.N characterises like any other
selected proposal — while reference [21] (Rushby's AAA workshop paper) is
never characterised or counted anywhere.  We therefore take the operative
selected set to be the twenty papers the survey actually characterises
and counts: [6]-[20], [22]-[25], and [39].  With that set, every in-text
count in §IV and §V.B reproduces exactly (see
``benchmarks/bench_survey_counts.py``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Mapping

__all__ = [
    "Domain",
    "FormalisationKind",
    "Relationship",
    "PaperRecord",
    "SELECTED_PAPERS",
    "TABLE_I",
    "TABLE_I_UNIQUE",
    "papers_claiming_mechanical_confidence",
    "papers_formalising_syntax",
    "papers_formalising_content",
    "papers_mentioning_mechanical_verification",
    "papers_informal_first",
    "papers_formalising_pattern_structure",
    "papers_formalising_pattern_parameters",
]


class Domain(enum.Enum):
    """Which search domain a paper belongs to."""

    SAFETY = "safety"
    SECURITY = "security"


class FormalisationKind(enum.Enum):
    """What the proposal formalises (§II.B's three senses, operationalised)."""

    SYNTAX = "syntax"              # formally specified argument syntax
    CONTENT = "content"            # symbolic/deductive claim content
    ANNOTATION = "annotation"      # metadata attached to informal content
    SYNTAX_AND_PARAMETERS = "syntax_and_parameters"  # patterns + typed params


class Relationship(enum.Enum):
    """RQ2: does the formalism replace or augment the informal argument?"""

    REPLACES = "replaces"
    AUGMENTS = "augments"
    GENERATED_FROM_PROOF = "generated_from_proof"
    UNCLEAR = "unclear"


@dataclass(frozen=True)
class PaperRecord:
    """One selected paper with its §III characterisation.

    The boolean fields encode the paper's answers to the survey's research
    questions; ``group`` is the §III subsection that characterises it.
    """

    key: str
    reference: int                     # the survey's reference number
    authors: str
    year: int
    title: str
    venue: str
    domain: Domain
    group: str                         # §III subsection letter
    formalises: FormalisationKind
    relationship: Relationship
    claims_mechanical_confidence: bool  # counted in §IV's 'six of twenty'
    formalises_content: bool            # counted in §V.B's eleven
    mentions_mechanical_verification: bool  # §V.B's four
    informal_first: bool                # §VI.B's three
    pattern_structure: bool             # §VI.D's three
    pattern_parameters: bool            # §VI.D's two
    claims_benefit: bool
    provides_substantial_evidence: bool
    mentions_drawbacks: bool
    notes: str = ""


def _paper(**kwargs: object) -> PaperRecord:
    return PaperRecord(**kwargs)  # type: ignore[arg-type]


SELECTED_PAPERS: tuple[PaperRecord, ...] = (
    _paper(
        key="basir2009", reference=6,
        authors="Basir, Denney & Fischer", year=2009,
        title="Deriving safety cases from automatically constructed proofs",
        venue="IET Int'l Conf. on Systems Safety",
        domain=Domain.SAFETY, group="E",
        formalises=FormalisationKind.CONTENT,
        relationship=Relationship.GENERATED_FROM_PROOF,
        claims_mechanical_confidence=False, formalises_content=False,
        mentions_mechanical_verification=False, informal_first=False,
        pattern_structure=False, pattern_parameters=False,
        claims_benefit=True, provides_substantial_evidence=False,
        mentions_drawbacks=True,
        notes="generated arguments make proofs more readable; conversion "
              "'far from satisfactory ... too many details'",
    ),
    _paper(
        key="basir2010", reference=7,
        authors="Basir, Denney & Fischer", year=2010,
        title="Deriving safety cases for hierarchical structure in "
              "model-based development",
        venue="SAFECOMP",
        domain=Domain.SAFETY, group="E",
        formalises=FormalisationKind.CONTENT,
        relationship=Relationship.GENERATED_FROM_PROOF,
        claims_mechanical_confidence=False, formalises_content=False,
        mentions_mechanical_verification=False, informal_first=False,
        pattern_structure=False, pattern_parameters=False,
        claims_benefit=True, provides_substantial_evidence=False,
        mentions_drawbacks=False,
        notes="goals like 'Formal proof that Quat4::quat(NED, Body) holds "
              "for Fc.cpp' are not propositions as GSN requires",
    ),
    _paper(
        key="bishop1995", reference=8,
        authors="Bishop & Bloomfield", year=1995,
        title="The SHIP safety case approach",
        venue="SAFECOMP",
        domain=Domain.SAFETY, group="F",
        formalises=FormalisationKind.CONTENT,
        relationship=Relationship.REPLACES,
        claims_mechanical_confidence=False, formalises_content=True,
        mentions_mechanical_verification=False, informal_first=False,
        pattern_structure=False, pattern_parameters=False,
        claims_benefit=False, provides_substantial_evidence=False,
        mentions_drawbacks=False,
        notes="deterministic arguments: evidence as axioms, predicate "
              "logic rules, the safety argument as a proof (Gentzen)",
    ),
    _paper(
        key="brunel2012", reference=9,
        authors="Brunel & Cazin", year=2012,
        title="Formal verification of a safety argumentation and "
              "application to a complex UAV system",
        venue="DESEC4LCCI",
        domain=Domain.SAFETY, group="G",
        formalises=FormalisationKind.CONTENT,
        relationship=Relationship.REPLACES,
        claims_mechanical_confidence=True, formalises_content=True,
        mentions_mechanical_verification=True, informal_first=True,
        pattern_structure=False, pattern_parameters=False,
        claims_benefit=True, provides_substantial_evidence=False,
        mentions_drawbacks=True,
        notes="LTL semantics; notes the objective is to convince a "
              "certification authority, not a temporal-logic specialist",
    ),
    _paper(
        key="denney2012", reference=10,
        authors="Denney, Pai & Pohl", year=2012,
        title="Heterogeneous aviation safety cases: Integrating the "
              "formal and the non-formal",
        venue="ICECCS",
        domain=Domain.SAFETY, group="E",
        formalises=FormalisationKind.CONTENT,
        relationship=Relationship.GENERATED_FROM_PROOF,
        claims_mechanical_confidence=False, formalises_content=False,
        mentions_mechanical_verification=False, informal_first=False,
        pattern_structure=False, pattern_parameters=False,
        claims_benefit=True, provides_substantial_evidence=False,
        mentions_drawbacks=False,
        notes="scope narrowed to proof that code refines a formal spec; "
              "asserts manual arguments 'quickly become unmanageable' "
              "without evidence",
    ),
    _paper(
        key="denney_pai2013", reference=11,
        authors="Denney & Pai", year=2013,
        title="A formal basis for safety case patterns",
        venue="SAFECOMP",
        domain=Domain.SAFETY, group="I",
        formalises=FormalisationKind.SYNTAX,
        relationship=Relationship.AUGMENTS,
        claims_mechanical_confidence=True, formalises_content=False,
        mentions_mechanical_verification=False, informal_first=False,
        pattern_structure=True, pattern_parameters=False,
        claims_benefit=True, provides_substantial_evidence=False,
        mentions_drawbacks=False,
        notes="formal syntax tuple <N, l, t, ->>; their goal-to-goal rule "
              "contradicts the GSN standard",
    ),
    _paper(
        key="denney_whiteside2013", reference=12,
        authors="Denney, Pai & Whiteside", year=2013,
        title="Hierarchical safety cases",
        venue="NASA Formal Methods Symp.",
        domain=Domain.SAFETY, group="I",
        formalises=FormalisationKind.SYNTAX,
        relationship=Relationship.AUGMENTS,
        claims_mechanical_confidence=False, formalises_content=False,
        mentions_mechanical_verification=False, informal_first=False,
        pattern_structure=False, pattern_parameters=False,
        claims_benefit=True, provides_substantial_evidence=False,
        mentions_drawbacks=False,
        notes="hicases: fold/unfold views; formal syntax credited only "
              "with enabling the tooling",
    ),
    _paper(
        key="denney_naylor2014", reference=13,
        authors="Denney, Naylor & Pai", year=2014,
        title="Querying safety cases",
        venue="SAFECOMP",
        domain=Domain.SAFETY, group="H",
        formalises=FormalisationKind.ANNOTATION,
        relationship=Relationship.AUGMENTS,
        claims_mechanical_confidence=False, formalises_content=False,
        mentions_mechanical_verification=False, informal_first=False,
        pattern_structure=False, pattern_parameters=False,
        claims_benefit=True, provides_substantial_evidence=False,
        mentions_drawbacks=True,
        notes="metadata grammar attribute ::= attributeName param*; "
              "mentions ontology cost; never compares against text search",
    ),
    _paper(
        key="forder1992", reference=14,
        authors="Forder", year=1992,
        title="A safety argument manager",
        venue="IEE Colloq. on Software in Air Traffic Control Systems",
        domain=Domain.SAFETY, group="J",
        formalises=FormalisationKind.CONTENT,
        relationship=Relationship.UNCLEAR,
        claims_mechanical_confidence=False, formalises_content=True,
        mentions_mechanical_verification=False, informal_first=False,
        pattern_structure=False, pattern_parameters=False,
        claims_benefit=False, provides_substantial_evidence=False,
        mentions_drawbacks=False,
        notes="earliest proposal surveyed; 'formal statements ... will "
              "allow automatic detection of inconsistencies'",
    ),
    _paper(
        key="haley2006", reference=15,
        authors="Haley, Moffett, Laney & Nuseibeh", year=2006,
        title="A framework for security requirements engineering",
        venue="SESS",
        domain=Domain.SECURITY, group="K",
        formalises=FormalisationKind.CONTENT,
        relationship=Relationship.REPLACES,
        claims_mechanical_confidence=False, formalises_content=True,
        mentions_mechanical_verification=False, informal_first=False,
        pattern_structure=False, pattern_parameters=False,
        claims_benefit=False, provides_substantial_evidence=False,
        mentions_drawbacks=False,
        notes="outer formal / inner informal satisfaction arguments "
              "introduced",
    ),
    _paper(
        key="haley2008", reference=16,
        authors="Haley, Laney, Moffett & Nuseibeh", year=2008,
        title="Security requirements engineering: A framework for "
              "representation and analysis",
        venue="IEEE TSE",
        domain=Domain.SECURITY, group="K",
        formalises=FormalisationKind.CONTENT,
        relationship=Relationship.REPLACES,
        claims_mechanical_confidence=True, formalises_content=True,
        mentions_mechanical_verification=False, informal_first=False,
        pattern_structure=False, pattern_parameters=False,
        claims_benefit=True, provides_substantial_evidence=False,
        mentions_drawbacks=True,
        notes="the 11-step natural-deduction outer argument; industrial "
              "partners wanted to skip straight to the inner arguments",
    ),
    _paper(
        key="matsuno2011", reference=17,
        authors="Matsuno & Taguchi", year=2011,
        title="Parameterised argument structure in GSN patterns",
        venue="Int'l Conf. on Quality Software",
        domain=Domain.SAFETY, group="L",
        formalises=FormalisationKind.SYNTAX_AND_PARAMETERS,
        relationship=Relationship.AUGMENTS,
        claims_mechanical_confidence=True, formalises_content=False,
        mentions_mechanical_verification=False, informal_first=False,
        pattern_structure=True, pattern_parameters=True,
        claims_benefit=True, provides_substantial_evidence=False,
        mentions_drawbacks=False,
        notes="[2/x, /y, \"hello\"/z] instantiation annotations; 0-100% "
              "CPU utilisation range restriction example",
    ),
    _paper(
        key="matsuno2014", reference=18,
        authors="Matsuno", year=2014,
        title="A design and implementation of an assurance case language",
        venue="DSN",
        domain=Domain.SAFETY, group="L",
        formalises=FormalisationKind.SYNTAX_AND_PARAMETERS,
        relationship=Relationship.AUGMENTS,
        claims_mechanical_confidence=True, formalises_content=False,
        mentions_mechanical_verification=False, informal_first=False,
        pattern_structure=True, pattern_parameters=True,
        claims_benefit=True, provides_substantial_evidence=False,
        mentions_drawbacks=False,
        notes="claims 'semantics' but defines only syntax; 'Railway "
              "hazards' for 'System X' type-checking example",
    ),
    _paper(
        key="rushby2010", reference=19,
        authors="Rushby", year=2010,
        title="Formalism in safety cases",
        venue="Safety-Critical Systems Symposium",
        domain=Domain.SAFETY, group="M",
        formalises=FormalisationKind.CONTENT,
        relationship=Relationship.AUGMENTS,
        claims_mechanical_confidence=False, formalises_content=True,
        mentions_mechanical_verification=True, informal_first=True,
        pattern_structure=False, pattern_parameters=False,
        claims_benefit=True, provides_substantial_evidence=False,
        mentions_drawbacks=True,
        notes="partial formalisation; candidly notes benefit 'depends on "
              "whether unsoundness is a significant hazard to real safety "
              "cases' and calls for experiments",
    ),
    _paper(
        key="rushby2013", reference=20,
        authors="Rushby", year=2013,
        title="Logic and epistemology in safety cases",
        venue="SAFECOMP",
        domain=Domain.SAFETY, group="M",
        formalises=FormalisationKind.CONTENT,
        relationship=Relationship.AUGMENTS,
        claims_mechanical_confidence=False, formalises_content=True,
        mentions_mechanical_verification=True, informal_first=False,
        pattern_structure=False, pattern_parameters=False,
        claims_benefit=True, provides_substantial_evidence=False,
        mentions_drawbacks=True,
        notes="evaluation 'can - and should - largely be reduced to "
              "calculation'; what-if probing; 'try this out and see if "
              "it works'",
    ),
    _paper(
        key="tun2012", reference=22,
        authors="Tun, Bandara, Price, Yu, Haley, Omoronyia & Nuseibeh",
        year=2012,
        title="Privacy arguments: Analysing selective disclosure "
              "requirements for mobile applications",
        venue="IEEE RE",
        domain=Domain.SECURITY, group="P",
        formalises=FormalisationKind.CONTENT,
        relationship=Relationship.REPLACES,
        claims_mechanical_confidence=False, formalises_content=True,
        mentions_mechanical_verification=True, informal_first=True,
        pattern_structure=False, pattern_parameters=False,
        claims_benefit=True, provides_substantial_evidence=False,
        mentions_drawbacks=False,
        notes="Event Calculus privacy arguments; availability, denial, "
              "explanation checks",
    ),
    _paper(
        key="tolchinsky2012", reference=23,
        authors="Tolchinsky, Modgil, Atkinson, McBurney & Cortes",
        year=2012,
        title="Deliberation dialogues for reasoning about safety "
              "critical actions",
        venue="Autonomous Agents and Multi-Agent Systems",
        domain=Domain.SAFETY, group="O",
        formalises=FormalisationKind.CONTENT,
        relationship=Relationship.UNCLEAR,
        claims_mechanical_confidence=False, formalises_content=False,
        mentions_mechanical_verification=False, informal_first=False,
        pattern_structure=False, pattern_parameters=False,
        claims_benefit=False, provides_substantial_evidence=False,
        mentions_drawbacks=True,
        notes="non-monotonic logic for on-line safety-critical decision "
              "support; not related to traditional safety arguments",
    ),
    _paper(
        key="tun2010", reference=24,
        authors="Tun, Yu, Haley & Nuseibeh", year=2010,
        title="Model-based argument analysis for evolving security "
              "requirements",
        venue="SSIRI",
        domain=Domain.SECURITY, group="K",
        formalises=FormalisationKind.CONTENT,
        relationship=Relationship.REPLACES,
        claims_mechanical_confidence=False, formalises_content=True,
        mentions_mechanical_verification=False, informal_first=False,
        pattern_structure=False, pattern_parameters=False,
        claims_benefit=False, provides_substantial_evidence=False,
        mentions_drawbacks=False,
        notes="extends the Haley framework with more examples",
    ),
    _paper(
        key="yu2011", reference=25,
        authors="Yu, Tun, Tedeschi, Franqueira & Nuseibeh", year=2011,
        title="OpenArgue: Supporting argumentation to evolve secure "
              "software systems",
        venue="IEEE RE",
        domain=Domain.SECURITY, group="K",
        formalises=FormalisationKind.CONTENT,
        relationship=Relationship.REPLACES,
        claims_mechanical_confidence=False, formalises_content=True,
        mentions_mechanical_verification=False, informal_first=False,
        pattern_structure=False, pattern_parameters=False,
        claims_benefit=True, provides_substantial_evidence=False,
        mentions_drawbacks=False,
        notes="tool paper; 'helpful to domain experts' claim rests on an "
              "unassessable case study",
    ),
    _paper(
        key="sokolsky2011", reference=39,
        authors="Sokolsky, Lee & Heimdahl", year=2011,
        title="Challenges in the regulatory approval of medical "
              "cyber-physical systems",
        venue="EMSOFT",
        domain=Domain.SAFETY, group="N",
        formalises=FormalisationKind.CONTENT,
        relationship=Relationship.UNCLEAR,
        claims_mechanical_confidence=True, formalises_content=True,
        mentions_mechanical_verification=False, informal_first=False,
        pattern_structure=False, pattern_parameters=False,
        claims_benefit=True, provides_substantial_evidence=False,
        mentions_drawbacks=False,
        notes="multi-sorted FOL exploration; cites Greenwell for 'logical "
              "fallacies are common' — but those fallacies are informal",
    ),
)


#: Table I exactly as published: phase-one selections per library/domain.
TABLE_I: Mapping[str, Mapping[str, int]] = {
    "IEEE Xplore": {"safety": 12, "security": 13},
    "ACM Digital Library": {"safety": 17, "security": 7},
    "Springer Link": {"safety": 24, "security": 2},
    "Google Scholar": {"safety": 8, "security": 1},
}

#: The unique-results row: 72 total; 54 safety, 23 security (the overlap
#: of 5 papers matched both queries: 54 + 23 - 72 = 5).
TABLE_I_UNIQUE: Mapping[str, int] = {
    "total": 72,
    "safety": 54,
    "security": 23,
}


def papers_claiming_mechanical_confidence() -> list[PaperRecord]:
    """§IV: the six papers claiming mechanical validation adds confidence."""
    return [p for p in SELECTED_PAPERS if p.claims_mechanical_confidence]


def papers_formalising_syntax() -> list[PaperRecord]:
    """§V.A: the four papers formalising graphical-argument syntax."""
    return [
        p for p in SELECTED_PAPERS
        if p.formalises in (
            FormalisationKind.SYNTAX,
            FormalisationKind.SYNTAX_AND_PARAMETERS,
        )
    ]


def papers_formalising_content() -> list[PaperRecord]:
    """§V.B: the eleven papers formalising content into deductive logic."""
    return [p for p in SELECTED_PAPERS if p.formalises_content]


def papers_mentioning_mechanical_verification() -> list[PaperRecord]:
    """§V.B: the four explicitly mentioning mechanical verification."""
    return [
        p for p in SELECTED_PAPERS if p.mentions_mechanical_verification
    ]


def papers_informal_first() -> list[PaperRecord]:
    """§VI.B: the three proposing informal construction then formalisation."""
    return [p for p in SELECTED_PAPERS if p.informal_first]


def papers_formalising_pattern_structure() -> list[PaperRecord]:
    """§VI.D: the three formalising argument pattern structure."""
    return [p for p in SELECTED_PAPERS if p.pattern_structure]


def papers_formalising_pattern_parameters() -> list[PaperRecord]:
    """§VI.D: the two also formalising pattern parameters."""
    return [p for p in SELECTED_PAPERS if p.pattern_parameters]
