"""Robinson unification for first-order terms.

Used by the resolution prover and the mini-Prolog engine.  The occurs check
is on by default (sound unification); the Prolog engine may disable it for
speed, which matches real Prolog behaviour and is irrelevant for the
function-symbol-free programs the paper's Figure 1 uses.
"""

from __future__ import annotations

from typing import Sequence

from .terms import (
    Atom,
    Const,
    Func,
    Substitution,
    Term,
    Var,
    variables_of,
)

__all__ = ["unify", "unify_atoms", "unify_sequences", "UnificationError"]


class UnificationError(Exception):
    """Raised internally when two terms cannot be unified."""


def unify(
    left: Term,
    right: Term,
    substitution: Substitution | None = None,
    occurs_check: bool = True,
) -> Substitution | None:
    """Return a most-general unifier of ``left`` and ``right``, or None.

    The returned substitution extends ``substitution`` (if given).  The MGU
    property — any other unifier factors through the returned one — is
    exercised by property-based tests.
    """
    subst = substitution if substitution is not None else Substitution()
    try:
        return _unify(subst.apply(left), subst.apply(right), subst,
                      occurs_check)
    except UnificationError:
        return None


def _unify(
    left: Term, right: Term, subst: Substitution, occurs_check: bool
) -> Substitution:
    left = subst.apply(left)
    right = subst.apply(right)
    if left == right:
        return subst
    if isinstance(left, Var):
        return _bind(left, right, subst, occurs_check)
    if isinstance(right, Var):
        return _bind(right, left, subst, occurs_check)
    if isinstance(left, Const) or isinstance(right, Const):
        # Distinct constants, or constant vs compound: clash.
        raise UnificationError(f"clash: {left} vs {right}")
    if left.functor != right.functor or len(left.args) != len(right.args):
        raise UnificationError(f"clash: {left} vs {right}")
    for arg_left, arg_right in zip(left.args, right.args):
        subst = _unify(arg_left, arg_right, subst, occurs_check)
    return subst


def _bind(
    var: Var, term: Term, subst: Substitution, occurs_check: bool
) -> Substitution:
    if occurs_check and var in variables_of(term):
        raise UnificationError(f"occurs check: {var} in {term}")
    return subst.bind(var, term)


def unify_atoms(
    left: Atom,
    right: Atom,
    substitution: Substitution | None = None,
    occurs_check: bool = True,
) -> Substitution | None:
    """Unify two atomic formulas (same predicate and arity required)."""
    if left.predicate != right.predicate or left.arity != right.arity:
        return None
    subst = substitution if substitution is not None else Substitution()
    try:
        for arg_left, arg_right in zip(left.args, right.args):
            subst = _unify(arg_left, arg_right, subst, occurs_check)
    except UnificationError:
        return None
    return subst


def unify_sequences(
    lefts: Sequence[Term],
    rights: Sequence[Term],
    substitution: Substitution | None = None,
    occurs_check: bool = True,
) -> Substitution | None:
    """Unify two equal-length term sequences pointwise."""
    if len(lefts) != len(rights):
        return None
    subst = substitution if substitution is not None else Substitution()
    try:
        for left, right in zip(lefts, rights):
            subst = _unify(left, right, subst, occurs_check)
    except UnificationError:
        return None
    return subst
