"""A DPLL SAT solver over CNF clause sets.

This provides the mechanical argument-validation service that several
surveyed proposals assume exists (Rushby [19][20], Brunel & Cazin [9],
Forder [14]): given a formalised argument, decide satisfiability,
entailment, and consistency.  The solver implements classic DPLL with unit
propagation and pure-literal elimination — ample for argument-sized
problems, and simple enough to audit, which matters in an assurance
context.

Clause representation matches :func:`repro.logic.propositional.cnf_clauses`:
a clause is a frozenset of ``(atom_name, polarity)`` literals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Mapping

from .propositional import Clause, Formula, Literal, cnf_clauses

__all__ = ["SatResult", "DpllSolver", "solve", "solve_formula"]


@dataclass(frozen=True)
class SatResult:
    """Outcome of a SAT query.

    ``satisfiable`` is the verdict; when True, ``assignment`` maps atom names
    to booleans for one satisfying model (atoms not mentioned may be absent
    and can take either value).  ``decisions`` and ``propagations`` expose
    search-effort counters used by the benchmarks.
    """

    satisfiable: bool
    assignment: Mapping[str, bool] | None
    decisions: int
    propagations: int

    def __bool__(self) -> bool:
        return self.satisfiable


class DpllSolver:
    """Davis–Putnam–Logemann–Loveland search with standard optimisations."""

    def __init__(self, clauses: Iterable[Clause]) -> None:
        self.clauses: list[Clause] = [frozenset(c) for c in clauses]
        self.decisions = 0
        self.propagations = 0

    def solve(self) -> SatResult:
        """Run the search and return a :class:`SatResult`."""
        self.decisions = 0
        self.propagations = 0
        model = self._search(self.clauses, {})
        return SatResult(
            satisfiable=model is not None,
            assignment=dict(model) if model is not None else None,
            decisions=self.decisions,
            propagations=self.propagations,
        )

    def _search(
        self, clauses: list[Clause], assignment: dict[str, bool]
    ) -> dict[str, bool] | None:
        clauses, assignment, conflict = self._propagate(clauses, assignment)
        if conflict:
            return None
        clauses, assignment = self._pure_literals(clauses, assignment)
        if not clauses:
            return assignment
        if any(not clause for clause in clauses):
            return None
        variable = self._choose_variable(clauses)
        self.decisions += 1
        for value in (True, False):
            trial = dict(assignment)
            trial[variable] = value
            reduced = _apply_assignment(clauses, variable, value)
            result = self._search(reduced, trial)
            if result is not None:
                return result
        return None

    def _propagate(
        self, clauses: list[Clause], assignment: dict[str, bool]
    ) -> tuple[list[Clause], dict[str, bool], bool]:
        assignment = dict(assignment)
        while True:
            unit: Literal | None = None
            for clause in clauses:
                if len(clause) == 1:
                    unit = next(iter(clause))
                    break
            if unit is None:
                return clauses, assignment, False
            name, polarity = unit
            if assignment.get(name, polarity) != polarity:
                return clauses, assignment, True
            assignment[name] = polarity
            self.propagations += 1
            clauses = _apply_assignment(clauses, name, polarity)
            if any(not clause for clause in clauses):
                return clauses, assignment, True

    def _pure_literals(
        self, clauses: list[Clause], assignment: dict[str, bool]
    ) -> tuple[list[Clause], dict[str, bool]]:
        polarity_seen: dict[str, set[bool]] = {}
        for clause in clauses:
            for name, polarity in clause:
                polarity_seen.setdefault(name, set()).add(polarity)
        assignment = dict(assignment)
        pure = {
            name: next(iter(polarities))
            for name, polarities in polarity_seen.items()
            if len(polarities) == 1
        }
        for name, polarity in pure.items():
            assignment[name] = polarity
            clauses = _apply_assignment(clauses, name, polarity)
        return clauses, assignment

    @staticmethod
    def _choose_variable(clauses: list[Clause]) -> str:
        # Most-frequent variable heuristic: cheap and effective at this scale.
        counts: dict[str, int] = {}
        for clause in clauses:
            for name, _ in clause:
                counts[name] = counts.get(name, 0) + 1
        return max(sorted(counts), key=lambda name: counts[name])


def _apply_assignment(
    clauses: list[Clause], name: str, value: bool
) -> list[Clause]:
    out: list[Clause] = []
    for clause in clauses:
        if (name, value) in clause:
            continue  # clause satisfied
        if (name, not value) in clause:
            out.append(clause - {(name, not value)})
        else:
            out.append(clause)
    return out


def solve(clauses: Iterable[Clause]) -> SatResult:
    """Solve a clause set."""
    return DpllSolver(clauses).solve()


def solve_formula(formula: Formula) -> SatResult:
    """Convert a formula to CNF and solve it."""
    return solve(cnf_clauses(formula))
