"""A Gentzen-style propositional sequent calculus (LK) prover.

Bishop & Bloomfield's 'deterministic argument' proposal references Gentzen
directly: evidence as axioms, predicate-logic inference rules, and 'the
safety argument is a proof using those rules' (§III.F).  This module
implements the propositional core of that idea: a backward-chaining LK
prover that returns the full derivation tree, which the deterministic-
argument layer renders as an assurance-argument fragment.

A sequent Γ ⊢ Δ is valid when the conjunction of Γ entails the disjunction
of Δ.  The prover applies invertible rules exhaustively, so it is a
decision procedure for propositional validity (used as a cross-check
against the truth-table and SAT backends in tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .propositional import (
    And,
    Atom,
    Falsum,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Verum,
)

__all__ = ["Sequent", "Derivation", "prove_sequent", "is_valid_sequent"]


@dataclass(frozen=True)
class Sequent:
    """Antecedents ⊢ succedents, as ordered tuples."""

    antecedents: tuple[Formula, ...]
    succedents: tuple[Formula, ...]

    def __str__(self) -> str:
        left = ", ".join(str(f) for f in self.antecedents)
        right = ", ".join(str(f) for f in self.succedents)
        return f"{left} |- {right}"


@dataclass(frozen=True)
class Derivation:
    """A derivation tree node: the sequent, the rule applied, and subtrees.

    Leaves are axioms (rule ``'axiom'``) or failures (rule ``'open'``).
    ``closed`` is True when every leaf is an axiom, i.e. the sequent is
    proved.
    """

    sequent: Sequent
    rule: str
    children: tuple["Derivation", ...] = ()

    @property
    def closed(self) -> bool:
        if self.rule == "axiom":
            return True
        if self.rule == "open":
            return False
        return all(child.closed for child in self.children)

    def size(self) -> int:
        """Number of nodes in the derivation tree."""
        return 1 + sum(child.size() for child in self.children)

    def depth(self) -> int:
        """Height of the derivation tree."""
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def render(self, indent: int = 0) -> str:
        """Indented textual rendering of the tree, root first."""
        pad = "  " * indent
        lines = [f"{pad}[{self.rule}] {self.sequent}"]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)


def prove_sequent(sequent: Sequent) -> Derivation:
    """Build a (possibly open) derivation for the sequent."""
    return _prove(sequent)


def _prove(sequent: Sequent) -> Derivation:
    ante, succ = sequent.antecedents, sequent.succedents

    # Axiom: an atom on both sides, or truth-constant short circuits.
    shared = set(ante) & set(succ)
    if any(isinstance(f, Atom) for f in shared) or shared:
        return Derivation(sequent, "axiom")
    if any(isinstance(f, Falsum) for f in ante):
        return Derivation(sequent, "axiom")
    if any(isinstance(f, Verum) for f in succ):
        return Derivation(sequent, "axiom")

    # Left rules.
    for index, formula in enumerate(ante):
        rest = ante[:index] + ante[index + 1:]
        if isinstance(formula, Verum):
            return _unary(sequent, "T-left", Sequent(rest, succ))
        if isinstance(formula, Not):
            return _unary(
                sequent, "not-left",
                Sequent(rest, succ + (formula.operand,)),
            )
        if isinstance(formula, And):
            return _unary(
                sequent, "and-left",
                Sequent(rest + (formula.left, formula.right), succ),
            )
        if isinstance(formula, Or):
            return _binary(
                sequent, "or-left",
                Sequent(rest + (formula.left,), succ),
                Sequent(rest + (formula.right,), succ),
            )
        if isinstance(formula, Implies):
            return _binary(
                sequent, "implies-left",
                Sequent(rest, succ + (formula.antecedent,)),
                Sequent(rest + (formula.consequent,), succ),
            )
        if isinstance(formula, Iff):
            expanded = And(
                Implies(formula.left, formula.right),
                Implies(formula.right, formula.left),
            )
            return _unary(
                sequent, "iff-left", Sequent(rest + (expanded,), succ)
            )

    # Right rules.
    for index, formula in enumerate(succ):
        rest = succ[:index] + succ[index + 1:]
        if isinstance(formula, Falsum):
            return _unary(sequent, "F-right", Sequent(ante, rest))
        if isinstance(formula, Not):
            return _unary(
                sequent, "not-right",
                Sequent(ante + (formula.operand,), rest),
            )
        if isinstance(formula, Or):
            return _unary(
                sequent, "or-right",
                Sequent(ante, rest + (formula.left, formula.right)),
            )
        if isinstance(formula, Implies):
            return _unary(
                sequent, "implies-right",
                Sequent(
                    ante + (formula.antecedent,),
                    rest + (formula.consequent,),
                ),
            )
        if isinstance(formula, And):
            return _binary(
                sequent, "and-right",
                Sequent(ante, rest + (formula.left,)),
                Sequent(ante, rest + (formula.right,)),
            )
        if isinstance(formula, Iff):
            expanded = And(
                Implies(formula.left, formula.right),
                Implies(formula.right, formula.left),
            )
            return _unary(
                sequent, "iff-right", Sequent(ante, rest + (expanded,))
            )

    # Only atoms remain and none are shared: the branch is open.
    return Derivation(sequent, "open")


def _unary(sequent: Sequent, rule: str, child: Sequent) -> Derivation:
    return Derivation(sequent, rule, (_prove(child),))


def _binary(
    sequent: Sequent, rule: str, left: Sequent, right: Sequent
) -> Derivation:
    return Derivation(sequent, rule, (_prove(left), _prove(right)))


def is_valid_sequent(
    antecedents: Sequence[Formula], succedents: Sequence[Formula]
) -> bool:
    """Decision procedure: is Γ ⊢ Δ derivable in LK?"""
    derivation = prove_sequent(
        Sequent(tuple(antecedents), tuple(succedents))
    )
    return derivation.closed
