"""A discrete, simplified Event Calculus.

Tun et al. formalise privacy arguments into the Event Calculus so that
'requirement satisfaction can be reasoned about' (§III.P); their example
relates ``HoldsAt(SamePF(user, subject), time)``, ``Happens(Tap(...))`` and
subsequent ``Query``/``At`` events.  This module implements the linear
discrete Event Calculus fragment those arguments need:

* fluents initiated/terminated by events (``Initiates``/``Terminates``),
* inertia: a fluent holds at ``t`` if initiated earlier and not terminated
  in between (or initially true and never terminated),
* a narrative of timestamped event occurrences (``Happens``),
* ``HoldsAt`` queries and trigger rules (events caused by conditions).

The policy layer (:mod:`repro.formalise.policy`) uses it to check the three
privacy properties Tun et al. list: information availability, denial, and
explanation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

__all__ = [
    "Fluent",
    "Event",
    "Occurrence",
    "EffectAxiom",
    "TriggerRule",
    "Narrative",
    "EventCalculus",
]


@dataclass(frozen=True, slots=True)
class Fluent:
    """A time-varying property, e.g. ``Friends(alice, bob)``."""

    name: str
    args: tuple[str, ...] = ()

    def __str__(self) -> str:
        if not self.args:
            return self.name
        return f"{self.name}({', '.join(self.args)})"


@dataclass(frozen=True, slots=True)
class Event:
    """An instantaneous event type, e.g. ``Tap(alice, bob)``."""

    name: str
    args: tuple[str, ...] = ()

    def __str__(self) -> str:
        if not self.args:
            return self.name
        return f"{self.name}({', '.join(self.args)})"


@dataclass(frozen=True, slots=True)
class Occurrence:
    """``Happens(event, time)``."""

    event: Event
    time: int

    def __str__(self) -> str:
        return f"Happens({self.event}, {self.time})"


@dataclass(frozen=True)
class EffectAxiom:
    """``Initiates``/``Terminates``: this event flips this fluent.

    ``condition`` (optional) gates the effect on fluents holding at the
    moment the event happens, mirroring conditional effect axioms.
    """

    event: Event
    fluent: Fluent
    initiates: bool
    condition: tuple[Fluent, ...] = ()

    def __str__(self) -> str:
        verb = "Initiates" if self.initiates else "Terminates"
        base = f"{verb}({self.event}, {self.fluent})"
        if self.condition:
            guard = " & ".join(f"HoldsAt({f})" for f in self.condition)
            return f"{base} if {guard}"
        return base


@dataclass(frozen=True)
class TriggerRule:
    """A causal rule: when the guard fluents all hold at ``t`` and the
    trigger event happens at ``t``, the response event happens at
    ``t + delay``.

    This is how Tun et al.'s example works: a ``Tap`` while ``SamePF`` or
    ``Friends`` holds causes a ``Query`` at ``t+1`` and an ``At``
    disclosure at ``t+2``.
    """

    trigger: Event
    guard: tuple[Fluent, ...]
    response: Event
    delay: int = 1

    def __str__(self) -> str:
        guard = " & ".join(f"HoldsAt({f})" for f in self.guard) or "true"
        return (
            f"Happens({self.trigger}, t) & {guard} -> "
            f"Happens({self.response}, t+{self.delay})"
        )


@dataclass
class Narrative:
    """A set of event occurrences plus initially-true fluents."""

    occurrences: list[Occurrence] = field(default_factory=list)
    initially: set[Fluent] = field(default_factory=set)

    def happens(self, event: Event, time: int) -> None:
        """Record that ``event`` happens at ``time``."""
        if time < 0:
            raise ValueError("time must be non-negative")
        self.occurrences.append(Occurrence(event, time))

    def events_at(self, time: int) -> list[Event]:
        """All events recorded at the given instant."""
        return [o.event for o in self.occurrences if o.time == time]

    @property
    def horizon(self) -> int:
        """One past the last recorded event time (minimum 1)."""
        if not self.occurrences:
            return 1
        return max(o.time for o in self.occurrences) + 1


class EventCalculus:
    """The reasoner: effect axioms + trigger rules + a narrative.

    Reasoning proceeds by forward simulation to a time horizon: triggers
    may cause derived events, which may cause further triggers; fluent
    states evolve under inertia.  ``holds_at`` answers point queries;
    ``all_occurrences`` exposes the completed narrative (recorded plus
    derived events), which the policy checker inspects.
    """

    def __init__(
        self,
        axioms: Iterable[EffectAxiom] = (),
        triggers: Iterable[TriggerRule] = (),
    ) -> None:
        self.axioms: list[EffectAxiom] = list(axioms)
        self.triggers: list[TriggerRule] = list(triggers)

    def add_axiom(self, axiom: EffectAxiom) -> None:
        self.axioms.append(axiom)

    def add_trigger(self, rule: TriggerRule) -> None:
        self.triggers.append(rule)

    def run(
        self, narrative: Narrative, horizon: int | None = None
    ) -> "Timeline":
        """Simulate forward and return the full timeline.

        ``horizon`` defaults to the narrative horizon plus the largest
        trigger delay (so derived events are not cut off).
        """
        max_delay = max((t.delay for t in self.triggers), default=0)
        end = horizon if horizon is not None else (
            narrative.horizon + max_delay * (len(self.triggers) + 1)
        )
        states: list[frozenset[Fluent]] = []
        occurrences: dict[int, list[Event]] = {}
        for occurrence in narrative.occurrences:
            occurrences.setdefault(occurrence.time, []).append(
                occurrence.event
            )
        current = frozenset(narrative.initially)
        for time in range(end):
            states.append(current)
            happening = list(occurrences.get(time, []))
            # Fire triggers based on the pre-event state at this instant.
            for event in list(happening):
                for rule in self.triggers:
                    if rule.trigger != event:
                        continue
                    if all(f in current for f in rule.guard):
                        occurrences.setdefault(
                            time + rule.delay, []
                        ).append(rule.response)
            # Apply effect axioms to evolve the state.
            next_state = set(current)
            for event in happening:
                for axiom in self.axioms:
                    if axiom.event != event:
                        continue
                    if not all(f in current for f in axiom.condition):
                        continue
                    if axiom.initiates:
                        next_state.add(axiom.fluent)
                    else:
                        next_state.discard(axiom.fluent)
            current = frozenset(next_state)
        return Timeline(tuple(states), {
            time: tuple(events)
            for time, events in sorted(occurrences.items())
            if time < end
        })


@dataclass(frozen=True)
class Timeline:
    """The result of a simulation: per-instant fluent states and events."""

    states: tuple[frozenset[Fluent], ...]
    occurrences: dict[int, tuple[Event, ...]]

    def holds_at(self, fluent: Fluent, time: int) -> bool:
        """``HoldsAt(fluent, time)`` in the simulated timeline."""
        if not 0 <= time < len(self.states):
            raise ValueError(
                f"time {time} outside timeline of length {len(self.states)}"
            )
        return fluent in self.states[time]

    def happens(self, event: Event, time: int) -> bool:
        """``Happens(event, time)`` including derived events."""
        return event in self.occurrences.get(time, ())

    def all_occurrences(self) -> list[Occurrence]:
        """Every (event, time) pair, time-ordered."""
        out: list[Occurrence] = []
        for time, events in sorted(self.occurrences.items()):
            out.extend(Occurrence(event, time) for event in events)
        return out

    def ever_happens(self, event: Event) -> bool:
        """Whether the event occurs at any instant."""
        return any(
            event in events for events in self.occurrences.values()
        )

    def first_occurrence(self, event: Event) -> int | None:
        """Earliest time the event happens, or None."""
        times = [
            time
            for time, events in self.occurrences.items()
            if event in events
        ]
        return min(times) if times else None
