"""Categorical syllogisms: moods, figures, distribution, and validity.

Three of Damer's eight formal fallacies are defined over categorical
syllogisms — *false conversion*, *undistributed middle term*, and *illicit
distribution of an end term* (§IV.A).  Detecting them mechanically requires
an explicit model of categorical propositions (A/E/I/O forms), term
distribution, and the classical validity rules.  That model lives here; the
detector in :mod:`repro.fallacies.formal_detector` consumes it.

The Socrates syllogism the paper quotes — all men are mortal; Socrates is a
man; therefore Socrates is mortal — is representable as an AAA-1 (Barbara)
form, treating the singular term as a class.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable

__all__ = [
    "PropositionForm",
    "CategoricalProposition",
    "Syllogism",
    "SyllogismError",
    "ViolatedRule",
    "check_syllogism",
    "is_valid_syllogism",
    "valid_conversion",
    "converse",
    "socrates_syllogism",
    "VALID_MOODS",
]


class PropositionForm(enum.Enum):
    """The four categorical proposition forms."""

    A = "A"  # universal affirmative: All S are P
    E = "E"  # universal negative:    No S are P
    I = "I"  # particular affirmative: Some S are P
    O = "O"  # particular negative:   Some S are not P

    @property
    def is_universal(self) -> bool:
        return self in (PropositionForm.A, PropositionForm.E)

    @property
    def is_affirmative(self) -> bool:
        return self in (PropositionForm.A, PropositionForm.I)


@dataclass(frozen=True)
class CategoricalProposition:
    """A categorical proposition: form + subject + predicate terms."""

    form: PropositionForm
    subject: str
    predicate: str

    def __str__(self) -> str:
        templates = {
            PropositionForm.A: "All {s} are {p}",
            PropositionForm.E: "No {s} are {p}",
            PropositionForm.I: "Some {s} are {p}",
            PropositionForm.O: "Some {s} are not {p}",
        }
        return templates[self.form].format(s=self.subject, p=self.predicate)

    def distributes_subject(self) -> bool:
        """Universal propositions distribute their subject."""
        return self.form.is_universal

    def distributes_predicate(self) -> bool:
        """Negative propositions distribute their predicate."""
        return not self.form.is_affirmative

    def distributes(self, term: str) -> bool:
        """Whether this proposition distributes the given term."""
        if term == self.subject:
            return self.distributes_subject()
        if term == self.predicate:
            return self.distributes_predicate()
        raise SyllogismError(f"term {term!r} does not occur in {self}")

    def terms(self) -> frozenset[str]:
        return frozenset((self.subject, self.predicate))


class SyllogismError(ValueError):
    """Raised for structurally malformed syllogisms."""


@dataclass(frozen=True)
class ViolatedRule:
    """One classical validity rule violated by a syllogism."""

    rule: str
    detail: str

    def __str__(self) -> str:
        return f"{self.rule}: {self.detail}"


@dataclass(frozen=True)
class Syllogism:
    """A categorical syllogism: major premise, minor premise, conclusion.

    The *middle term* is the term occurring in both premises but not the
    conclusion; the conclusion's predicate is the *major term* and its
    subject the *minor term*.
    """

    major: CategoricalProposition
    minor: CategoricalProposition
    conclusion: CategoricalProposition

    def __post_init__(self) -> None:
        self.middle_term()  # validates structure

    def middle_term(self) -> str:
        """The term shared by both premises and absent from the conclusion."""
        shared = self.major.terms() & self.minor.terms()
        candidates = shared - self.conclusion.terms()
        if len(candidates) != 1:
            raise SyllogismError(
                "premises must share exactly one term not in the conclusion;"
                f" got {sorted(candidates)}"
            )
        return next(iter(candidates))

    @property
    def major_term(self) -> str:
        return self.conclusion.predicate

    @property
    def minor_term(self) -> str:
        return self.conclusion.subject

    def mood(self) -> str:
        """The three-letter mood, e.g. 'AAA'."""
        return (
            self.major.form.value
            + self.minor.form.value
            + self.conclusion.form.value
        )

    def figure(self) -> int:
        """The figure (1-4), from the middle term's premise positions."""
        middle = self.middle_term()
        major_subject = self.major.subject == middle
        minor_subject = self.minor.subject == middle
        if major_subject and not minor_subject:
            return 1
        if not major_subject and not minor_subject:
            return 2
        if major_subject and minor_subject:
            return 3
        return 4

    def __str__(self) -> str:
        return (
            f"{self.major}; {self.minor}; therefore {self.conclusion}"
            f"  [{self.mood()}-{self.figure()}]"
        )


#: The unconditionally valid mood-figure combinations (Boolean reading,
#: i.e. without existential import for universal premises).
VALID_MOODS: frozenset[tuple[str, int]] = frozenset(
    {
        ("AAA", 1), ("EAE", 1), ("AII", 1), ("EIO", 1),
        ("EAE", 2), ("AEE", 2), ("EIO", 2), ("AOO", 2),
        ("IAI", 3), ("AII", 3), ("OAO", 3), ("EIO", 3),
        ("AEE", 4), ("IAI", 4), ("EIO", 4),
    }
)


def check_syllogism(syllogism: Syllogism) -> list[ViolatedRule]:
    """Check the five classical rules; return all violations (empty = valid).

    Rules (Boolean interpretation):
      1. The middle term must be distributed at least once.
      2. A term distributed in the conclusion must be distributed in its
         premise (no illicit major / illicit minor).
      3. Two negative premises prove nothing.
      4. A negative premise requires a negative conclusion, and vice versa.
      5. Two universal premises cannot yield a particular conclusion.
    """
    violations: list[ViolatedRule] = []
    middle = syllogism.middle_term()

    if not (
        syllogism.major.distributes(middle)
        or syllogism.minor.distributes(middle)
    ):
        violations.append(ViolatedRule(
            "undistributed middle",
            f"middle term {middle!r} is distributed in neither premise",
        ))

    for term, premise, label in (
        (syllogism.major_term, syllogism.major, "major"),
        (syllogism.minor_term, syllogism.minor, "minor"),
    ):
        if syllogism.conclusion.distributes(term):
            if term not in premise.terms() or not premise.distributes(term):
                violations.append(ViolatedRule(
                    f"illicit {label}",
                    f"term {term!r} distributed in the conclusion but not "
                    "in its premise",
                ))

    major_negative = not syllogism.major.form.is_affirmative
    minor_negative = not syllogism.minor.form.is_affirmative
    conclusion_negative = not syllogism.conclusion.form.is_affirmative

    if major_negative and minor_negative:
        violations.append(ViolatedRule(
            "exclusive premises", "both premises are negative"
        ))
    if (major_negative or minor_negative) and not conclusion_negative:
        violations.append(ViolatedRule(
            "affirmative from negative",
            "a negative premise requires a negative conclusion",
        ))
    if conclusion_negative and not (major_negative or minor_negative):
        violations.append(ViolatedRule(
            "negative from affirmatives",
            "a negative conclusion requires a negative premise",
        ))
    if (
        syllogism.major.form.is_universal
        and syllogism.minor.form.is_universal
        and not syllogism.conclusion.form.is_universal
    ):
        violations.append(ViolatedRule(
            "existential fallacy",
            "universal premises cannot establish a particular conclusion",
        ))
    return violations


def is_valid_syllogism(syllogism: Syllogism) -> bool:
    """True when no classical rule is violated.

    Agreement between this check and membership in :data:`VALID_MOODS` is a
    property-based test invariant.
    """
    return not check_syllogism(syllogism)


def converse(
    proposition: CategoricalProposition,
) -> CategoricalProposition:
    """Swap subject and predicate (the conversion operation)."""
    return CategoricalProposition(
        proposition.form, proposition.predicate, proposition.subject
    )


def valid_conversion(proposition: CategoricalProposition) -> bool:
    """Whether conversion preserves truth for this form.

    E and I propositions convert validly; A and O do not ('false
    conversion' — one of Damer's formal fallacies — is inferring
    'All P are S' from 'All S are P').
    """
    return proposition.form in (PropositionForm.E, PropositionForm.I)


def socrates_syllogism() -> Syllogism:
    """The paper's §II.B example, as a Barbara (AAA-1) syllogism."""
    return Syllogism(
        major=CategoricalProposition(PropositionForm.A, "men", "mortal"),
        minor=CategoricalProposition(PropositionForm.A, "socrates", "men"),
        conclusion=CategoricalProposition(
            PropositionForm.A, "socrates", "mortal"
        ),
    )
