"""Analytic tableaux for propositional logic — an independent checker.

Bishop & Bloomfield's deterministic-argument sketch calls for 'an
independent check of the formal argument' (§III.F).  Diverse redundancy
demands genuinely different machinery, so alongside the truth-table
oracle, the DPLL solver, and the LK sequent prover, this module
implements the method of analytic tableaux: expand a formula's signed
tree; the formula is unsatisfiable iff every branch closes on a
complementary pair.

The cross-checker :func:`independent_validity_check` runs tableaux, SAT,
and sequents on the same query and reports disagreement — which, for a
correct implementation, never happens (a property-based test invariant).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from .propositional import (
    And,
    Atom,
    Falsum,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Verum,
)

__all__ = [
    "TableauNode",
    "build_tableau",
    "tableau_satisfiable",
    "tableau_valid",
    "tableau_entails",
    "independent_validity_check",
    "CheckerDisagreement",
]


@dataclass
class TableauNode:
    """One node of the expansion tree.

    ``formulas`` are the formulas still true on this branch prefix;
    ``literals`` the settled signed atoms; children are the branch
    splits.  ``closed`` marks a contradiction on the branch.
    """

    formulas: tuple[Formula, ...]
    literals: frozenset[tuple[str, bool]]
    children: tuple["TableauNode", ...] = ()
    closed: bool = False

    def open_branches(self) -> int:
        """Number of open leaves below (and including) this node."""
        if self.closed:
            return 0
        if not self.children:
            return 1
        return sum(child.open_branches() for child in self.children)

    def size(self) -> int:
        """Total node count of the tableau."""
        return 1 + sum(child.size() for child in self.children)


def _expand(
    formulas: list[Formula], literals: frozenset[tuple[str, bool]]
) -> TableauNode:
    pending = list(formulas)
    settled = set(literals)
    # Process non-branching (alpha) formulas greedily.
    alphas_done: list[Formula] = []
    while pending:
        formula = pending.pop()
        if isinstance(formula, Verum):
            continue
        if isinstance(formula, Falsum):
            return TableauNode(tuple(alphas_done), frozenset(settled),
                               closed=True)
        if isinstance(formula, Atom):
            if (formula.name, False) in settled:
                return TableauNode(tuple(alphas_done),
                                   frozenset(settled), closed=True)
            settled.add((formula.name, True))
            continue
        if isinstance(formula, Not):
            inner = formula.operand
            if isinstance(inner, Atom):
                if (inner.name, True) in settled:
                    return TableauNode(tuple(alphas_done),
                                       frozenset(settled), closed=True)
                settled.add((inner.name, False))
                continue
            if isinstance(inner, Verum):
                return TableauNode(tuple(alphas_done),
                                   frozenset(settled), closed=True)
            if isinstance(inner, Falsum):
                continue
            if isinstance(inner, Not):
                pending.append(inner.operand)
                continue
            if isinstance(inner, Or):
                pending.append(Not(inner.left))
                pending.append(Not(inner.right))
                continue
            if isinstance(inner, Implies):
                pending.append(inner.antecedent)
                pending.append(Not(inner.consequent))
                continue
            if isinstance(inner, And):
                # beta: ~(A & B) branches into ~A | ~B.
                alphas_done.append(formula)
                continue
            if isinstance(inner, Iff):
                alphas_done.append(formula)
                continue
        if isinstance(formula, And):
            pending.append(formula.left)
            pending.append(formula.right)
            continue
        # Branching formulas are deferred.
        alphas_done.append(formula)

    # Pick one branching (beta) formula, if any remain.
    for index, formula in enumerate(alphas_done):
        rest = alphas_done[:index] + alphas_done[index + 1:]
        if isinstance(formula, Or):
            branches = ([formula.left], [formula.right])
        elif isinstance(formula, Implies):
            branches = ([Not(formula.antecedent)], [formula.consequent])
        elif isinstance(formula, Iff):
            branches = (
                [formula.left, formula.right],
                [Not(formula.left), Not(formula.right)],
            )
        elif isinstance(formula, Not) and isinstance(formula.operand, And):
            branches = (
                [Not(formula.operand.left)],
                [Not(formula.operand.right)],
            )
        elif isinstance(formula, Not) and isinstance(formula.operand, Iff):
            branches = (
                [formula.operand.left, Not(formula.operand.right)],
                [Not(formula.operand.left), formula.operand.right],
            )
        else:
            continue
        children = tuple(
            _expand(list(rest) + branch, frozenset(settled))
            for branch in branches
        )
        return TableauNode(
            tuple(alphas_done), frozenset(settled),
            children=children,
            closed=all(child.closed for child in children),
        )

    # Fully expanded, no contradiction: the branch is open (satisfiable).
    return TableauNode(tuple(alphas_done), frozenset(settled))


def build_tableau(formulas: Iterable[Formula]) -> TableauNode:
    """Expand a tableau for the conjunction of the given formulas."""
    return _expand(list(formulas), frozenset())


def tableau_satisfiable(formula: Formula) -> bool:
    """Satisfiability by tableau: some branch stays open."""
    return not build_tableau([formula]).closed


def tableau_valid(formula: Formula) -> bool:
    """Validity by refutation tableau on the negation."""
    return build_tableau([Not(formula)]).closed


def tableau_entails(
    premises: Iterable[Formula], conclusion: Formula
) -> bool:
    """Entailment: premises plus negated conclusion close."""
    return build_tableau(list(premises) + [Not(conclusion)]).closed


class CheckerDisagreement(RuntimeError):
    """Raised when the diverse checkers disagree — an implementation bug
    in at least one of them, surfaced exactly as an independent check
    should surface it."""


def independent_validity_check(formula: Formula) -> bool:
    """Check validity with three diverse engines; raise on disagreement.

    The Bishop & Bloomfield 'independent check': tableaux, SAT
    refutation, and the LK sequent prover must concur.
    """
    from .entailment import is_valid as sat_valid
    from .sequent import is_valid_sequent

    verdicts = {
        "tableau": tableau_valid(formula),
        "sat": sat_valid(formula),
        "sequent": is_valid_sequent([], [formula]),
    }
    if len(set(verdicts.values())) != 1:
        raise CheckerDisagreement(
            f"checkers disagree on {formula}: {verdicts}"
        )
    return verdicts["tableau"]
