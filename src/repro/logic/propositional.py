"""Propositional logic: formula AST, parser, transforms, and evaluation.

This module is the foundation for the formal side of the paper's analysis:

* the formal-fallacy detectors in :mod:`repro.fallacies.formal_detector`
  (denying the antecedent, affirming the consequent, begging the question,
  incompatible premises, premise/conclusion contradiction) operate on
  propositional renderings of arguments;
* :mod:`repro.logic.sat` and :mod:`repro.logic.entailment` give the
  mechanical argument-validation services the surveyed proposals assume;
* :mod:`repro.formalise.translator` renders Rushby-style partially
  formalised assurance arguments into these formulas.

Formula syntax accepted by :func:`parse`:

* atoms: identifiers (``on_grnd``, ``threv_en``)
* negation: ``~p`` or ``!p``
* conjunction: ``p & q``
* disjunction: ``p | q``
* implication: ``p -> q`` (right-associative)
* biconditional: ``p <-> q``
* constants ``true`` and ``false``
* parentheses group as usual.

Precedence (loosest to tightest): ``<->``, ``->``, ``|``, ``&``, ``~``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Mapping, Union

__all__ = [
    "Formula",
    "Atom",
    "Not",
    "And",
    "Or",
    "Implies",
    "Iff",
    "TRUE",
    "FALSE",
    "Verum",
    "Falsum",
    "parse",
    "PropositionalSyntaxError",
    "atoms_of",
    "evaluate",
    "all_valuations",
    "is_tautology",
    "is_contradiction",
    "is_satisfiable_bruteforce",
    "models_of",
    "to_nnf",
    "to_cnf",
    "cnf_clauses",
    "equivalent",
    "conjoin",
    "disjoin",
    "substitute",
]


@dataclass(frozen=True, slots=True)
class Atom:
    """A propositional atom, identified by name."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Verum:
    """The constant true."""

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True, slots=True)
class Falsum:
    """The constant false."""

    def __str__(self) -> str:
        return "false"


@dataclass(frozen=True, slots=True)
class Not:
    """Negation."""

    operand: "Formula"

    def __str__(self) -> str:
        return f"~{_wrap(self.operand)}"


@dataclass(frozen=True, slots=True)
class And:
    """Binary conjunction."""

    left: "Formula"
    right: "Formula"

    def __str__(self) -> str:
        return f"({self.left} & {self.right})"


@dataclass(frozen=True, slots=True)
class Or:
    """Binary disjunction."""

    left: "Formula"
    right: "Formula"

    def __str__(self) -> str:
        return f"({self.left} | {self.right})"


@dataclass(frozen=True, slots=True)
class Implies:
    """Material implication."""

    antecedent: "Formula"
    consequent: "Formula"

    def __str__(self) -> str:
        return f"({self.antecedent} -> {self.consequent})"


@dataclass(frozen=True, slots=True)
class Iff:
    """Biconditional."""

    left: "Formula"
    right: "Formula"

    def __str__(self) -> str:
        return f"({self.left} <-> {self.right})"


Formula = Union[Atom, Verum, Falsum, Not, And, Or, Implies, Iff]

TRUE = Verum()
FALSE = Falsum()


def _wrap(formula: Formula) -> str:
    if isinstance(formula, (Atom, Verum, Falsum, Not)):
        return str(formula)
    return f"({formula})"


class PropositionalSyntaxError(ValueError):
    """Raised when :func:`parse` rejects its input."""


_TOKEN_SYMBOLS = ("<->", "->", "(", ")", "&", "|", "~", "!")


def _tokenise(text: str) -> list[str]:
    tokens: list[str] = []
    pos = 0
    while pos < len(text):
        char = text[pos]
        if char.isspace():
            pos += 1
            continue
        for symbol in _TOKEN_SYMBOLS:
            if text.startswith(symbol, pos):
                tokens.append(symbol)
                pos += len(symbol)
                break
        else:
            if char.isalnum() or char == "_":
                start = pos
                while pos < len(text) and (
                    text[pos].isalnum() or text[pos] == "_"
                ):
                    pos += 1
                tokens.append(text[start:pos])
            else:
                raise PropositionalSyntaxError(
                    f"unexpected character {char!r} at position {pos}"
                )
    return tokens


class _Parser:
    def __init__(self, tokens: list[str]) -> None:
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self) -> str:
        token = self.peek()
        if token is None:
            raise PropositionalSyntaxError("unexpected end of input")
        self.pos += 1
        return token

    def parse_iff(self) -> Formula:
        left = self.parse_implies()
        if self.peek() == "<->":
            self.take()
            right = self.parse_iff()
            return Iff(left, right)
        return left

    def parse_implies(self) -> Formula:
        left = self.parse_or()
        if self.peek() == "->":
            self.take()
            right = self.parse_implies()
            return Implies(left, right)
        return left

    def parse_or(self) -> Formula:
        left = self.parse_and()
        while self.peek() == "|":
            self.take()
            left = Or(left, self.parse_and())
        return left

    def parse_and(self) -> Formula:
        left = self.parse_unary()
        while self.peek() == "&":
            self.take()
            left = And(left, self.parse_unary())
        return left

    def parse_unary(self) -> Formula:
        token = self.peek()
        if token in ("~", "!"):
            self.take()
            return Not(self.parse_unary())
        if token == "(":
            self.take()
            inner = self.parse_iff()
            if self.take() != ")":
                raise PropositionalSyntaxError("expected ')'")
            return inner
        if token is None:
            raise PropositionalSyntaxError("unexpected end of input")
        self.take()
        if token == "true":
            return TRUE
        if token == "false":
            return FALSE
        if not (token[0].isalpha() or token[0] == "_"):
            raise PropositionalSyntaxError(f"bad atom name {token!r}")
        return Atom(token)


def parse(text: str) -> Formula:
    """Parse a propositional formula from text."""
    parser = _Parser(_tokenise(text))
    formula = parser.parse_iff()
    if parser.peek() is not None:
        raise PropositionalSyntaxError(
            f"trailing input from token {parser.peek()!r}"
        )
    return formula


def atoms_of(formula: Formula) -> frozenset[Atom]:
    """All atoms occurring in the formula."""
    if isinstance(formula, Atom):
        return frozenset((formula,))
    if isinstance(formula, (Verum, Falsum)):
        return frozenset()
    if isinstance(formula, Not):
        return atoms_of(formula.operand)
    if isinstance(formula, Implies):
        return atoms_of(formula.antecedent) | atoms_of(formula.consequent)
    return atoms_of(formula.left) | atoms_of(formula.right)


Valuation = Mapping[Atom, bool]


def evaluate(formula: Formula, valuation: Valuation) -> bool:
    """Evaluate the formula under a (total) valuation of its atoms."""
    if isinstance(formula, Atom):
        try:
            return valuation[formula]
        except KeyError:
            raise KeyError(
                f"valuation does not assign atom {formula.name!r}"
            ) from None
    if isinstance(formula, Verum):
        return True
    if isinstance(formula, Falsum):
        return False
    if isinstance(formula, Not):
        return not evaluate(formula.operand, valuation)
    if isinstance(formula, And):
        return evaluate(formula.left, valuation) and evaluate(
            formula.right, valuation
        )
    if isinstance(formula, Or):
        return evaluate(formula.left, valuation) or evaluate(
            formula.right, valuation
        )
    if isinstance(formula, Implies):
        return (not evaluate(formula.antecedent, valuation)) or evaluate(
            formula.consequent, valuation
        )
    if isinstance(formula, Iff):
        return evaluate(formula.left, valuation) == evaluate(
            formula.right, valuation
        )
    raise TypeError(f"not a formula: {formula!r}")


def all_valuations(atoms: Iterable[Atom]) -> Iterator[dict[Atom, bool]]:
    """Yield every valuation of the given atoms (2^n of them)."""
    atom_list = sorted(set(atoms), key=lambda a: a.name)
    for bits in itertools.product((False, True), repeat=len(atom_list)):
        yield dict(zip(atom_list, bits))


def is_tautology(formula: Formula) -> bool:
    """Truth-table check that the formula is true under every valuation."""
    return all(
        evaluate(formula, v) for v in all_valuations(atoms_of(formula))
    )


def is_contradiction(formula: Formula) -> bool:
    """Truth-table check that the formula is false under every valuation."""
    return all(
        not evaluate(formula, v) for v in all_valuations(atoms_of(formula))
    )


def is_satisfiable_bruteforce(formula: Formula) -> bool:
    """Truth-table satisfiability; exponential, used as a test oracle."""
    return any(
        evaluate(formula, v) for v in all_valuations(atoms_of(formula))
    )


def models_of(formula: Formula) -> list[dict[Atom, bool]]:
    """All satisfying valuations (exponential; for small formulas/tests)."""
    return [
        v for v in all_valuations(atoms_of(formula)) if evaluate(formula, v)
    ]


def equivalent(left: Formula, right: Formula) -> bool:
    """Truth-table logical equivalence over the union of both atom sets."""
    atoms = atoms_of(left) | atoms_of(right)
    return all(
        evaluate(left, v) == evaluate(right, v)
        for v in all_valuations(atoms)
    )


def to_nnf(formula: Formula) -> Formula:
    """Negation normal form: eliminate ->, <->; push ~ onto atoms."""
    if isinstance(formula, (Atom, Verum, Falsum)):
        return formula
    if isinstance(formula, And):
        return And(to_nnf(formula.left), to_nnf(formula.right))
    if isinstance(formula, Or):
        return Or(to_nnf(formula.left), to_nnf(formula.right))
    if isinstance(formula, Implies):
        return Or(to_nnf(Not(formula.antecedent)), to_nnf(formula.consequent))
    if isinstance(formula, Iff):
        return And(
            to_nnf(Implies(formula.left, formula.right)),
            to_nnf(Implies(formula.right, formula.left)),
        )
    # Negation: dispatch on the operand.
    operand = formula.operand
    if isinstance(operand, Atom):
        return formula
    if isinstance(operand, Verum):
        return FALSE
    if isinstance(operand, Falsum):
        return TRUE
    if isinstance(operand, Not):
        return to_nnf(operand.operand)
    if isinstance(operand, And):
        return Or(to_nnf(Not(operand.left)), to_nnf(Not(operand.right)))
    if isinstance(operand, Or):
        return And(to_nnf(Not(operand.left)), to_nnf(Not(operand.right)))
    if isinstance(operand, Implies):
        return And(to_nnf(operand.antecedent), to_nnf(Not(operand.consequent)))
    if isinstance(operand, Iff):
        return to_nnf(Not(And(
            Implies(operand.left, operand.right),
            Implies(operand.right, operand.left),
        )))
    raise TypeError(f"not a formula: {operand!r}")


def to_cnf(formula: Formula) -> Formula:
    """Conjunctive normal form by NNF then distribution.

    Worst-case exponential in formula size, which is acceptable for the
    argument-sized formulas this library manipulates; the SAT layer uses
    clause sets from :func:`cnf_clauses`.
    """
    return _distribute(to_nnf(formula))


def _distribute(formula: Formula) -> Formula:
    if isinstance(formula, And):
        return And(_distribute(formula.left), _distribute(formula.right))
    if isinstance(formula, Or):
        left = _distribute(formula.left)
        right = _distribute(formula.right)
        if isinstance(left, And):
            return And(
                _distribute(Or(left.left, right)),
                _distribute(Or(left.right, right)),
            )
        if isinstance(right, And):
            return And(
                _distribute(Or(left, right.left)),
                _distribute(Or(left, right.right)),
            )
        return Or(left, right)
    return formula


Literal = tuple[str, bool]
"""A CNF literal: (atom name, polarity). (p, True) is p; (p, False) is ~p."""

Clause = frozenset[Literal]


def cnf_clauses(formula: Formula) -> frozenset[Clause]:
    """Convert to a clause set suitable for the DPLL solver.

    Constant handling: a clause containing ``true`` is dropped; ``false``
    literals are removed from their clause.  The empty clause set means the
    formula is valid-as-CNF (i.e. trivially satisfiable); a clause set
    containing the empty clause is unsatisfiable.
    """
    cnf = to_cnf(formula)
    clauses: set[Clause] = set()
    for conjunct in _conjuncts(cnf):
        literals: set[Literal] = set()
        tautological = False
        for disjunct in _disjuncts(conjunct):
            if isinstance(disjunct, Verum):
                tautological = True
                break
            if isinstance(disjunct, Falsum):
                continue
            if isinstance(disjunct, Atom):
                literals.add((disjunct.name, True))
            elif isinstance(disjunct, Not) and isinstance(
                disjunct.operand, Atom
            ):
                literals.add((disjunct.operand.name, False))
            elif isinstance(disjunct, Not) and isinstance(
                disjunct.operand, Verum
            ):
                continue
            elif isinstance(disjunct, Not) and isinstance(
                disjunct.operand, Falsum
            ):
                tautological = True
                break
            else:
                raise ValueError(
                    f"formula not in CNF after transform: {disjunct}"
                )
        if tautological:
            continue
        if any((name, not pol) in literals for name, pol in literals):
            continue  # p | ~p clause is tautological
        clauses.add(frozenset(literals))
    return frozenset(clauses)


def _conjuncts(formula: Formula) -> Iterator[Formula]:
    if isinstance(formula, And):
        yield from _conjuncts(formula.left)
        yield from _conjuncts(formula.right)
    else:
        yield formula


def _disjuncts(formula: Formula) -> Iterator[Formula]:
    if isinstance(formula, Or):
        yield from _disjuncts(formula.left)
        yield from _disjuncts(formula.right)
    else:
        yield formula


def conjoin(formulas: Iterable[Formula]) -> Formula:
    """Right-nested conjunction of the formulas; TRUE when empty."""
    items = list(formulas)
    if not items:
        return TRUE
    result = items[-1]
    for item in reversed(items[:-1]):
        result = And(item, result)
    return result


def disjoin(formulas: Iterable[Formula]) -> Formula:
    """Right-nested disjunction of the formulas; FALSE when empty."""
    items = list(formulas)
    if not items:
        return FALSE
    result = items[-1]
    for item in reversed(items[:-1]):
        result = Or(item, result)
    return result


def substitute(
    formula: Formula, mapping: Mapping[Atom, Formula]
) -> Formula:
    """Uniformly replace atoms by formulas."""
    replace: Callable[[Formula], Formula]

    def replace(node: Formula) -> Formula:
        if isinstance(node, Atom):
            return mapping.get(node, node)
        if isinstance(node, (Verum, Falsum)):
            return node
        if isinstance(node, Not):
            return Not(replace(node.operand))
        if isinstance(node, And):
            return And(replace(node.left), replace(node.right))
        if isinstance(node, Or):
            return Or(replace(node.left), replace(node.right))
        if isinstance(node, Implies):
            return Implies(replace(node.antecedent), replace(node.consequent))
        return Iff(replace(node.left), replace(node.right))

    return replace(formula)
