"""Formal-logic substrates for assurance-argument formalisation.

Every logic the surveyed proposals rely on is implemented here from
scratch:

* :mod:`~repro.logic.propositional` — formula AST, parser, CNF, evaluation
* :mod:`~repro.logic.sat` / :mod:`~repro.logic.entailment` — DPLL solver
  and the entailment/consistency services argument checkers need
* :mod:`~repro.logic.terms` / :mod:`~repro.logic.unification` — first-order
  terms and Robinson unification
* :mod:`~repro.logic.natural_deduction` — Fitch-style checker (Haley et al.)
* :mod:`~repro.logic.sequent` — Gentzen LK prover (Bishop & Bloomfield)
* :mod:`~repro.logic.resolution` — clausal refutation prover
* :mod:`~repro.logic.prolog` — SLD resolution; reproduces Figure 1
* :mod:`~repro.logic.fol` — multi-sorted FOL (Sokolsky et al.)
* :mod:`~repro.logic.ltl` — finite-trace LTL (Brunel & Cazin)
* :mod:`~repro.logic.event_calculus` — discrete EC (Tun et al.)
* :mod:`~repro.logic.bbn` — Bayesian confidence networks (ref [34])
* :mod:`~repro.logic.syllogism` — categorical syllogisms for the
  distribution-based formal fallacies
"""

from .entailment import consistent, entails, is_satisfiable, is_valid
from .natural_deduction import (
    Proof,
    ProofBuilder,
    ProofError,
    ProofLine,
    Rule,
    check_proof,
    haley_outer_proof,
)
from .prolog import Program, desert_bank_program, parse_program
from .propositional import Formula, parse
from .sat import solve_formula
from .tableau import (
    independent_validity_check,
    tableau_entails,
    tableau_satisfiable,
    tableau_valid,
)

__all__ = [
    "consistent",
    "entails",
    "is_satisfiable",
    "is_valid",
    "Proof",
    "ProofBuilder",
    "ProofError",
    "ProofLine",
    "Rule",
    "check_proof",
    "haley_outer_proof",
    "Program",
    "desert_bank_program",
    "parse_program",
    "Formula",
    "parse",
    "solve_formula",
    "independent_validity_check",
    "tableau_entails",
    "tableau_satisfiable",
    "tableau_valid",
]
