"""Linear temporal logic with finite-trace semantics.

Brunel & Cazin formalise safety-argument claims in LTL so that 'automatic
validation of the argumentation' becomes possible (§III.G).  Their running
example formalises 'the Detect and Avoid function is correct' as a temporal
property over obstacle distance.  This module supplies:

* an LTL AST and parser (``G``, ``F``, ``X``, ``U``, ``R`` plus the
  propositional connectives),
* finite-trace semantics (LTLf-style: ``X`` is the strong next; at the end
  of the trace ``X p`` is false and ``G p`` holds iff ``p`` held to the
  end) — evaluated both by a direct recursive evaluator and an equivalent
  dynamic-programming evaluator used to cross-check it,
* trace generators for the UAV detect-and-avoid scenario used by the
  examples and benchmarks.

States are just sets of true atom names; a trace is a sequence of states.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Union

__all__ = [
    "LtlFormula",
    "Prop",
    "LNot",
    "LAnd",
    "LOr",
    "LImplies",
    "Next",
    "Always",
    "Eventually",
    "Until",
    "Release",
    "parse_ltl",
    "LtlSyntaxError",
    "Trace",
    "holds",
    "holds_dp",
    "atoms_of_ltl",
    "detect_and_avoid_property",
]


@dataclass(frozen=True, slots=True)
class Prop:
    """An atomic proposition, true in a state that contains its name."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class LNot:
    operand: "LtlFormula"

    def __str__(self) -> str:
        return f"!({self.operand})"


@dataclass(frozen=True, slots=True)
class LAnd:
    left: "LtlFormula"
    right: "LtlFormula"

    def __str__(self) -> str:
        return f"({self.left} & {self.right})"


@dataclass(frozen=True, slots=True)
class LOr:
    left: "LtlFormula"
    right: "LtlFormula"

    def __str__(self) -> str:
        return f"({self.left} | {self.right})"


@dataclass(frozen=True, slots=True)
class LImplies:
    antecedent: "LtlFormula"
    consequent: "LtlFormula"

    def __str__(self) -> str:
        return f"({self.antecedent} -> {self.consequent})"


@dataclass(frozen=True, slots=True)
class Next:
    """Strong next: requires a successor state."""

    operand: "LtlFormula"

    def __str__(self) -> str:
        return f"X({self.operand})"


@dataclass(frozen=True, slots=True)
class Always:
    operand: "LtlFormula"

    def __str__(self) -> str:
        return f"G({self.operand})"


@dataclass(frozen=True, slots=True)
class Eventually:
    operand: "LtlFormula"

    def __str__(self) -> str:
        return f"F({self.operand})"


@dataclass(frozen=True, slots=True)
class Until:
    """``left U right``: right eventually holds, left holds until then."""

    left: "LtlFormula"
    right: "LtlFormula"

    def __str__(self) -> str:
        return f"({self.left} U {self.right})"


@dataclass(frozen=True, slots=True)
class Release:
    """``left R right``: dual of until."""

    left: "LtlFormula"
    right: "LtlFormula"

    def __str__(self) -> str:
        return f"({self.left} R {self.right})"


LtlFormula = Union[
    Prop, LNot, LAnd, LOr, LImplies, Next, Always, Eventually, Until, Release
]

Trace = Sequence[frozenset[str]]


class LtlSyntaxError(ValueError):
    """Raised when :func:`parse_ltl` rejects its input."""


_SYMBOLS = ("->", "(", ")", "&", "|", "!", "~")


def _tokenise(text: str) -> list[str]:
    tokens: list[str] = []
    pos = 0
    while pos < len(text):
        char = text[pos]
        if char.isspace():
            pos += 1
            continue
        for symbol in _SYMBOLS:
            if text.startswith(symbol, pos):
                tokens.append(symbol)
                pos += len(symbol)
                break
        else:
            if char.isalnum() or char == "_":
                start = pos
                while pos < len(text) and (
                    text[pos].isalnum() or text[pos] == "_"
                ):
                    pos += 1
                tokens.append(text[start:pos])
            else:
                raise LtlSyntaxError(
                    f"unexpected character {char!r} at position {pos}"
                )
    return tokens


class _LtlParser:
    """Precedence: ``->`` < ``|`` < ``&`` < ``U``/``R`` < unary."""

    def __init__(self, tokens: list[str]) -> None:
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self) -> str:
        token = self.peek()
        if token is None:
            raise LtlSyntaxError("unexpected end of input")
        self.pos += 1
        return token

    def parse_implies(self) -> LtlFormula:
        left = self.parse_or()
        if self.peek() == "->":
            self.take()
            return LImplies(left, self.parse_implies())
        return left

    def parse_or(self) -> LtlFormula:
        left = self.parse_and()
        while self.peek() == "|":
            self.take()
            left = LOr(left, self.parse_and())
        return left

    def parse_and(self) -> LtlFormula:
        left = self.parse_until()
        while self.peek() == "&":
            self.take()
            left = LAnd(left, self.parse_until())
        return left

    def parse_until(self) -> LtlFormula:
        left = self.parse_unary()
        while self.peek() in ("U", "R"):
            operator = self.take()
            right = self.parse_unary()
            left = Until(left, right) if operator == "U" else Release(
                left, right
            )
        return left

    def parse_unary(self) -> LtlFormula:
        token = self.peek()
        if token in ("!", "~"):
            self.take()
            return LNot(self.parse_unary())
        if token in ("G", "F", "X"):
            self.take()
            operand = self.parse_unary()
            wrapper = {"G": Always, "F": Eventually, "X": Next}[token]
            return wrapper(operand)
        if token == "(":
            self.take()
            inner = self.parse_implies()
            if self.take() != ")":
                raise LtlSyntaxError("expected ')'")
            return inner
        if token is None:
            raise LtlSyntaxError("unexpected end of input")
        self.take()
        if not (token[0].isalpha() or token[0] == "_"):
            raise LtlSyntaxError(f"bad proposition {token!r}")
        return Prop(token)


def parse_ltl(text: str) -> LtlFormula:
    """Parse an LTL formula, e.g. ``G (clear -> F safe)``."""
    parser = _LtlParser(_tokenise(text))
    formula = parser.parse_implies()
    if parser.peek() is not None:
        raise LtlSyntaxError(f"trailing input at token {parser.peek()!r}")
    return formula


def atoms_of_ltl(formula: LtlFormula) -> frozenset[str]:
    """All proposition names in the formula."""
    if isinstance(formula, Prop):
        return frozenset((formula.name,))
    if isinstance(formula, (LNot, Next, Always, Eventually)):
        return atoms_of_ltl(formula.operand)
    if isinstance(formula, LImplies):
        return atoms_of_ltl(formula.antecedent) | atoms_of_ltl(
            formula.consequent
        )
    return atoms_of_ltl(formula.left) | atoms_of_ltl(formula.right)


def holds(formula: LtlFormula, trace: Trace, position: int = 0) -> bool:
    """Finite-trace satisfaction: does ``trace, position |= formula``?

    Raises :class:`ValueError` for positions outside the trace; an empty
    trace satisfies nothing (there is no state 0).
    """
    if position >= len(trace) or position < 0:
        raise ValueError(
            f"position {position} outside trace of length {len(trace)}"
        )
    if isinstance(formula, Prop):
        return formula.name in trace[position]
    if isinstance(formula, LNot):
        return not holds(formula.operand, trace, position)
    if isinstance(formula, LAnd):
        return holds(formula.left, trace, position) and holds(
            formula.right, trace, position
        )
    if isinstance(formula, LOr):
        return holds(formula.left, trace, position) or holds(
            formula.right, trace, position
        )
    if isinstance(formula, LImplies):
        return (not holds(formula.antecedent, trace, position)) or holds(
            formula.consequent, trace, position
        )
    if isinstance(formula, Next):
        if position + 1 >= len(trace):
            return False  # strong next fails at the last state
        return holds(formula.operand, trace, position + 1)
    if isinstance(formula, Always):
        return all(
            holds(formula.operand, trace, i)
            for i in range(position, len(trace))
        )
    if isinstance(formula, Eventually):
        return any(
            holds(formula.operand, trace, i)
            for i in range(position, len(trace))
        )
    if isinstance(formula, Until):
        for i in range(position, len(trace)):
            if holds(formula.right, trace, i):
                return True
            if not holds(formula.left, trace, i):
                return False
        return False
    if isinstance(formula, Release):
        # left R right == !(!left U !right)
        return not holds(
            Until(LNot(formula.left), LNot(formula.right)), trace, position
        )
    raise TypeError(f"not an LTL formula: {formula!r}")


def holds_dp(formula: LtlFormula, trace: Trace) -> bool:
    """Dynamic-programming evaluator (backwards over the trace).

    Semantically identical to :func:`holds` at position 0; kept as an
    independent implementation so property tests can cross-check the two.
    """
    if not trace:
        raise ValueError("empty trace")
    subformulas = _subformulas_postorder(formula)
    table: dict[LtlFormula, list[bool]] = {}
    length = len(trace)
    for sub in subformulas:
        row = [False] * length
        for i in range(length - 1, -1, -1):
            if isinstance(sub, Prop):
                row[i] = sub.name in trace[i]
            elif isinstance(sub, LNot):
                row[i] = not table[sub.operand][i]
            elif isinstance(sub, LAnd):
                row[i] = table[sub.left][i] and table[sub.right][i]
            elif isinstance(sub, LOr):
                row[i] = table[sub.left][i] or table[sub.right][i]
            elif isinstance(sub, LImplies):
                row[i] = (not table[sub.antecedent][i]) or table[
                    sub.consequent
                ][i]
            elif isinstance(sub, Next):
                row[i] = i + 1 < length and table[sub.operand][i + 1]
            elif isinstance(sub, Always):
                row[i] = table[sub.operand][i] and (
                    i + 1 >= length or row[i + 1]
                )
            elif isinstance(sub, Eventually):
                row[i] = table[sub.operand][i] or (
                    i + 1 < length and row[i + 1]
                )
            elif isinstance(sub, Until):
                row[i] = table[sub.right][i] or (
                    table[sub.left][i] and i + 1 < length and row[i + 1]
                )
            elif isinstance(sub, Release):
                row[i] = table[sub.right][i] and (
                    table[sub.left][i] or i + 1 >= length or row[i + 1]
                )
            else:
                raise TypeError(f"not an LTL formula: {sub!r}")
        table[sub] = row
    return table[formula][0]


def _subformulas_postorder(formula: LtlFormula) -> list[LtlFormula]:
    seen: list[LtlFormula] = []

    def visit(node: LtlFormula) -> None:
        if node in seen:
            return
        if isinstance(node, (LNot, Next, Always, Eventually)):
            visit(node.operand)
        elif isinstance(node, LImplies):
            visit(node.antecedent)
            visit(node.consequent)
        elif not isinstance(node, Prop):
            visit(node.left)
            visit(node.right)
        seen.append(node)

    visit(formula)
    return seen


def detect_and_avoid_property() -> LtlFormula:
    """Brunel & Cazin's UAV claim, in our atom vocabulary.

    The paper formalises 'the Detect and Avoid function is correct' as
    ``G (d_obstacle < d_min) -> ((d_obstacle != 0) U (d_obstacle > d_min))``.
    Rendered over boolean atoms: whenever an intrusion occurs
    (``intrusion`` = distance below minimum), no collision happens
    (``no_collision`` = distance nonzero) until separation is restored
    (``separated`` = distance above minimum).
    """
    return parse_ltl("G (intrusion -> (no_collision U separated))")
