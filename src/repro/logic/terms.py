"""First-order terms and substitutions.

This is the shared term language used by the unification engine
(:mod:`repro.logic.unification`), the resolution prover
(:mod:`repro.logic.resolution`), the mini-Prolog interpreter that reproduces
Figure 1 of the paper (:mod:`repro.logic.prolog`), and the multi-sorted
first-order layer (:mod:`repro.logic.fol`).

Terms follow the usual inductive definition:

* a :class:`Var` is a term (written ``X``, ``Y``, ... by convention),
* a :class:`Const` is a term (a function symbol of arity 0), and
* a :class:`Func` ``f(t1, ..., tn)`` is a term when each ``ti`` is a term.

All term classes are immutable and hashable so they can be used in sets and
as dictionary keys, which the provers rely on heavily.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence, Union

__all__ = [
    "Term",
    "Var",
    "Const",
    "Func",
    "Atom",
    "Substitution",
    "EMPTY_SUBSTITUTION",
    "variables_of",
    "constants_of",
    "term_size",
    "term_depth",
    "rename_apart",
    "parse_term",
    "parse_atom",
    "TermSyntaxError",
]


@dataclass(frozen=True, slots=True)
class Var:
    """A logical variable.

    Variables are identified by name; two :class:`Var` objects with the same
    name are the same variable.  ``sequence`` is used by :func:`rename_apart`
    to generate fresh variants (``X#3``) that cannot collide with user input.
    """

    name: str

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Var({self.name!r})"


@dataclass(frozen=True, slots=True)
class Const:
    """A constant symbol (function of arity zero)."""

    name: str

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Const({self.name!r})"


@dataclass(frozen=True, slots=True)
class Func:
    """A compound term ``functor(arg1, ..., argn)`` with ``n >= 1``."""

    functor: str
    args: tuple["Term", ...]

    def __post_init__(self) -> None:
        if not self.args:
            raise ValueError(
                f"Func {self.functor!r} must have at least one argument; "
                "use Const for arity-0 symbols"
            )

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        return f"{self.functor}({inner})"

    def __repr__(self) -> str:
        return f"Func({self.functor!r}, {self.args!r})"


Term = Union[Var, Const, Func]


@dataclass(frozen=True, slots=True)
class Atom:
    """An atomic formula ``predicate(arg1, ..., argn)``.

    Predicates of arity zero are permitted (``args`` may be empty), which lets
    the clausal machinery embed propositional problems directly.
    """

    predicate: str
    args: tuple[Term, ...] = ()

    def __str__(self) -> str:
        if not self.args:
            return self.predicate
        inner = ", ".join(str(a) for a in self.args)
        return f"{self.predicate}({inner})"

    @property
    def arity(self) -> int:
        """Number of argument positions."""
        return len(self.args)

    def variables(self) -> frozenset[Var]:
        """All variables appearing in the atom's arguments."""
        out: set[Var] = set()
        for arg in self.args:
            out.update(variables_of(arg))
        return frozenset(out)

    def is_ground(self) -> bool:
        """True when the atom contains no variables."""
        return not self.variables()


class Substitution(Mapping[Var, Term]):
    """An immutable mapping from variables to terms.

    Substitutions compose (``s1.compose(s2)`` applies ``s1`` *then* ``s2``)
    and apply to terms and atoms.  Identity bindings (``X -> X``) are dropped
    on construction so equal substitutions compare equal.
    """

    __slots__ = ("_bindings",)

    def __init__(self, bindings: Mapping[Var, Term] | None = None) -> None:
        cleaned = {
            var: term
            for var, term in (bindings or {}).items()
            if term != var
        }
        object.__setattr__(self, "_bindings", cleaned)

    def __getitem__(self, var: Var) -> Term:
        return self._bindings[var]

    def __iter__(self) -> Iterator[Var]:
        return iter(self._bindings)

    def __len__(self) -> int:
        return len(self._bindings)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Substitution):
            return NotImplemented
        return self._bindings == other._bindings

    def __hash__(self) -> int:
        return hash(frozenset(self._bindings.items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{v}: {t}" for v, t in sorted(
            self._bindings.items(), key=lambda item: item[0].name))
        return f"{{{inner}}}"

    def apply(self, term: Term) -> Term:
        """Apply this substitution to a term, replacing bound variables."""
        if isinstance(term, Var):
            bound = self._bindings.get(term)
            if bound is None:
                return term
            # Follow chains: a binding may itself mention bound variables.
            return self.apply(bound) if bound != term else term
        if isinstance(term, Const):
            return term
        return Func(term.functor, tuple(self.apply(a) for a in term.args))

    def apply_atom(self, atom: Atom) -> Atom:
        """Apply this substitution to every argument of an atom."""
        return Atom(atom.predicate, tuple(self.apply(a) for a in atom.args))

    def compose(self, other: "Substitution") -> "Substitution":
        """Return the substitution equivalent to applying self, then other."""
        merged: dict[Var, Term] = {
            var: other.apply(term) for var, term in self._bindings.items()
        }
        for var, term in other.items():
            if var not in merged:
                merged[var] = term
        return Substitution(merged)

    def bind(self, var: Var, term: Term) -> "Substitution":
        """Return a new substitution extended with ``var -> term``."""
        merged = dict(self._bindings)
        merged[var] = term
        return Substitution(merged)

    def restrict(self, variables: Sequence[Var]) -> "Substitution":
        """Project the substitution onto the given variables."""
        keep = set(variables)
        return Substitution(
            {v: t for v, t in self._bindings.items() if v in keep}
        )


EMPTY_SUBSTITUTION = Substitution()


def variables_of(term: Term) -> frozenset[Var]:
    """The set of variables occurring in ``term``."""
    if isinstance(term, Var):
        return frozenset((term,))
    if isinstance(term, Const):
        return frozenset()
    out: set[Var] = set()
    for arg in term.args:
        out.update(variables_of(arg))
    return frozenset(out)


def constants_of(term: Term) -> frozenset[Const]:
    """The set of constants occurring in ``term``."""
    if isinstance(term, Var):
        return frozenset()
    if isinstance(term, Const):
        return frozenset((term,))
    out: set[Const] = set()
    for arg in term.args:
        out.update(constants_of(arg))
    return frozenset(out)


def term_size(term: Term) -> int:
    """Number of symbol occurrences in the term."""
    if isinstance(term, (Var, Const)):
        return 1
    return 1 + sum(term_size(a) for a in term.args)


def term_depth(term: Term) -> int:
    """Nesting depth; variables and constants have depth 1."""
    if isinstance(term, (Var, Const)):
        return 1
    return 1 + max(term_depth(a) for a in term.args)


def rename_apart(
    atoms: Sequence[Atom], suffix: str
) -> tuple[tuple[Atom, ...], Substitution]:
    """Rename every variable in ``atoms`` by appending ``suffix``.

    Used to standardise clauses apart before resolution so that variables in
    different clauses cannot be captured.  Returns the renamed atoms and the
    renaming substitution.
    """
    all_vars: set[Var] = set()
    for atom in atoms:
        all_vars.update(atom.variables())
    renaming = Substitution(
        {var: Var(f"{var.name}{suffix}") for var in all_vars}
    )
    return tuple(renaming.apply_atom(a) for a in atoms), renaming


class TermSyntaxError(ValueError):
    """Raised when :func:`parse_term` or :func:`parse_atom` rejects input."""


class _TermParser:
    """Recursive-descent parser for Prolog-style term syntax.

    Identifiers beginning with an uppercase letter or underscore are
    variables; everything else is a constant or functor.  Quoted strings
    (single quotes) and integers become constants.
    """

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def error(self, message: str) -> TermSyntaxError:
        return TermSyntaxError(
            f"{message} at position {self.pos} in {self.text!r}"
        )

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def expect(self, char: str) -> None:
        self.skip_ws()
        if self.peek() != char:
            raise self.error(f"expected {char!r}")
        self.pos += 1

    def parse_name(self) -> str:
        self.skip_ws()
        start = self.pos
        if self.peek() == "'":
            self.pos += 1
            while self.pos < len(self.text) and self.text[self.pos] != "'":
                self.pos += 1
            if self.pos >= len(self.text):
                raise self.error("unterminated quoted name")
            name = self.text[start + 1:self.pos]
            self.pos += 1
            return name
        while self.pos < len(self.text) and (
            self.text[self.pos].isalnum() or self.text[self.pos] in "_-"
        ):
            self.pos += 1
        if self.pos == start:
            raise self.error("expected a name")
        return self.text[start:self.pos]

    def parse_term(self) -> Term:
        name = self.parse_name()
        self.skip_ws()
        if self.peek() == "(":
            self.pos += 1
            args = self.parse_args()
            self.expect(")")
            return Func(name, tuple(args))
        if name[0].isupper() or name[0] == "_":
            return Var(name)
        return Const(name)

    def parse_args(self) -> list[Term]:
        args = [self.parse_term()]
        self.skip_ws()
        while self.peek() == ",":
            self.pos += 1
            args.append(self.parse_term())
            self.skip_ws()
        return args

    def parse_atom(self) -> Atom:
        name = self.parse_name()
        self.skip_ws()
        if self.peek() != "(":
            return Atom(name)
        self.pos += 1
        args = self.parse_args()
        self.expect(")")
        return Atom(name, tuple(args))

    def at_end(self) -> bool:
        self.skip_ws()
        return self.pos >= len(self.text)


def parse_term(text: str) -> Term:
    """Parse Prolog-style term syntax, e.g. ``f(X, g(a), 'two words')``."""
    parser = _TermParser(text)
    term = parser.parse_term()
    if not parser.at_end():
        raise parser.error("trailing input after term")
    return term


def parse_atom(text: str) -> Atom:
    """Parse an atomic formula, e.g. ``adjacent(bank, river)``."""
    parser = _TermParser(text)
    atom = parser.parse_atom()
    if not parser.at_end():
        raise parser.error("trailing input after atom")
    return atom
