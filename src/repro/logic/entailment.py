"""Entailment, consistency, and validity services built on the SAT solver.

These are the logical queries an assurance-argument checker needs:

* does a set of premises entail a conclusion? (argument validity)
* are the premises mutually consistent? (the 'incompatible premises' fallacy)
* does a premise contradict the conclusion?
* is the conclusion already among the premises? (begging the question, the
  purely formal rendition)

The formal-fallacy detector (:mod:`repro.fallacies.formal_detector`) and the
Rushby-style what-if probing in :mod:`repro.experiments.sufficiency_study`
are both clients of this module.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .propositional import (
    FALSE,
    Formula,
    Not,
    conjoin,
    cnf_clauses,
)
from .sat import solve

__all__ = [
    "is_satisfiable",
    "is_valid",
    "entails",
    "consistent",
    "equivalent_sat",
    "independent",
    "minimal_inconsistent_subsets",
    "premises_used",
]


def is_satisfiable(formula: Formula) -> bool:
    """SAT-based satisfiability."""
    return bool(solve(cnf_clauses(formula)))


def is_valid(formula: Formula) -> bool:
    """SAT-based validity: the negation is unsatisfiable."""
    return not is_satisfiable(Not(formula))


def entails(premises: Iterable[Formula], conclusion: Formula) -> bool:
    """True when ``premises`` semantically entail ``conclusion``.

    Implemented by refutation: premises ∪ {¬conclusion} is unsatisfiable.
    """
    body = conjoin(list(premises) + [Not(conclusion)])
    return not is_satisfiable(body)


def consistent(formulas: Iterable[Formula]) -> bool:
    """True when the formulas have at least one common model."""
    return is_satisfiable(conjoin(formulas))


def equivalent_sat(left: Formula, right: Formula) -> bool:
    """SAT-based logical equivalence."""
    return entails([left], right) and entails([right], left)


def independent(premises: Sequence[Formula], conclusion: Formula) -> bool:
    """True when the conclusion is neither entailed nor refuted.

    An independent conclusion signals a *non sequitur* at the formal level:
    the premises say nothing about it either way.
    """
    if entails(premises, conclusion):
        return False
    if entails(premises, Not(conclusion)):
        return False
    return True


def minimal_inconsistent_subsets(
    formulas: Sequence[Formula], max_size: int | None = None
) -> list[tuple[int, ...]]:
    """Index tuples of minimal mutually inconsistent premise subsets.

    Checks subsets in increasing size order and suppresses supersets of
    already-found cores, so every returned tuple is minimal.  Exponential in
    the number of premises; assurance arguments keep this small.
    """
    from itertools import combinations

    limit = max_size if max_size is not None else len(formulas)
    found: list[tuple[int, ...]] = []
    for size in range(1, limit + 1):
        for indices in combinations(range(len(formulas)), size):
            if any(set(core).issubset(indices) for core in found):
                continue
            subset = [formulas[i] for i in indices]
            if not consistent(subset):
                found.append(indices)
    return found


def premises_used(
    premises: Sequence[Formula], conclusion: Formula
) -> tuple[int, ...]:
    """Indices of premises needed for entailment (greedy minimisation).

    Implements the 'what-if exploration' Rushby proposes [20]: remove each
    premise in turn and observe whether the proof still goes through.
    Returns the indices of a minimal entailing subset, or the full index
    range when the premises do not entail the conclusion at all.
    """
    if not entails(premises, conclusion):
        return tuple(range(len(premises)))
    keep = list(range(len(premises)))
    for index in list(keep):
        trial = [premises[i] for i in keep if i != index]
        if entails(trial, conclusion):
            keep.remove(index)
    return tuple(keep)
