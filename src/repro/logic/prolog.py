"""A mini-Prolog interpreter (SLD resolution) for definite-clause programs.

This engine exists to reproduce **Figure 1** of the paper — the 'Desert
Bank' argument::

    is_a(desert_bank, bank).
    adjacent(bank, river).
    adjacent(X, Y) :- is_a(X, Z), adjacent(Z, Y).

from which Prolog happily 'proves' ``adjacent(desert_bank, river)``.  The
program is formally impeccable; the flaw is an *equivocation* — 'bank'
names two different real-world things — which no machine can see because
machines process form, not meaning (paper §IV.C).

The interpreter implements standard SLD resolution with leftmost goal
selection and clause order as written, depth-limited to keep termination
under user control.  Negation-as-failure is available via ``\\+`` goals so
the policy-checking layer (:mod:`repro.formalise.policy`) can express
denial conditions.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from .terms import (
    Atom,
    Substitution,
    Term,
    Var,
    parse_atom,
)

__all__ = [
    "Clause",
    "Goal",
    "Program",
    "Solution",
    "PrologError",
    "DepthLimitExceeded",
    "parse_program",
    "parse_clause",
    "desert_bank_program",
]


@dataclass(frozen=True)
class Goal:
    """A literal goal; ``negated`` marks a negation-as-failure goal."""

    atom: Atom
    negated: bool = False

    def __str__(self) -> str:
        return f"\\+ {self.atom}" if self.negated else str(self.atom)


@dataclass(frozen=True)
class Clause:
    """A definite clause ``head :- body``.  Facts have an empty body."""

    head: Atom
    body: tuple[Goal, ...] = ()

    def __str__(self) -> str:
        if not self.body:
            return f"{self.head}."
        body_text = ", ".join(str(g) for g in self.body)
        return f"{self.head} :- {body_text}."

    def rename(self, suffix: str) -> "Clause":
        """Standardise the clause apart with fresh variable names."""
        all_vars: set[Var] = set(self.head.variables())
        for goal in self.body:
            all_vars.update(goal.atom.variables())
        renaming = Substitution(
            {var: Var(f"{var.name}_{suffix}") for var in all_vars}
        )
        return Clause(
            renaming.apply_atom(self.head),
            tuple(
                Goal(renaming.apply_atom(g.atom), g.negated)
                for g in self.body
            ),
        )


@dataclass(frozen=True)
class Solution:
    """One answer to a query: bindings for the query's variables."""

    bindings: Substitution
    depth: int

    def __getitem__(self, name: str) -> Term:
        return self.bindings[Var(name)]

    def as_dict(self) -> dict[str, str]:
        """Bindings rendered as strings, keyed by variable name."""
        return {var.name: str(term) for var, term in self.bindings.items()}


class PrologError(Exception):
    """Raised for malformed programs or queries."""


class DepthLimitExceeded(PrologError):
    """Raised when resolution exceeds the configured depth limit."""


class Program:
    """A mini-Prolog program: an ordered list of definite clauses."""

    def __init__(self, clauses: Sequence[Clause] = ()) -> None:
        self.clauses: list[Clause] = list(clauses)
        self._fresh_counter = itertools.count()

    def add(self, clause: Clause) -> None:
        """Append a clause (clause order affects the search, as in Prolog)."""
        self.clauses.append(clause)

    def add_fact(self, text: str) -> None:
        """Parse and append a fact, e.g. ``is_a(desert_bank, bank)``."""
        self.add(Clause(parse_atom(text.rstrip("."))))

    def add_rule(self, head: str, *body: str) -> None:
        """Parse and append a rule from head and body atom texts."""
        goals = tuple(_parse_goal(b) for b in body)
        self.add(Clause(parse_atom(head), goals))

    def solve(
        self,
        query: Atom | str,
        max_depth: int = 200,
        max_solutions: int | None = None,
    ) -> list[Solution]:
        """All solutions to the query, in SLD search order.

        ``max_depth`` bounds the resolution depth (raising
        :class:`DepthLimitExceeded` protects against the left recursion that
        naive encodings of transitive rules produce).  ``max_solutions``
        truncates the answer list without error.
        """
        out: list[Solution] = []
        for solution in self.iter_solve(query, max_depth=max_depth):
            out.append(solution)
            if max_solutions is not None and len(out) >= max_solutions:
                break
        return out

    def iter_solve(
        self, query: Atom | str, max_depth: int = 200
    ) -> Iterator[Solution]:
        """Lazily yield solutions to the query."""
        atom = parse_atom(query) if isinstance(query, str) else query
        query_vars = sorted(atom.variables(), key=lambda v: v.name)
        for subst, depth in self._prove(
            (Goal(atom),), Substitution(), 0, max_depth
        ):
            # Resolve binding chains (X -> X_2 -> desert_bank) before
            # projecting onto the query's variables.
            resolved = Substitution(
                {var: subst.apply(var) for var in query_vars}
            )
            yield Solution(resolved, depth)

    def provable(self, query: Atom | str, max_depth: int = 200) -> bool:
        """True when the query has at least one solution."""
        for _ in self.iter_solve(query, max_depth=max_depth):
            return True
        return False

    def _prove(
        self,
        goals: tuple[Goal, ...],
        subst: Substitution,
        depth: int,
        max_depth: int,
    ) -> Iterator[tuple[Substitution, int]]:
        if not goals:
            yield subst, depth
            return
        if depth >= max_depth:
            raise DepthLimitExceeded(
                f"resolution depth {max_depth} exceeded proving {goals[0]}"
            )
        goal, rest = goals[0], goals[1:]
        current = subst.apply_atom(goal.atom)
        if goal.negated:
            if not current.is_ground():
                raise PrologError(
                    f"negation-as-failure goal must be ground: {current}"
                )
            if not self.provable(current, max_depth=max_depth - depth):
                yield from self._prove(rest, subst, depth + 1, max_depth)
            return
        from .unification import unify_atoms

        for clause in self.clauses:
            fresh = clause.rename(str(next(self._fresh_counter)))
            unifier = unify_atoms(
                current, fresh.head, subst, occurs_check=True
            )
            if unifier is None:
                continue
            yield from self._prove(
                fresh.body + rest, unifier, depth + 1, max_depth
            )

    def __len__(self) -> int:
        return len(self.clauses)

    def __str__(self) -> str:
        return "\n".join(str(c) for c in self.clauses)


def _parse_goal(text: str) -> Goal:
    stripped = text.strip()
    if stripped.startswith("\\+"):
        return Goal(parse_atom(stripped[2:].strip()), negated=True)
    return Goal(parse_atom(stripped))


def parse_clause(text: str) -> Clause:
    """Parse one clause in Prolog syntax (fact or ``head :- body.``)."""
    stripped = text.strip().rstrip(".")
    if not stripped:
        raise PrologError("empty clause")
    if ":-" in stripped:
        head_text, body_text = stripped.split(":-", 1)
        body = tuple(
            _parse_goal(part)
            for part in _split_goals(body_text)
        )
        return Clause(parse_atom(head_text.strip()), body)
    return Clause(parse_atom(stripped))


def _split_goals(body_text: str) -> list[str]:
    """Split a clause body on top-level commas (commas inside parens bind)."""
    parts: list[str] = []
    depth = 0
    current: list[str] = []
    for char in body_text:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        if char == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    if current:
        parts.append("".join(current))
    return [p for p in (part.strip() for part in parts) if p]


def parse_program(text: str) -> Program:
    """Parse a program: one clause per ``.``-terminated statement.

    Statements may share a line or span lines; ``%`` starts a comment.
    """
    stripped_lines = []
    for raw_line in text.splitlines():
        line = raw_line.split("%", 1)[0].strip()
        if line:
            stripped_lines.append(line)
    source = " ".join(stripped_lines)
    program = Program()
    depth = 0
    statement: list[str] = []
    for char in source:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        if char == "." and depth == 0:
            clause_text = "".join(statement).strip()
            if clause_text:
                program.add(parse_clause(clause_text))
            statement = []
        else:
            statement.append(char)
    if "".join(statement).strip():
        raise PrologError(
            f"unterminated clause: {''.join(statement).strip()!r}"
        )
    return program


def desert_bank_program() -> Program:
    """Figure 1 of the paper, verbatim.

    ::

        is_a(desert_bank, bank).
        adjacent(bank, river).
        adjacent(X, Y) :- is_a(X, Z), adjacent(Z, Y).

    The query ``adjacent(desert_bank, river)`` succeeds — a formally valid
    derivation of a false real-world conclusion, because 'bank' equivocates
    between a financial institution and a riverbank.
    """
    return parse_program(
        """
        is_a(desert_bank, bank).
        adjacent(bank, river).
        adjacent(X, Y) :- is_a(X, Z), adjacent(Z, Y).
        """
    )
