"""A clausal resolution refutation prover for first-order logic.

Basir, Denney & Fischer note that automatically-generated *resolution*
proofs 'can be obscure' and prefer natural-deduction style (§III.E).  This
module supplies the resolution side of that comparison: a saturation-based
refutation prover over first-order clauses, with factoring.  The
proof-to-argument generator can consume either proof style, letting the
benchmarks compare the readability (node count, depth) of arguments
generated from each.

Clauses here are disjunctions of first-order literals; proving
``premises |- goal`` is done by refuting ``premises + ¬goal``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from .terms import Atom, Substitution, Var
from .unification import unify_atoms

__all__ = [
    "FolLiteral",
    "FolClause",
    "ResolutionStep",
    "ResolutionProof",
    "ResolutionProver",
    "prove",
]


@dataclass(frozen=True, slots=True)
class FolLiteral:
    """A first-order literal: an atom or its negation."""

    atom: Atom
    positive: bool = True

    def negate(self) -> "FolLiteral":
        """The complementary literal."""
        return FolLiteral(self.atom, not self.positive)

    def apply(self, subst: Substitution) -> "FolLiteral":
        """Apply a substitution to the underlying atom."""
        return FolLiteral(subst.apply_atom(self.atom), self.positive)

    def __str__(self) -> str:
        return str(self.atom) if self.positive else f"~{self.atom}"


@dataclass(frozen=True, slots=True)
class FolClause:
    """A clause: the disjunction of its literals.  Empty clause = falsum."""

    literals: frozenset[FolLiteral]

    @classmethod
    def of(cls, *literals: FolLiteral) -> "FolClause":
        return cls(frozenset(literals))

    @property
    def is_empty(self) -> bool:
        return not self.literals

    def apply(self, subst: Substitution) -> "FolClause":
        return FolClause(
            frozenset(lit.apply(subst) for lit in self.literals)
        )

    def rename(self, suffix: str) -> "FolClause":
        all_vars: set[Var] = set()
        for literal in self.literals:
            all_vars.update(literal.atom.variables())
        renaming = Substitution(
            {var: Var(f"{var.name}_{suffix}") for var in all_vars}
        )
        return self.apply(renaming)

    def is_tautology(self) -> bool:
        """A clause containing complementary literals is always true."""
        return any(lit.negate() in self.literals for lit in self.literals)

    def __str__(self) -> str:
        if self.is_empty:
            return "[]"
        return " | ".join(sorted(str(lit) for lit in self.literals))

    def __len__(self) -> int:
        return len(self.literals)


@dataclass(frozen=True)
class ResolutionStep:
    """One derivation step: which parents resolved on which literal pair."""

    clause: FolClause
    parents: tuple[int, ...]
    rule: str  # 'input', 'resolve', or 'factor'

    def __str__(self) -> str:
        if self.rule == "input":
            return f"{self.clause}   (input)"
        parent_text = ", ".join(str(p) for p in self.parents)
        return f"{self.clause}   ({self.rule} {parent_text})"


@dataclass(frozen=True)
class ResolutionProof:
    """A refutation: numbered steps ending with the empty clause.

    ``steps[i]`` is step ``i`` (0-based); the proof is found when the last
    step's clause is empty.
    """

    steps: tuple[ResolutionStep, ...]
    found: bool

    def used_steps(self) -> list[int]:
        """Indices of steps reachable backwards from the empty clause."""
        if not self.found:
            return []
        pending = [len(self.steps) - 1]
        seen: set[int] = set()
        while pending:
            index = pending.pop()
            if index in seen:
                continue
            seen.add(index)
            pending.extend(self.steps[index].parents)
        return sorted(seen)

    def __str__(self) -> str:
        lines = [
            f"{index:>3}  {step}" for index, step in enumerate(self.steps)
        ]
        verdict = "REFUTED" if self.found else "NOT REFUTED"
        return "\n".join(lines + [verdict])


class ResolutionProver:
    """Saturation prover: given-clause loop with factoring and subsumption.

    Bounded by ``max_clauses`` generated clauses so it always terminates;
    the bound is generous for the argument-scale problems in this library.
    """

    def __init__(self, max_clauses: int = 2000) -> None:
        self.max_clauses = max_clauses
        self._fresh = itertools.count()

    def refute(self, clauses: Iterable[FolClause]) -> ResolutionProof:
        """Search for the empty clause; returns the derivation trace."""
        steps: list[ResolutionStep] = []
        index_of: dict[FolClause, int] = {}

        def register(clause: FolClause, parents: tuple[int, ...],
                     rule: str) -> int | None:
            if clause.is_tautology():
                return None
            if clause in index_of:
                return None
            if any(_subsumes(steps[i].clause, clause)
                   for i in range(len(steps))):
                return None
            index = len(steps)
            steps.append(ResolutionStep(clause, parents, rule))
            index_of[clause] = index
            return index

        for clause in clauses:
            register(clause, (), "input")

        frontier = 0
        while frontier < len(steps) and len(steps) < self.max_clauses:
            given = steps[frontier].clause
            if given.is_empty:
                return ResolutionProof(tuple(steps), True)
            # Factor the given clause.
            for factored in self._factors(given):
                new_index = register(factored, (frontier,), "factor")
                if new_index is not None and factored.is_empty:
                    return ResolutionProof(tuple(steps), True)
            # Resolve against all earlier clauses (including itself).
            for other_index in range(frontier + 1):
                other = steps[other_index].clause
                for resolvent in self._resolvents(given, other):
                    new_index = register(
                        resolvent, (frontier, other_index), "resolve"
                    )
                    if new_index is not None and resolvent.is_empty:
                        return ResolutionProof(tuple(steps), True)
            frontier += 1
        return ResolutionProof(tuple(steps), False)

    def _resolvents(
        self, left: FolClause, right: FolClause
    ) -> Iterable[FolClause]:
        right = right.rename(f"r{next(self._fresh)}")
        for lit_left in left.literals:
            for lit_right in right.literals:
                if lit_left.positive == lit_right.positive:
                    continue
                unifier = unify_atoms(lit_left.atom, lit_right.atom)
                if unifier is None:
                    continue
                merged = (left.literals - {lit_left}) | (
                    right.literals - {lit_right}
                )
                yield FolClause(
                    frozenset(lit.apply(unifier) for lit in merged)
                )

    @staticmethod
    def _factors(clause: FolClause) -> Iterable[FolClause]:
        literals = list(clause.literals)
        for first, second in itertools.combinations(literals, 2):
            if first.positive != second.positive:
                continue
            unifier = unify_atoms(first.atom, second.atom)
            if unifier is None:
                continue
            yield FolClause(
                frozenset(lit.apply(unifier) for lit in clause.literals)
            )


def _subsumes(general: FolClause, specific: FolClause) -> bool:
    """Cheap subsumption: ground/equal-literal subset check only.

    Full theta-subsumption is NP-hard; the equal-subset approximation is
    sound (never discards a needed clause it shouldn't) and keeps the
    saturation loop fast.
    """
    return general.literals.issubset(specific.literals)


def prove(
    axioms: Sequence[FolClause], goal: Atom, max_clauses: int = 2000
) -> ResolutionProof:
    """Prove a ground or existential goal atom by refutation.

    Adds ``~goal`` to the axioms and searches for the empty clause.
    """
    negated = FolClause.of(FolLiteral(goal, positive=False))
    prover = ResolutionProver(max_clauses=max_clauses)
    return prover.refute(list(axioms) + [negated])
