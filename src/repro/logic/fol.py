"""Multi-sorted first-order logic over finite domains.

Sokolsky, Lee & Heimdahl report 'exploring the use of multi-sorted
first-order logic for ... formalization [of safety arguments]' for medical
devices (§III.N).  This module realises that exploration: sorted
signatures, quantified formulas, sort checking, grounding over finite
domains, and model evaluation.  Because domains are finite, validity and
entailment are decidable here by grounding into propositional logic and
reusing the SAT layer — exactly the 'mechanical calculation' route Rushby
advocates.

The sort checker is also what gives Matsuno-style typed pattern parameters
their teeth: instantiating a placeholder of sort ``Hazard`` with a
``System`` constant is a sort error, caught mechanically.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence, Union

from . import propositional as prop
from .terms import Atom, Const, Func, Term, Var

__all__ = [
    "Sort",
    "Signature",
    "SortError",
    "FolFormula",
    "FolAtom",
    "FolNot",
    "FolAnd",
    "FolOr",
    "FolImplies",
    "ForAll",
    "Exists",
    "Interpretation",
    "ground",
    "evaluate_fol",
    "fol_valid",
    "fol_entails",
]


@dataclass(frozen=True, slots=True)
class Sort:
    """A named sort (type) of individuals, e.g. ``Hazard`` or ``Component``."""

    name: str

    def __str__(self) -> str:
        return self.name


class SortError(TypeError):
    """Raised when a term or formula violates the signature's sorts."""


@dataclass
class Signature:
    """A multi-sorted signature: sorts, typed constants, typed predicates.

    ``constants`` maps constant name -> sort; ``predicates`` maps predicate
    name -> argument sort tuple; ``functions`` maps function name ->
    (argument sorts, result sort).
    """

    sorts: set[Sort] = field(default_factory=set)
    constants: dict[str, Sort] = field(default_factory=dict)
    predicates: dict[str, tuple[Sort, ...]] = field(default_factory=dict)
    functions: dict[str, tuple[tuple[Sort, ...], Sort]] = field(
        default_factory=dict
    )

    def declare_sort(self, name: str) -> Sort:
        """Add (or fetch) a sort by name."""
        sort = Sort(name)
        self.sorts.add(sort)
        return sort

    def declare_constant(self, name: str, sort: Sort) -> Const:
        """Add a typed constant."""
        self._require_sort(sort)
        existing = self.constants.get(name)
        if existing is not None and existing != sort:
            raise SortError(
                f"constant {name!r} already declared with sort {existing}"
            )
        self.constants[name] = sort
        return Const(name)

    def declare_predicate(self, name: str, *arg_sorts: Sort) -> str:
        """Add a typed predicate symbol."""
        for sort in arg_sorts:
            self._require_sort(sort)
        existing = self.predicates.get(name)
        if existing is not None and existing != tuple(arg_sorts):
            raise SortError(
                f"predicate {name!r} already declared with sorts {existing}"
            )
        self.predicates[name] = tuple(arg_sorts)
        return name

    def declare_function(
        self, name: str, arg_sorts: Sequence[Sort], result: Sort
    ) -> str:
        """Add a typed function symbol."""
        for sort in tuple(arg_sorts) + (result,):
            self._require_sort(sort)
        self.functions[name] = (tuple(arg_sorts), result)
        return name

    def _require_sort(self, sort: Sort) -> None:
        if sort not in self.sorts:
            raise SortError(f"sort {sort} not declared")

    def sort_of_term(
        self, term: Term, var_sorts: Mapping[Var, Sort]
    ) -> Sort:
        """Infer the sort of a term, raising :class:`SortError` on misuse."""
        if isinstance(term, Var):
            try:
                return var_sorts[term]
            except KeyError:
                raise SortError(f"unbound variable {term}") from None
        if isinstance(term, Const):
            try:
                return self.constants[term.name]
            except KeyError:
                raise SortError(f"undeclared constant {term.name!r}") from None
        arg_sorts, result = self.functions.get(term.functor, (None, None))
        if result is None:
            raise SortError(f"undeclared function {term.functor!r}")
        if len(arg_sorts) != len(term.args):
            raise SortError(
                f"function {term.functor!r} arity mismatch"
            )
        for arg, wanted in zip(term.args, arg_sorts):
            actual = self.sort_of_term(arg, var_sorts)
            if actual != wanted:
                raise SortError(
                    f"argument {arg} of {term.functor!r} has sort "
                    f"{actual}, expected {wanted}"
                )
        return result

    def check_atom(self, atom: Atom, var_sorts: Mapping[Var, Sort]) -> None:
        """Sort-check one atomic formula."""
        wanted = self.predicates.get(atom.predicate)
        if wanted is None:
            raise SortError(f"undeclared predicate {atom.predicate!r}")
        if len(wanted) != len(atom.args):
            raise SortError(f"predicate {atom.predicate!r} arity mismatch")
        for arg, want in zip(atom.args, wanted):
            actual = self.sort_of_term(arg, var_sorts)
            if actual != want:
                raise SortError(
                    f"argument {arg} of {atom.predicate!r} has sort "
                    f"{actual}, expected {want}"
                )

    def constants_of_sort(self, sort: Sort) -> list[Const]:
        """All declared constants of the given sort, name-ordered."""
        return [
            Const(name)
            for name, declared in sorted(self.constants.items())
            if declared == sort
        ]


@dataclass(frozen=True, slots=True)
class FolAtom:
    """Atomic FOL formula wrapping a term-level atom."""

    atom: Atom

    def __str__(self) -> str:
        return str(self.atom)


@dataclass(frozen=True, slots=True)
class FolNot:
    operand: "FolFormula"

    def __str__(self) -> str:
        return f"~({self.operand})"


@dataclass(frozen=True, slots=True)
class FolAnd:
    left: "FolFormula"
    right: "FolFormula"

    def __str__(self) -> str:
        return f"({self.left} & {self.right})"


@dataclass(frozen=True, slots=True)
class FolOr:
    left: "FolFormula"
    right: "FolFormula"

    def __str__(self) -> str:
        return f"({self.left} | {self.right})"


@dataclass(frozen=True, slots=True)
class FolImplies:
    antecedent: "FolFormula"
    consequent: "FolFormula"

    def __str__(self) -> str:
        return f"({self.antecedent} -> {self.consequent})"


@dataclass(frozen=True, slots=True)
class ForAll:
    """Universal quantification over a sorted variable."""

    variable: Var
    sort: Sort
    body: "FolFormula"

    def __str__(self) -> str:
        return f"forall {self.variable}:{self.sort}. {self.body}"


@dataclass(frozen=True, slots=True)
class Exists:
    """Existential quantification over a sorted variable."""

    variable: Var
    sort: Sort
    body: "FolFormula"

    def __str__(self) -> str:
        return f"exists {self.variable}:{self.sort}. {self.body}"


FolFormula = Union[FolAtom, FolNot, FolAnd, FolOr, FolImplies, ForAll, Exists]


def sort_check(
    signature: Signature,
    formula: FolFormula,
    var_sorts: Mapping[Var, Sort] | None = None,
) -> None:
    """Check a formula against the signature; raise SortError on misuse."""
    bound = dict(var_sorts or {})
    _sort_check(signature, formula, bound)


def _sort_check(
    signature: Signature, formula: FolFormula, bound: dict[Var, Sort]
) -> None:
    if isinstance(formula, FolAtom):
        signature.check_atom(formula.atom, bound)
    elif isinstance(formula, FolNot):
        _sort_check(signature, formula.operand, bound)
    elif isinstance(formula, (FolAnd, FolOr)):
        _sort_check(signature, formula.left, bound)
        _sort_check(signature, formula.right, bound)
    elif isinstance(formula, FolImplies):
        _sort_check(signature, formula.antecedent, bound)
        _sort_check(signature, formula.consequent, bound)
    elif isinstance(formula, (ForAll, Exists)):
        inner = dict(bound)
        inner[formula.variable] = formula.sort
        _sort_check(signature, formula.body, inner)
    else:
        raise TypeError(f"not a FOL formula: {formula!r}")


def _substitute_term(term: Term, var: Var, value: Const) -> Term:
    if isinstance(term, Var):
        return value if term == var else term
    if isinstance(term, Const):
        return term
    return Func(
        term.functor,
        tuple(_substitute_term(a, var, value) for a in term.args),
    )


def _substitute(formula: FolFormula, var: Var, value: Const) -> FolFormula:
    if isinstance(formula, FolAtom):
        return FolAtom(Atom(
            formula.atom.predicate,
            tuple(
                _substitute_term(a, var, value) for a in formula.atom.args
            ),
        ))
    if isinstance(formula, FolNot):
        return FolNot(_substitute(formula.operand, var, value))
    if isinstance(formula, FolAnd):
        return FolAnd(
            _substitute(formula.left, var, value),
            _substitute(formula.right, var, value),
        )
    if isinstance(formula, FolOr):
        return FolOr(
            _substitute(formula.left, var, value),
            _substitute(formula.right, var, value),
        )
    if isinstance(formula, FolImplies):
        return FolImplies(
            _substitute(formula.antecedent, var, value),
            _substitute(formula.consequent, var, value),
        )
    if isinstance(formula, (ForAll, Exists)):
        if formula.variable == var:
            return formula  # shadowed
        rebuilt = _substitute(formula.body, var, value)
        kind = ForAll if isinstance(formula, ForAll) else Exists
        return kind(formula.variable, formula.sort, rebuilt)
    raise TypeError(f"not a FOL formula: {formula!r}")


def ground(signature: Signature, formula: FolFormula) -> prop.Formula:
    """Ground a sorted FOL formula into propositional logic.

    Quantifiers expand over the declared constants of their sort; ground
    atoms become propositional atoms named by their rendered text.  Raises
    :class:`SortError` if a quantified sort has no constants (the empty
    domain would make ``forall`` vacuously true and ``exists`` false, which
    is almost always an encoding mistake in assurance models).
    """
    if isinstance(formula, FolAtom):
        if not formula.atom.is_ground():
            raise SortError(f"free variable in atom {formula.atom}")
        return prop.Atom(_mangle(formula.atom))
    if isinstance(formula, FolNot):
        return prop.Not(ground(signature, formula.operand))
    if isinstance(formula, FolAnd):
        return prop.And(
            ground(signature, formula.left),
            ground(signature, formula.right),
        )
    if isinstance(formula, FolOr):
        return prop.Or(
            ground(signature, formula.left),
            ground(signature, formula.right),
        )
    if isinstance(formula, FolImplies):
        return prop.Implies(
            ground(signature, formula.antecedent),
            ground(signature, formula.consequent),
        )
    if isinstance(formula, (ForAll, Exists)):
        domain = signature.constants_of_sort(formula.sort)
        if not domain:
            raise SortError(
                f"sort {formula.sort} has no constants to ground over"
            )
        parts = [
            ground(
                signature,
                _substitute(formula.body, formula.variable, value),
            )
            for value in domain
        ]
        if isinstance(formula, ForAll):
            return prop.conjoin(parts)
        return prop.disjoin(parts)
    raise TypeError(f"not a FOL formula: {formula!r}")


def _mangle(atom: Atom) -> str:
    if not atom.args:
        return atom.predicate
    args = "_".join(str(a) for a in atom.args)
    return f"{atom.predicate}__{args}"


Interpretation = Mapping[str, bool]
"""Ground-atom truth assignment keyed by mangled atom name."""


def evaluate_fol(
    signature: Signature,
    formula: FolFormula,
    interpretation: Interpretation,
) -> bool:
    """Evaluate a closed formula in a finite interpretation.

    Atoms missing from the interpretation default to False (closed-world),
    matching how assurance models treat unasserted facts.
    """
    grounded = ground(signature, formula)
    valuation = {
        atom: interpretation.get(atom.name, False)
        for atom in prop.atoms_of(grounded)
    }
    return prop.evaluate(grounded, valuation)


def fol_valid(signature: Signature, formula: FolFormula) -> bool:
    """Finite-domain validity via grounding + SAT."""
    from .entailment import is_valid

    return is_valid(ground(signature, formula))


def fol_entails(
    signature: Signature,
    premises: Iterable[FolFormula],
    conclusion: FolFormula,
) -> bool:
    """Finite-domain entailment via grounding + SAT."""
    from .entailment import entails

    grounded = [ground(signature, p) for p in premises]
    return entails(grounded, ground(signature, conclusion))
