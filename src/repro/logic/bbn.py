"""A Bayesian belief network with exact inference by variable elimination.

The paper cites BBN modelling as one proposed mechanism for assessing
argument confidence (ref [34], discussed in §II.B and §V.B).  Crucially for
the paper's red-herring analysis: 'If argument confidence is assessed
mechanically (e.g., through BBN modelling), asserting [a rule drawing a
conclusion from an irrelevant premise] would artificially raise the
assessed confidence' (§V.B).  The ablation benchmark builds exactly that
scenario on this engine.

Variables are boolean.  Inference is exact: variable elimination with a
min-degree ordering, cross-checked against brute-force enumeration in
tests.  A noisy-OR helper builds the CPTs that argument-confidence models
typically use (each supporting premise independently 'leaks' confidence
into its conclusion).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

__all__ = ["Cpt", "BayesNet", "noisy_or_cpt", "BbnError"]


class BbnError(ValueError):
    """Raised for malformed networks or queries."""


@dataclass(frozen=True)
class Cpt:
    """A conditional probability table for a boolean variable.

    ``parents`` is the ordered parent tuple; ``table`` maps each complete
    parent-assignment tuple (booleans, in parent order) to
    ``P(variable = True | parents)``.
    """

    variable: str
    parents: tuple[str, ...]
    table: Mapping[tuple[bool, ...], float]

    def __post_init__(self) -> None:
        expected = 2 ** len(self.parents)
        if len(self.table) != expected:
            raise BbnError(
                f"CPT for {self.variable!r} needs {expected} rows, "
                f"got {len(self.table)}"
            )
        for key, value in self.table.items():
            if len(key) != len(self.parents):
                raise BbnError(
                    f"CPT row {key} does not match parents {self.parents}"
                )
            if not 0.0 <= value <= 1.0:
                raise BbnError(
                    f"probability {value} out of range in CPT for "
                    f"{self.variable!r}"
                )

    def probability(
        self, value: bool, parent_values: tuple[bool, ...]
    ) -> float:
        """``P(variable = value | parents = parent_values)``."""
        p_true = self.table[parent_values]
        return p_true if value else 1.0 - p_true


def noisy_or_cpt(
    variable: str,
    parents: Sequence[str],
    strengths: Sequence[float],
    leak: float = 0.0,
) -> Cpt:
    """A noisy-OR CPT: each true parent independently causes the variable.

    ``strengths[i]`` is the probability parent ``i`` alone suffices; ``leak``
    is the probability the variable is true with no parent active.  This is
    the standard shape for 'evidence supports claim' confidence links.
    """
    if len(strengths) != len(parents):
        raise BbnError("one strength per parent required")
    table: dict[tuple[bool, ...], float] = {}
    for row in itertools.product((False, True), repeat=len(parents)):
        failure = 1.0 - leak
        for active, strength in zip(row, strengths):
            if active:
                failure *= 1.0 - strength
        table[row] = 1.0 - failure
    return Cpt(variable, tuple(parents), table)


class BayesNet:
    """A boolean Bayesian network over named variables."""

    def __init__(self) -> None:
        self._cpts: dict[str, Cpt] = {}
        self._order: list[str] = []

    def add(self, cpt: Cpt) -> None:
        """Add a variable with its CPT; parents must already exist."""
        if cpt.variable in self._cpts:
            raise BbnError(f"variable {cpt.variable!r} already defined")
        for parent in cpt.parents:
            if parent not in self._cpts:
                raise BbnError(
                    f"parent {parent!r} of {cpt.variable!r} not defined yet"
                )
        self._cpts[cpt.variable] = cpt
        self._order.append(cpt.variable)

    def add_prior(self, variable: str, p_true: float) -> None:
        """Add a parentless variable with the given prior."""
        self.add(Cpt(variable, (), {(): p_true}))

    @property
    def variables(self) -> list[str]:
        """Topologically ordered variable names."""
        return list(self._order)

    def cpt(self, variable: str) -> Cpt:
        """The CPT of one variable."""
        try:
            return self._cpts[variable]
        except KeyError:
            raise BbnError(f"unknown variable {variable!r}") from None

    def query(
        self, variable: str, evidence: Mapping[str, bool] | None = None
    ) -> float:
        """``P(variable = True | evidence)`` by variable elimination."""
        if variable not in self._cpts:
            raise BbnError(f"unknown variable {variable!r}")
        evidence = dict(evidence or {})
        for name in evidence:
            if name not in self._cpts:
                raise BbnError(f"unknown evidence variable {name!r}")
        numerator = self._eliminate(
            {**evidence, variable: True}
        )
        denominator = self._eliminate(evidence)
        if denominator == 0.0:
            raise BbnError("evidence has zero probability")
        return numerator / denominator

    def joint(self, assignment: Mapping[str, bool]) -> float:
        """Full-joint probability of a complete assignment."""
        if set(assignment) != set(self._cpts):
            raise BbnError("assignment must cover every variable")
        product = 1.0
        for name in self._order:
            cpt = self._cpts[name]
            parent_values = tuple(assignment[p] for p in cpt.parents)
            product *= cpt.probability(assignment[name], parent_values)
        return product

    def query_bruteforce(
        self, variable: str, evidence: Mapping[str, bool] | None = None
    ) -> float:
        """Enumeration-based query; exponential, used as a test oracle."""
        evidence = dict(evidence or {})
        free = [v for v in self._order if v not in evidence]
        num = 0.0
        den = 0.0
        for bits in itertools.product((False, True), repeat=len(free)):
            assignment = dict(zip(free, bits))
            assignment.update(evidence)
            weight = self.joint(assignment)
            den += weight
            if assignment.get(variable, evidence.get(variable)):
                num += weight
        if den == 0.0:
            raise BbnError("evidence has zero probability")
        return num / den

    # -- variable elimination ------------------------------------------

    def _eliminate(self, evidence: Mapping[str, bool]) -> float:
        """Sum out all non-evidence variables; returns P(evidence)."""
        factors: list[_Factor] = []
        for name in self._order:
            factors.append(_Factor.from_cpt(self._cpts[name]))
        # Restrict factors by the evidence.
        factors = [f.restrict(evidence) for f in factors]
        hidden = [v for v in self._order if v not in evidence]
        # Min-degree elimination ordering.
        while hidden:
            hidden.sort(
                key=lambda v: sum(1 for f in factors if v in f.variables)
            )
            variable = hidden.pop(0)
            involved = [f for f in factors if variable in f.variables]
            remaining = [f for f in factors if variable not in f.variables]
            if not involved:
                continue
            product = involved[0]
            for factor in involved[1:]:
                product = product.multiply(factor)
            factors = remaining + [product.sum_out(variable)]
        result = 1.0
        for factor in factors:
            result *= factor.scalar()
        return result


@dataclass(frozen=True)
class _Factor:
    """A factor over boolean variables: table keyed by assignments."""

    variables: tuple[str, ...]
    table: Mapping[tuple[bool, ...], float]

    @classmethod
    def from_cpt(cls, cpt: Cpt) -> "_Factor":
        variables = cpt.parents + (cpt.variable,)
        table: dict[tuple[bool, ...], float] = {}
        for row in itertools.product((False, True), repeat=len(variables)):
            parent_values = row[:-1]
            table[row] = cpt.probability(row[-1], parent_values)
        return cls(variables, table)

    def restrict(self, evidence: Mapping[str, bool]) -> "_Factor":
        keep = [v for v in self.variables if v not in evidence]
        if len(keep) == len(self.variables):
            return self
        # Restriction selects matching rows; it does not sum.
        table: dict[tuple[bool, ...], float] = {}
        for row, value in self.table.items():
            assignment = dict(zip(self.variables, row))
            if all(
                assignment[v] == evidence[v]
                for v in self.variables
                if v in evidence
            ):
                table[tuple(assignment[v] for v in keep)] = value
        return _Factor(tuple(keep), table)

    def multiply(self, other: "_Factor") -> "_Factor":
        merged = tuple(dict.fromkeys(self.variables + other.variables))
        table: dict[tuple[bool, ...], float] = {}
        for row in itertools.product((False, True), repeat=len(merged)):
            assignment = dict(zip(merged, row))
            own = tuple(assignment[v] for v in self.variables)
            theirs = tuple(assignment[v] for v in other.variables)
            table[row] = self.table[own] * other.table[theirs]
        return _Factor(merged, table)

    def sum_out(self, variable: str) -> "_Factor":
        if variable not in self.variables:
            return self
        index = self.variables.index(variable)
        keep = tuple(
            v for i, v in enumerate(self.variables) if i != index
        )
        table: dict[tuple[bool, ...], float] = {}
        for row, value in self.table.items():
            key = tuple(b for i, b in enumerate(row) if i != index)
            table[key] = table.get(key, 0.0) + value
        return _Factor(keep, table)

    def scalar(self) -> float:
        """The value of a zero-variable factor."""
        if self.variables:
            # Sum out everything that remains (disconnected evidence-free
            # variables sum to 1 by construction).
            total = 0.0
            for value in self.table.values():
                total += value
            return total
        return self.table[()]
