"""A Fitch-style natural-deduction proof system and checker.

Natural deduction appears twice in the paper:

* Haley et al. give their security-satisfaction *outer arguments* as
  numbered natural-deduction proofs using Premise, Detach (-> elimination)
  and Split (& elimination) steps (§III.K); :func:`haley_outer_proof`
  reconstructs the exact 11-step proof from the 2008 paper.
* Basir, Denney & Fischer generate safety cases from 'natural deduction
  style proofs, which are closer to human reasoning than resolution
  proofs' (§III.E); :mod:`repro.formalise.proof_to_argument` consumes the
  checked proof objects defined here.

The checker validates each line against its cited rule and justification
lines, so an accepted proof is correct by construction.  Soundness —
premises true implies conclusion true — is exercised by property tests.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from .propositional import (
    And,
    Atom,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    parse,
)

__all__ = [
    "Rule",
    "ProofLine",
    "Proof",
    "ProofError",
    "check_proof",
    "ProofBuilder",
    "haley_outer_proof",
]


class Rule(enum.Enum):
    """Inference rules supported by the checker.

    ``DETACH`` and ``SPLIT`` are the names Haley et al. use for modus ponens
    (-> elimination) and & elimination; the conventional names are accepted
    as aliases via :meth:`from_name`.  ``CONCLUSION`` discharges the most
    recent undischarged premise, introducing an implication — this is how
    the Haley proof turns premise D and derived H into ``D -> H``.
    """

    PREMISE = "premise"
    ASSUMPTION = "assumption"
    DETACH = "detach"           # modus ponens / -> elimination
    SPLIT = "split"             # & elimination
    CONJOIN = "conjoin"         # & introduction
    ADD = "add"                 # | introduction
    CASES = "cases"             # | elimination
    MODUS_TOLLENS = "modus_tollens"
    DOUBLE_NEG = "double_negation"
    IFF_ELIM = "iff_elimination"
    IFF_INTRO = "iff_introduction"
    HYPOTHETICAL = "hypothetical_syllogism"
    REITERATE = "reiterate"
    CONCLUSION = "conclusion"   # conditional proof / -> introduction

    @classmethod
    def from_name(cls, name: str) -> "Rule":
        """Resolve a rule by canonical name or common alias."""
        aliases = {
            "modus_ponens": cls.DETACH,
            "->e": cls.DETACH,
            "&e": cls.SPLIT,
            "and_elimination": cls.SPLIT,
            "&i": cls.CONJOIN,
            "and_introduction": cls.CONJOIN,
            "|i": cls.ADD,
            "or_introduction": cls.ADD,
            "|e": cls.CASES,
            "or_elimination": cls.CASES,
            "->i": cls.CONCLUSION,
            "conditional_proof": cls.CONCLUSION,
        }
        lowered = name.lower()
        if lowered in aliases:
            return aliases[lowered]
        return cls(lowered)


@dataclass(frozen=True)
class ProofLine:
    """One numbered line of a proof.

    ``citations`` are 1-based line numbers of earlier lines that justify
    this one; their required count and shape depend on the rule.
    """

    number: int
    formula: Formula
    rule: Rule
    citations: tuple[int, ...] = ()

    def __str__(self) -> str:
        cite = ", ".join(str(c) for c in self.citations)
        rule_text = self.rule.value.replace("_", " ").title()
        suffix = f" ({rule_text}{', ' + cite if cite else ''})"
        return f"{self.number:>3}  {self.formula}{suffix}"


@dataclass(frozen=True)
class Proof:
    """An immutable sequence of proof lines; the last line is the conclusion."""

    lines: tuple[ProofLine, ...]

    @property
    def conclusion(self) -> Formula:
        """The formula established by the final line."""
        if not self.lines:
            raise ValueError("empty proof has no conclusion")
        return self.lines[-1].formula

    @property
    def premises(self) -> tuple[Formula, ...]:
        """All formulas introduced by the PREMISE rule."""
        return tuple(
            line.formula for line in self.lines if line.rule is Rule.PREMISE
        )

    def __str__(self) -> str:
        return "\n".join(str(line) for line in self.lines)

    def __len__(self) -> int:
        return len(self.lines)


class ProofError(ValueError):
    """Raised when a proof line does not follow by its cited rule."""

    def __init__(self, line: ProofLine, reason: str) -> None:
        super().__init__(f"line {line.number}: {reason}")
        self.line = line
        self.reason = reason


def check_proof(proof: Proof) -> bool:
    """Validate every line of the proof; raise :class:`ProofError` on failure.

    Returns True so callers can assert on the result.  Line numbers must be
    1..n in order; citations must refer to earlier lines.
    """
    derived: dict[int, Formula] = {}
    premise_stack: list[int] = []  # undischarged premise/assumption lines
    for expected_number, line in enumerate(proof.lines, start=1):
        if line.number != expected_number:
            raise ProofError(
                line, f"expected line number {expected_number}"
            )
        for cited in line.citations:
            if cited >= line.number or cited < 1:
                raise ProofError(line, f"citation {cited} not an earlier line")
            if cited not in derived:
                raise ProofError(line, f"citation {cited} unknown")
        _check_line(line, derived, premise_stack)
        derived[line.number] = line.formula
        if line.rule in (Rule.PREMISE, Rule.ASSUMPTION):
            premise_stack.append(line.number)
    return True


def _check_line(
    line: ProofLine,
    derived: dict[int, Formula],
    premise_stack: list[int],
) -> None:
    rule = line.rule
    cited = [derived[c] for c in line.citations]

    if rule in (Rule.PREMISE, Rule.ASSUMPTION):
        if line.citations:
            raise ProofError(line, f"{rule.value} takes no citations")
        return

    if rule is Rule.DETACH:
        _expect_citations(line, 2)
        implication, antecedent = _find_implication(line, cited)
        if implication.antecedent != antecedent:
            raise ProofError(
                line,
                f"antecedent {antecedent} does not match "
                f"{implication.antecedent}",
            )
        if implication.consequent != line.formula:
            raise ProofError(line, "formula is not the implication consequent")
        return

    if rule is Rule.SPLIT:
        _expect_citations(line, 1)
        conjunction = cited[0]
        if not isinstance(conjunction, And):
            raise ProofError(line, "Split requires a conjunction")
        if line.formula not in (conjunction.left, conjunction.right):
            raise ProofError(line, "formula is not a conjunct of the citation")
        return

    if rule is Rule.CONJOIN:
        _expect_citations(line, 2)
        if not isinstance(line.formula, And):
            raise ProofError(line, "Conjoin must derive a conjunction")
        if {line.formula.left, line.formula.right} != set(cited) and not (
            line.formula.left == cited[0] and line.formula.right == cited[1]
        ):
            raise ProofError(line, "conjuncts do not match citations")
        return

    if rule is Rule.ADD:
        _expect_citations(line, 1)
        if not isinstance(line.formula, Or):
            raise ProofError(line, "Add must derive a disjunction")
        if cited[0] not in (line.formula.left, line.formula.right):
            raise ProofError(line, "citation is not a disjunct of the formula")
        return

    if rule is Rule.CASES:
        _expect_citations(line, 3)
        disjunction = next(
            (c for c in cited if isinstance(c, Or)), None
        )
        if disjunction is None:
            raise ProofError(line, "Cases requires a disjunction citation")
        others = [c for c in cited if c is not disjunction]
        wanted = {
            Implies(disjunction.left, line.formula),
            Implies(disjunction.right, line.formula),
        }
        if set(others) != wanted:
            raise ProofError(
                line, "Cases requires implications from both disjuncts"
            )
        return

    if rule is Rule.MODUS_TOLLENS:
        _expect_citations(line, 2)
        implication = next(
            (c for c in cited if isinstance(c, Implies)), None
        )
        if implication is None:
            raise ProofError(line, "Modus Tollens requires an implication")
        negated_consequent = next(
            (c for c in cited if c is not implication), None
        )
        if negated_consequent != Not(implication.consequent):
            raise ProofError(
                line, "second citation must negate the consequent"
            )
        if line.formula != Not(implication.antecedent):
            raise ProofError(
                line, "formula must negate the antecedent"
            )
        return

    if rule is Rule.DOUBLE_NEG:
        _expect_citations(line, 1)
        if cited[0] == Not(Not(line.formula)):
            return
        if line.formula == Not(Not(cited[0])):
            return
        raise ProofError(line, "double negation does not match")

    if rule is Rule.IFF_ELIM:
        _expect_citations(line, 1)
        if not isinstance(cited[0], Iff):
            raise ProofError(line, "Iff elimination requires a biconditional")
        allowed = {
            Implies(cited[0].left, cited[0].right),
            Implies(cited[0].right, cited[0].left),
        }
        if line.formula not in allowed:
            raise ProofError(line, "formula is not a direction of the iff")
        return

    if rule is Rule.IFF_INTRO:
        _expect_citations(line, 2)
        if not isinstance(line.formula, Iff):
            raise ProofError(line, "Iff introduction must derive an iff")
        wanted = {
            Implies(line.formula.left, line.formula.right),
            Implies(line.formula.right, line.formula.left),
        }
        if set(cited) != wanted:
            raise ProofError(line, "citations must be both implications")
        return

    if rule is Rule.HYPOTHETICAL:
        _expect_citations(line, 2)
        first, second = cited
        if not (isinstance(first, Implies) and isinstance(second, Implies)):
            raise ProofError(line, "requires two implications")
        chained = None
        if first.consequent == second.antecedent:
            chained = Implies(first.antecedent, second.consequent)
        elif second.consequent == first.antecedent:
            chained = Implies(second.antecedent, first.consequent)
        if chained != line.formula:
            raise ProofError(line, "implications do not chain to the formula")
        return

    if rule is Rule.REITERATE:
        _expect_citations(line, 1)
        if cited[0] != line.formula:
            raise ProofError(line, "reiterated formula differs")
        return

    if rule is Rule.CONCLUSION:
        # Conditional proof: cite the premise line to discharge; the formula
        # must be premise -> (some previously derived formula).
        _expect_citations(line, 1)
        if not isinstance(line.formula, Implies):
            raise ProofError(line, "Conclusion must derive an implication")
        discharged = cited[0]
        if line.formula.antecedent != discharged:
            raise ProofError(
                line, "antecedent must be the discharged premise"
            )
        if line.formula.consequent not in derived.values():
            raise ProofError(
                line, "consequent has not been derived"
            )
        return

    raise ProofError(line, f"unsupported rule {rule}")


def _expect_citations(line: ProofLine, count: int) -> None:
    if len(line.citations) != count:
        raise ProofError(
            line,
            f"{line.rule.value} requires {count} citation(s), "
            f"got {len(line.citations)}",
        )


def _find_implication(
    line: ProofLine, cited: Sequence[Formula]
) -> tuple[Implies, Formula]:
    for index, candidate in enumerate(cited):
        if isinstance(candidate, Implies):
            other = cited[1 - index]
            return candidate, other
    raise ProofError(line, "Detach requires an implication citation")


class ProofBuilder:
    """Incremental proof construction with automatic line numbering.

    Example::

        builder = ProofBuilder()
        p = builder.premise("p -> q")
        q = builder.premise("p")
        builder.detach(p, q)          # derives q
        proof = builder.build()
    """

    def __init__(self) -> None:
        self._lines: list[ProofLine] = []

    def _add(
        self, formula: Formula | str, rule: Rule, citations: tuple[int, ...]
    ) -> int:
        parsed = parse(formula) if isinstance(formula, str) else formula
        number = len(self._lines) + 1
        self._lines.append(ProofLine(number, parsed, rule, citations))
        return number

    def premise(self, formula: Formula | str) -> int:
        """Add a premise; returns its line number."""
        return self._add(formula, Rule.PREMISE, ())

    def assumption(self, formula: Formula | str) -> int:
        """Add an assumption for later discharge."""
        return self._add(formula, Rule.ASSUMPTION, ())

    def detach(self, implication_line: int, antecedent_line: int) -> int:
        """Modus ponens: from ``p -> q`` and ``p`` derive ``q``."""
        implication = self._formula(implication_line)
        if not isinstance(implication, Implies):
            raise ValueError(
                f"line {implication_line} is not an implication"
            )
        return self._add(
            implication.consequent,
            Rule.DETACH,
            (implication_line, antecedent_line),
        )

    def split(self, conjunction_line: int, keep_left: bool = True) -> int:
        """& elimination: derive the chosen conjunct."""
        conjunction = self._formula(conjunction_line)
        if not isinstance(conjunction, And):
            raise ValueError(f"line {conjunction_line} is not a conjunction")
        part = conjunction.left if keep_left else conjunction.right
        return self._add(part, Rule.SPLIT, (conjunction_line,))

    def conjoin(self, left_line: int, right_line: int) -> int:
        """& introduction."""
        formula = And(self._formula(left_line), self._formula(right_line))
        return self._add(formula, Rule.CONJOIN, (left_line, right_line))

    def add_disjunct(self, line: int, other: Formula | str,
                     on_left: bool = False) -> int:
        """| introduction: weaken a derived formula with a disjunct."""
        extra = parse(other) if isinstance(other, str) else other
        have = self._formula(line)
        formula = Or(extra, have) if on_left else Or(have, extra)
        return self._add(formula, Rule.ADD, (line,))

    def modus_tollens(self, implication_line: int, negation_line: int) -> int:
        """From ``p -> q`` and ``~q`` derive ``~p``."""
        implication = self._formula(implication_line)
        if not isinstance(implication, Implies):
            raise ValueError(f"line {implication_line} is not an implication")
        return self._add(
            Not(implication.antecedent),
            Rule.MODUS_TOLLENS,
            (implication_line, negation_line),
        )

    def conclude(self, premise_line: int, consequent_line: int) -> int:
        """Conditional proof: discharge a premise into an implication."""
        formula = Implies(
            self._formula(premise_line), self._formula(consequent_line)
        )
        return self._add(formula, Rule.CONCLUSION, (premise_line,))

    def reiterate(self, line: int) -> int:
        """Repeat an earlier line."""
        return self._add(self._formula(line), Rule.REITERATE, (line,))

    def _formula(self, line: int) -> Formula:
        if not 1 <= line <= len(self._lines):
            raise ValueError(f"no such line {line}")
        return self._lines[line - 1].formula

    def build(self, check: bool = True) -> Proof:
        """Finish and (by default) validate the proof."""
        proof = Proof(tuple(self._lines))
        if check:
            check_proof(proof)
        return proof


def haley_outer_proof() -> Proof:
    """The 11-step outer argument from Haley et al. 2008, exactly as cited.

    The atoms carry the meanings Haley et al. assign: I (system induction),
    V (valid credentials), C (credentials checked), H (holder is HR member),
    Y (system behaves as designed), D (system is deployed).  The proof
    establishes ``D -> H`` by conditional proof over premise 5.

    ::

         1  I -> V         (Premise)
         2  C -> H         (Premise)
         3  Y -> V & C     (Premise)
         4  D -> Y         (Premise)
         5  D              (Premise)
         6  Y              (Detach, 4, 5)
         7  V & C          (Detach, 3, 6)
         8  V              (Split, 7)
         9  C              (Split, 7)
        10  H              (Detach, 2, 9)
        11  D -> H         (Conclusion, 5)
    """
    builder = ProofBuilder()
    builder.premise("I -> V")                       # 1
    line_c_h = builder.premise("C -> H")            # 2
    line_y_vc = builder.premise("Y -> V & C")       # 3
    line_d_y = builder.premise("D -> Y")            # 4
    line_d = builder.premise("D")                   # 5
    line_y = builder.detach(line_d_y, line_d)       # 6
    line_vc = builder.detach(line_y_vc, line_y)     # 7
    builder.split(line_vc, keep_left=True)          # 8: V
    line_c = builder.split(line_vc, keep_left=False)  # 9: C
    line_h = builder.detach(line_c_h, line_c)       # 10: H
    builder.conclude(line_d, line_h)                # 11: D -> H
    return builder.build()
