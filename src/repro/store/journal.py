"""The append-only edit journal of the persistent sharded store.

A tool-generated case is not written once and frozen: an editing session
applies hundreds of small mutations, and re-sharding the whole store per
save would cost O(store) where the change is O(delta).  This module
gives :class:`~repro.store.reader.StoredArgument` three operations that
keep an on-disk case cheap to maintain:

* :func:`append_delta` — serialise one
  :class:`~repro.core.argument.MutationDelta` as a sealed JSONL journal
  segment (same durability story as shards: streamed to ``.tmp``,
  content-addressed rename, count + CRC-32 in the manifest, atomic
  manifest swap as the commit point), so a save after an edit costs
  O(delta) writes;
* :func:`compact` — fold every journal segment back into fresh
  content-addressed node/link shards in one atomic manifest swap.  The
  compacted store is **byte-identical** to a clean ``save()`` of the
  same live argument (once :func:`gc` sweeps the superseded files):
  replay reproduces exact insertion order (removed identifiers vanish,
  re-added ones order last, replacements keep their position) and the
  writer re-canonicalises every record;
* :func:`coalesce` — merge all journal segments into one without
  touching the shards: same op stream, bounded manifest, so a
  months-long editing session cannot grow the segment list without
  bound (``append_delta`` triggers it automatically at
  :data:`COALESCE_AFTER` segments);
* :func:`gc` — remove shard/segment files in the store directory that
  the live manifest no longer references (failed saves and appends,
  superseded generations left behind for pinned snapshot readers).
  Only files matching the store's own naming scheme are ever touched.

Every one of these runs under the store's **writer lease**
(:mod:`repro.store.lease`), and the journal write paths
compare-and-append: a handle whose manifest view went stale raises
:class:`~repro.store.format.StoreConflictError` instead of silently
committing over another writer's generation.

Readers consume the journal through :class:`JournalOverlay`: one parse
of the (small) segments yields the shadow/tombstone/append maps that
:class:`~repro.store.reader.StoredArgument` layers over its base shards
for every access path — ``load``, ``node``, ``subtree``, streaming and
per-shard iteration.  The decoded operation list doubles as the
persisted delta stream that
:meth:`repro.core.analysis.IncrementalChecker.from_store` consumes to
re-check a stored case without hydrating it.

Crash semantics: a sealed segment enters the manifest atomically, so an
interrupted append leaves the previous state loadable (at worst an
orphaned segment file for :func:`gc`).  A *final* segment whose content
fails verification — a torn write at the filesystem level — raises
:class:`~repro.store.format.StoreCorruptionError` naming the segment
and the ``ignore_torn_tail`` recovery; opening the store with
``StoredArgument(path, ignore_torn_tail=True)`` drops exactly that last
segment (one whole append, the journal's atomicity unit) and surfaces
the previous consistent state.  A damaged *non-final* segment is real
corruption and always raises.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING, Any, Iterable

from ..core.argument import Link, LinkKind, MutationDelta
from ..core.nodes import Node, NodeType
from ..notation.json_io import node_from_payload
from .format import (
    JOURNAL_SCHEMA_VERSION,
    LEASE_NAME,
    MANIFEST_NAME,
    StoreCorruptionError,
    StoreError,
    journal_base,
)
from .lease import writer_lease
from .writer import (
    _commit,
    _node_record,
    _ShardWriter,
    _write_graph,
    _write_sharded,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (reader imports us)
    from .reader import StoredArgument

__all__ = [
    "JournalOverlay",
    "append_delta",
    "coalesce",
    "compact",
    "gc",
    "encode_op",
    "decode_op",
]

#: Journal length at which ``append_delta`` coalesces the segments into
#: one before appending — the manifest (and every fresh reader's replay
#: cost) stays bounded however long the editing session runs.
COALESCE_AFTER = 64


#: Mutation op codes a journal record may carry (the delta protocol's).
_NODE_OPS = ("add_node", "remove_node")
_LINK_OPS = ("add_link", "remove_link")
_OPS = _NODE_OPS + _LINK_OPS + ("replace_node",)


def _link_payload(link: Link) -> dict[str, str]:
    return {
        "source": link.source, "target": link.target, "kind": link.kind.value,
    }


def _canonical_node_payload(node: Node) -> dict[str, Any]:
    # The same canonical metadata form the shard writer produces, so a
    # replayed node re-serialises byte-identically under compaction.
    payload = _node_record(0, node)
    del payload["seq"]
    return payload


def encode_op(op: str, payload: Any) -> dict[str, Any]:
    """One journal record: a mutation op plus its serialised payload."""
    if op == "replace_node":
        old, new = payload
        return {
            "op": op,
            "old": _canonical_node_payload(old),
            "new": _canonical_node_payload(new),
        }
    if op in _NODE_OPS:
        return {"op": op, "node": _canonical_node_payload(payload)}
    if op in _LINK_OPS:
        return {"op": op, "link": _link_payload(payload)}
    raise StoreError(f"unknown mutation op {op!r} cannot be journalled")


def _link_from_payload(payload: dict[str, Any]) -> Link:
    return Link(
        payload["source"], payload["target"], LinkKind(payload["kind"])
    )


def decode_op(record: dict[str, Any], segment: str) -> tuple[str, Any]:
    """Rebuild the ``(op, payload)`` mutation a journal record encodes."""
    op = record.get("op")
    try:
        if op == "replace_node":
            return op, (
                node_from_payload(record["old"]),
                node_from_payload(record["new"]),
            )
        if op in _NODE_OPS:
            return op, node_from_payload(record["node"])
        if op in _LINK_OPS:
            return op, _link_from_payload(record["link"])
    except (KeyError, TypeError, ValueError) as error:
        raise StoreCorruptionError(
            segment, f"malformed {op!r} journal record ({error})"
        ) from None
    raise StoreCorruptionError(segment, f"unknown journal op {op!r}")


class JournalOverlay:
    """The parsed journal: what shadows, what vanished, what appended.

    Replaying the decoded operation list in order reproduces exactly the
    live argument's insertion-order semantics:

    * a **replaced** identifier keeps its base position (``node_shadow``
      maps it to the replacement);
    * a **removed** base identifier leaves a tombstone (``node_shadow``
      maps it to ``None``) — and if later re-added, the new node orders
      *after* every base record (``appended_nodes``), exactly where a
      live argument's insertion-ordered dict puts a re-added key;
    * links behave the same way (``link_tombstones`` /
      ``appended_links``), keyed by the full ``(source, target, kind)``
      triple, which an argument keeps unique.

    Appended records carry synthetic sequence numbers continuing the
    base numbering (``base_total + position``), so every seq-ordered
    consumer — heap merges, streaming sidecars, subtree assembly — sees
    the same global order a fresh save would produce.
    """

    __slots__ = (
        "ops", "node_shadow", "appended_nodes", "appended_node_positions",
        "link_tombstones", "appended_links", "appended_out", "torn_segment",
    )

    def __init__(
        self,
        ops: "Iterable[tuple[str, Any]]",
        torn_segment: str | None = None,
    ) -> None:
        #: Decoded mutations, oldest first.  A list extended in place —
        #: consumers (``journal_ops()``) read/slice it, never mutate.
        self.ops: list[tuple[str, Any]] = []
        self.torn_segment = torn_segment
        self.node_shadow: dict[str, Node | None] = {}
        self.appended_nodes: dict[str, Node] = {}
        #: id -> position among appended nodes (filled by finalise).
        self.appended_node_positions: dict[str, int] = {}
        self.link_tombstones: set[Link] = set()
        self.appended_links: dict[Link, None] = {}
        #: Appended links grouped by source id (subtree traversal reads
        #: a node's out-links; positions are filled by finalise).
        self.appended_out: dict[str, list[tuple[int, Link]]] = {}
        self.extend(ops)

    def extend(self, ops: "Iterable[tuple[str, Any]]") -> None:
        """Apply further mutation records on top of the current state.

        This is how a long-lived handle keeps up with a growing journal
        without re-decoding old segments: ``refresh()`` feeds only the
        newly appended segments' ops here.  The caller re-runs
        :meth:`finalise` afterwards.
        """
        ops = tuple(ops)
        self.ops.extend(ops)
        for op, payload in ops:
            if op == "add_node":
                # A fresh id, or a tombstoned base id re-added: either
                # way the live argument appends it at the end.  Any base
                # tombstone stays, suppressing the base record.
                self.appended_nodes[payload.identifier] = payload
            elif op == "remove_node":
                identifier = payload.identifier
                if identifier in self.appended_nodes:
                    del self.appended_nodes[identifier]
                else:
                    self.node_shadow[identifier] = None
            elif op == "replace_node":
                _, new = payload
                if new.identifier in self.appended_nodes:
                    self.appended_nodes[new.identifier] = new
                else:
                    self.node_shadow[new.identifier] = new
            elif op == "add_link":
                self.appended_links[payload] = None
            else:  # remove_link
                if payload in self.appended_links:
                    del self.appended_links[payload]
                else:
                    self.link_tombstones.add(payload)

    def finalise(self, base_link_total: int) -> None:
        """Assign appended records their post-base positions."""
        self.appended_node_positions = {
            identifier: position
            for position, identifier in enumerate(self.appended_nodes)
        }
        self.appended_out.clear()
        for position, link in enumerate(self.appended_links):
            self.appended_out.setdefault(link.source, []).append(
                (base_link_total + position, link)
            )

    @property
    def node_delta(self) -> int:
        """Net node-count change the journal applies to the base."""
        tombstones = sum(
            1 for node in self.node_shadow.values() if node is None
        )
        return len(self.appended_nodes) - tombstones

    @property
    def link_delta(self) -> int:
        """Net link-count change the journal applies to the base."""
        return len(self.appended_links) - len(self.link_tombstones)


def load_overlay(
    stored: "StoredArgument",
    base: JournalOverlay | None = None,
    start: int = 0,
) -> JournalOverlay:
    """Parse and verify journal segments of an open store handle.

    Segments verify like shards (count + CRC-32 + per-line decode).  A
    verification failure in the *final* segment is torn-write shaped: it
    raises :class:`StoreCorruptionError` naming the segment and the
    ``ignore_torn_tail=True`` recovery, or — when the handle was opened
    with that flag — drops exactly that segment (one whole append) and
    records it in :attr:`JournalOverlay.torn_segment`.  A damaged
    non-final segment always raises.

    ``base``/``start`` are the incremental path: an overlay already
    covering the first ``start`` segments is *extended* with just the
    newer ones, so a long editing session's Nth refresh decodes one new
    segment, not all N.
    """
    ops: list[tuple[str, Any]] = []
    names = stored.journal_segments
    torn: str | None = None
    for position in range(start, len(names)):
        name = names[position]
        final = position == len(names) - 1
        try:
            # Decode the whole segment before keeping any of it: a
            # mid-segment failure under ignore_torn_tail must drop the
            # entire append (the journal's atomicity unit), never a
            # prefix of it.
            segment_ops = [
                decode_op(record, name)
                for record in stored._stream_shard(name, ("op",))
            ]
            ops.extend(segment_ops)
        except StoreCorruptionError as error:
            if not final:
                raise
            if stored.ignore_torn_tail:
                torn = name
                break
            raise StoreCorruptionError(
                name,
                f"{error.detail}; the final journal segment looks like a "
                "torn append — reopen with StoredArgument(..., "
                "ignore_torn_tail=True) to recover the last consistent "
                "state",
            ) from None
    if base is None:
        overlay = JournalOverlay(tuple(ops), torn_segment=torn)
    else:
        overlay = base
        overlay.extend(ops)
        overlay.torn_segment = torn
    overlay.finalise(stored.base_link_total)
    return overlay


def _delta_counts(records: Iterable[tuple[str, Any]]) -> tuple[int, int]:
    """Net (node, link) count change a record sequence applies."""
    nodes = links = 0
    for op, _ in records:
        if op == "add_node":
            nodes += 1
        elif op == "remove_node":
            nodes -= 1
        elif op == "add_link":
            links += 1
        elif op == "remove_link":
            links -= 1
    return nodes, links


def _check_not_torn(stored: "StoredArgument") -> None:
    if (
        stored._overlay is not None
        and stored._overlay.torn_segment is not None
    ):
        raise StoreError(
            "cannot append to a journal recovered from a torn tail; "
            "compact() (or a full save) must reconcile the store first"
        )


def _check_handle_current(stored: "StoredArgument") -> None:
    """Under the lease: the handle's view must match the disk manifest.

    A handle whose manifest went stale (another writer committed since
    it last refreshed) would commit a manifest derived from the old
    generation — silently dropping the other writer's journal entry, the
    exact lost update the lease exists to prevent.  Raising
    :class:`StoreConflictError` forces the caller to ``refresh()`` (or
    reload) and re-derive its delta.
    """
    from zlib import crc32

    from .format import StoreConflictError

    try:
        raw = (stored.path / MANIFEST_NAME).read_bytes()
    except OSError:
        raise StoreConflictError(
            f"store at {stored.path} vanished under this handle"
        ) from None
    if crc32(raw) != stored.manifest_fingerprint:
        raise StoreConflictError(
            f"store at {stored.path} changed since this handle last "
            "read it (another writer committed); refresh() and retry"
        )


def append_delta(stored: "StoredArgument", delta: MutationDelta) -> dict:
    """Seal one delta as a journal segment; returns the new manifest.

    O(delta) writes plus one manifest rewrite: the segment streams to a
    ``.tmp`` file, seals under its content-addressed name (gzipped when
    the store is), and the atomic manifest rename commits it — the same
    interrupted-save guarantee shards have, so a crash at any point
    leaves the previous state loadable.  The caller (normally
    ``Argument.save(journal=True)``) is responsible for the delta
    actually continuing the stored state; an empty delta is a no-op.

    Runs under the store's writer lease, and refuses (with
    :class:`~repro.store.format.StoreConflictError`) if the manifest on
    disk is no longer the one this handle saw — the compare-and-append
    that makes concurrent editors lose loudly instead of silently.  Once
    the journal reaches :data:`COALESCE_AFTER` segments they are first
    coalesced into one, so the manifest stays bounded over arbitrarily
    long editing sessions.
    """
    with writer_lease(stored.path):
        _check_not_torn(stored)
        _check_handle_current(stored)
        if stored.journal_segments:
            # Building on top of a torn tail would strand the damage in
            # the *middle* of the journal, beyond ignore_torn_tail's
            # reach — so verify the sealed tail segment (count + CRC +
            # decode) before appending (and before the empty-delta no-op
            # below: a no-op save must not report a damaged store
            # healthy).  O(one delta), not O(journal): earlier segments
            # were each the tail of a previous successful append.
            final = stored.journal_segments[-1]
            if final not in stored.shards_read:
                for record in stored._stream_shard(final, ("op",)):
                    decode_op(record, final)
        if not delta.records:
            return stored.manifest
        if len(stored.journal_segments) >= COALESCE_AFTER:
            coalesce(stored)
            stored.refresh()
        writer = _ShardWriter(
            stored.path,
            journal_base(len(stored.journal_segments)),
            stored.compression,
        )
        try:
            for op, payload in delta.records:
                writer.write(encode_op(op, payload))
        finally:
            writer.close()
        name = writer.finish()
        manifest = dict(stored.manifest)
        manifest["journal"] = list(stored.journal_segments) + [name]
        manifest["journal_schema"] = JOURNAL_SCHEMA_VERSION
        manifest["shards"] = {**manifest["shards"], name: writer.entry}
        node_delta, link_delta = _delta_counts(delta.records)
        manifest["node_count"] += node_delta
        manifest["link_count"] += link_delta
        _commit(stored.path, manifest, sweep=False)
    return manifest


def coalesce(stored: "StoredArgument") -> dict:
    """Merge every journal segment into one; returns the new manifest.

    Pure manifest hygiene: the op sequence — and therefore every
    reader's replay — is unchanged; only the segment boundaries vanish.
    O(journal) work, no shard rewriting (that is :func:`compact`), one
    atomic manifest swap.  The superseded segments stay on disk for
    pinned snapshot readers until :func:`gc`.  A no-op below two
    segments.
    """
    with writer_lease(stored.path):
        _check_not_torn(stored)
        _check_handle_current(stored)
        if len(stored.journal_segments) < 2:
            return stored.manifest
        ops = stored.journal_ops()
        writer = _ShardWriter(
            stored.path, journal_base(0), stored.compression
        )
        try:
            for op, payload in ops:
                writer.write(encode_op(op, payload))
        finally:
            writer.close()
        name = writer.finish()
        manifest = dict(stored.manifest)
        carried = {
            shard: entry
            for shard, entry in manifest["shards"].items()
            if shard not in set(stored.journal_segments)
        }
        manifest["journal"] = [name]
        manifest["journal_schema"] = JOURNAL_SCHEMA_VERSION
        manifest["shards"] = {**carried, name: writer.entry}
        _commit(stored.path, manifest, sweep=False)
    return manifest


def compact(stored: "StoredArgument") -> dict:
    """Fold the journal back into fresh shards; returns the new manifest.

    Streams the journal-replayed node and link sequences straight into
    new content-addressed shards — no hydration, memory O(shard handles
    + overlay) — and swaps the manifest atomically; the old shards and
    every journal segment are swept only after the commit point.  The
    result is byte-identical to a clean ``save()`` of the same live
    argument — after a :func:`gc` has swept the superseded generation's
    files, which stay on disk for pinned snapshot readers (the commit
    itself never deletes).  Runs under the writer lease.  Compacting a
    journal-less store is a no-op returning the current manifest.
    """
    with writer_lease(stored.path):
        return _compact_locked(stored)


def _compact_locked(stored: "StoredArgument") -> dict:
    if not stored.journal_segments:
        return stored.manifest
    _check_handle_current(stored)
    from .search import SEARCH_INDEX_KEY, _PostingsBuilder, write_sidecar

    node_types: dict[str, NodeType] = {}
    old_sidecar = stored.manifest.get(SEARCH_INDEX_KEY)
    # An indexed store stays indexed through compaction: collect the
    # postings in the same streaming pass that folds the shards, so the
    # rebuild costs no extra read of the store.
    postings = (
        _PostingsBuilder() if isinstance(old_sidecar, str) else None
    )

    def noted_nodes() -> "Iterable[Node]":
        for node in stored.iter_nodes():
            node_types[node.identifier] = node.node_type
            if postings is not None:
                postings.add(node.identifier, node.text)
            yield node

    node_shards, link_shards, shards, node_total, link_total = _write_graph(
        noted_nodes(),
        stored.iter_links(),
        stored.path,
        stored.shard_count,
        stored.compression,
    )
    manifest = dict(stored.manifest)
    manifest.pop("journal", None)
    manifest.pop("journal_schema", None)
    manifest["node_shards"] = node_shards
    manifest["link_shards"] = link_shards
    manifest["node_count"] = node_total
    manifest["link_count"] = link_total
    replaced = set(stored.manifest["node_shards"]) \
        | set(stored.manifest["link_shards"]) \
        | set(stored.journal_segments)
    if postings is not None:
        # Watermark zero over the fresh base: byte-identical to the
        # sidecar a clean ``save(search_index=True)`` of the same
        # argument would seal, preserving compaction's byte-stability.
        sidecar, sidecar_entry = write_sidecar(
            stored.path,
            postings,
            node_shards + link_shards,
            0,
            stored.compression,
        )
        manifest[SEARCH_INDEX_KEY] = sidecar
        shards = {**shards, sidecar: sidecar_entry}
        replaced.add(old_sidecar)
    if stored.kind == "case":
        # Journal edits may have removed or retyped cited solutions; the
        # loader drops their citations only while the journal documents
        # why, so compaction must reconcile the citations shard or the
        # folded store would stop loading as a case.  Evidence carries
        # verbatim (argument journals never touch it).
        old_citations = stored.manifest["citations_shard"]
        live = [
            record
            for record in stored._stream_shard(
                old_citations, ("seq", "solution", "evidence")
            )
            if node_types.get(record["solution"]) is NodeType.SOLUTION
        ]
        (citations_shard,), citations_meta = _write_sharded(
            stored.path,
            ["citations"],
            (
                (0, {
                    "seq": seq,
                    "solution": record["solution"],
                    "evidence": record["evidence"],
                })
                for seq, record in enumerate(live)
            ),
            stored.compression,
        )
        manifest["citations_shard"] = citations_shard
        shards = {**shards, **citations_meta}
        replaced.add(old_citations)
    carried = {
        name: entry
        for name, entry in stored.manifest["shards"].items()
        if name not in replaced
    }
    manifest["shards"] = {**carried, **shards}
    _commit(stored.path, manifest, sweep=False)
    return manifest


#: The in-flight suffix shapes a store write can leave behind: the
#: per-writer unique form (``.<pid-hex>-<rand8>.tmp``) and the legacy
#: deterministic ``.tmp``.
_TMP_FORMS = r"(?:\.[0-9a-f]+-[0-9a-f]{8})?\.tmp"

#: Filenames :func:`gc` is allowed to consider: exactly the shapes the
#: writer, this module, and the lease protocol produce (sealed
#: shards/segments, their in-flight ``.tmp`` forms, and broken-lease
#: leftovers).  Anything else in the directory — including the live
#: ``writer.lease`` itself — is never deleted.
_STORE_FILE = re.compile(
    r"^(?:"
    r"(?:nodes|links|journal)-\d{4}"           # nodes-0003-1a2b3c4d.jsonl
    rf"(?:-[0-9a-f]{{8}}\.jsonl(?:\.gz)?|{_TMP_FORMS})"
    r"|(?:evidence|citations|search)"          # evidence-9c0d1e2f.jsonl
    rf"(?:-[0-9a-f]{{8}}\.jsonl(?:\.gz)?|{_TMP_FORMS})"
    rf"|{re.escape(LEASE_NAME)}\.(?:stale|renew)-[0-9a-f-]+"
    r")$"
)

#: In-flight manifest names (``manifest.json.tmp`` and the unique form)
#: — recognised by gc and fsck but never the manifest itself.
_MANIFEST_TMP = re.compile(
    rf"^{re.escape(MANIFEST_NAME)}{_TMP_FORMS}$"
)


def gc(
    stored: "StoredArgument", *, timeout: "float | None" = None
) -> list[str]:
    """Remove store files the live manifest does not reference.

    Orphans accumulate from interrupted saves and appends (sealed files
    whose manifest commit never happened) and — by design — from
    compaction and journal coalescing, whose commits deliberately leave
    the superseded generation's files on disk so snapshot readers
    pinned to it keep streaming.  Only files matching the store's own
    naming scheme are candidates; the manifest itself, the live writer
    lease, and everything the manifest references survive.  Returns the
    removed names, sorted.

    **Single-writer, lease-enforced.**  gc takes the store's writer
    lease, so a save, append, or compaction in flight in another
    process (whose sealed files a gc would see as orphans and destroy)
    is excluded by construction — the doc-contract of PR 5 is now
    machine-checked.  Readers of the *live* generation are safe; a
    reader still pinned to a superseded generation can hit missing-file
    errors after a gc and should ``refresh()`` — run gc when snapshot
    readers have had time to drain.

    ``timeout`` overrides the lease-acquisition deadline; gc is the one
    operation routinely scheduled *around* live writers, so callers may
    prefer to give up fast and retry later rather than queue.
    """
    from .lease import DEFAULT_ACQUIRE_TIMEOUT

    if timeout is None:
        timeout = DEFAULT_ACQUIRE_TIMEOUT
    with writer_lease(stored.path, timeout=timeout):
        # Resync *inside* the lease: a commit that landed between the
        # caller's last refresh and our acquisition must not have its
        # freshly referenced files swept as orphans.
        stored.refresh()
        referenced = set(stored.manifest["shards"]) | {MANIFEST_NAME}
        removed: list[str] = []
        for path in stored.path.iterdir():
            name = path.name
            if name in referenced:
                continue
            if not _STORE_FILE.match(name) and not _MANIFEST_TMP.match(name):
                continue
            path.unlink()
            removed.append(name)
    return sorted(removed)
