"""The append-only edit journal of the persistent sharded store.

A tool-generated case is not written once and frozen: an editing session
applies hundreds of small mutations, and re-sharding the whole store per
save would cost O(store) where the change is O(delta).  This module
gives :class:`~repro.store.reader.StoredArgument` three operations that
keep an on-disk case cheap to maintain:

* :func:`append_delta` — serialise one
  :class:`~repro.core.argument.MutationDelta` as a sealed JSONL journal
  segment (same durability story as shards: streamed to ``.tmp``,
  content-addressed rename, count + CRC-32 in the manifest, atomic
  manifest swap as the commit point), so a save after an edit costs
  O(delta) writes;
* :func:`compact` — fold every journal segment back into fresh
  content-addressed node/link shards in one atomic manifest swap.  The
  compacted store is **byte-identical** to a clean ``save()`` of the
  same live argument: replay reproduces exact insertion order (removed
  identifiers vanish, re-added ones order last, replacements keep their
  position) and the writer re-canonicalises every record;
* :func:`gc` — remove shard/segment files in the store directory that
  the live manifest no longer references (failed saves and appends,
  superseded shards under live readers).  Only files matching the
  store's own naming scheme are ever touched.

Readers consume the journal through :class:`JournalOverlay`: one parse
of the (small) segments yields the shadow/tombstone/append maps that
:class:`~repro.store.reader.StoredArgument` layers over its base shards
for every access path — ``load``, ``node``, ``subtree``, streaming and
per-shard iteration.  The decoded operation list doubles as the
persisted delta stream that
:meth:`repro.core.analysis.IncrementalChecker.from_store` consumes to
re-check a stored case without hydrating it.

Crash semantics: a sealed segment enters the manifest atomically, so an
interrupted append leaves the previous state loadable (at worst an
orphaned segment file for :func:`gc`).  A *final* segment whose content
fails verification — a torn write at the filesystem level — raises
:class:`~repro.store.format.StoreCorruptionError` naming the segment
and the ``ignore_torn_tail`` recovery; opening the store with
``StoredArgument(path, ignore_torn_tail=True)`` drops exactly that last
segment (one whole append, the journal's atomicity unit) and surfaces
the previous consistent state.  A damaged *non-final* segment is real
corruption and always raises.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING, Any, Iterable

from ..core.argument import Link, LinkKind, MutationDelta
from ..core.nodes import Node, NodeType
from ..notation.json_io import node_from_payload
from .format import (
    JOURNAL_SCHEMA_VERSION,
    MANIFEST_NAME,
    StoreCorruptionError,
    StoreError,
    journal_base,
)
from .writer import (
    _commit,
    _node_record,
    _ShardWriter,
    _write_graph,
    _write_sharded,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (reader imports us)
    from .reader import StoredArgument

__all__ = [
    "JournalOverlay",
    "append_delta",
    "compact",
    "gc",
    "encode_op",
    "decode_op",
]


#: Mutation op codes a journal record may carry (the delta protocol's).
_NODE_OPS = ("add_node", "remove_node")
_LINK_OPS = ("add_link", "remove_link")
_OPS = _NODE_OPS + _LINK_OPS + ("replace_node",)


def _link_payload(link: Link) -> dict[str, str]:
    return {
        "source": link.source, "target": link.target, "kind": link.kind.value,
    }


def _canonical_node_payload(node: Node) -> dict[str, Any]:
    # The same canonical metadata form the shard writer produces, so a
    # replayed node re-serialises byte-identically under compaction.
    payload = _node_record(0, node)
    del payload["seq"]
    return payload


def encode_op(op: str, payload: Any) -> dict[str, Any]:
    """One journal record: a mutation op plus its serialised payload."""
    if op == "replace_node":
        old, new = payload
        return {
            "op": op,
            "old": _canonical_node_payload(old),
            "new": _canonical_node_payload(new),
        }
    if op in _NODE_OPS:
        return {"op": op, "node": _canonical_node_payload(payload)}
    if op in _LINK_OPS:
        return {"op": op, "link": _link_payload(payload)}
    raise StoreError(f"unknown mutation op {op!r} cannot be journalled")


def _link_from_payload(payload: dict[str, Any]) -> Link:
    return Link(
        payload["source"], payload["target"], LinkKind(payload["kind"])
    )


def decode_op(record: dict[str, Any], segment: str) -> tuple[str, Any]:
    """Rebuild the ``(op, payload)`` mutation a journal record encodes."""
    op = record.get("op")
    try:
        if op == "replace_node":
            return op, (
                node_from_payload(record["old"]),
                node_from_payload(record["new"]),
            )
        if op in _NODE_OPS:
            return op, node_from_payload(record["node"])
        if op in _LINK_OPS:
            return op, _link_from_payload(record["link"])
    except (KeyError, TypeError, ValueError) as error:
        raise StoreCorruptionError(
            segment, f"malformed {op!r} journal record ({error})"
        ) from None
    raise StoreCorruptionError(segment, f"unknown journal op {op!r}")


class JournalOverlay:
    """The parsed journal: what shadows, what vanished, what appended.

    Replaying the decoded operation list in order reproduces exactly the
    live argument's insertion-order semantics:

    * a **replaced** identifier keeps its base position (``node_shadow``
      maps it to the replacement);
    * a **removed** base identifier leaves a tombstone (``node_shadow``
      maps it to ``None``) — and if later re-added, the new node orders
      *after* every base record (``appended_nodes``), exactly where a
      live argument's insertion-ordered dict puts a re-added key;
    * links behave the same way (``link_tombstones`` /
      ``appended_links``), keyed by the full ``(source, target, kind)``
      triple, which an argument keeps unique.

    Appended records carry synthetic sequence numbers continuing the
    base numbering (``base_total + position``), so every seq-ordered
    consumer — heap merges, streaming sidecars, subtree assembly — sees
    the same global order a fresh save would produce.
    """

    __slots__ = (
        "ops", "node_shadow", "appended_nodes", "appended_node_positions",
        "link_tombstones", "appended_links", "appended_out", "torn_segment",
    )

    def __init__(
        self,
        ops: "Iterable[tuple[str, Any]]",
        torn_segment: str | None = None,
    ) -> None:
        #: Decoded mutations, oldest first.  A list extended in place —
        #: consumers (``journal_ops()``) read/slice it, never mutate.
        self.ops: list[tuple[str, Any]] = []
        self.torn_segment = torn_segment
        self.node_shadow: dict[str, Node | None] = {}
        self.appended_nodes: dict[str, Node] = {}
        #: id -> position among appended nodes (filled by finalise).
        self.appended_node_positions: dict[str, int] = {}
        self.link_tombstones: set[Link] = set()
        self.appended_links: dict[Link, None] = {}
        #: Appended links grouped by source id (subtree traversal reads
        #: a node's out-links; positions are filled by finalise).
        self.appended_out: dict[str, list[tuple[int, Link]]] = {}
        self.extend(ops)

    def extend(self, ops: "Iterable[tuple[str, Any]]") -> None:
        """Apply further mutation records on top of the current state.

        This is how a long-lived handle keeps up with a growing journal
        without re-decoding old segments: ``refresh()`` feeds only the
        newly appended segments' ops here.  The caller re-runs
        :meth:`finalise` afterwards.
        """
        ops = tuple(ops)
        self.ops.extend(ops)
        for op, payload in ops:
            if op == "add_node":
                # A fresh id, or a tombstoned base id re-added: either
                # way the live argument appends it at the end.  Any base
                # tombstone stays, suppressing the base record.
                self.appended_nodes[payload.identifier] = payload
            elif op == "remove_node":
                identifier = payload.identifier
                if identifier in self.appended_nodes:
                    del self.appended_nodes[identifier]
                else:
                    self.node_shadow[identifier] = None
            elif op == "replace_node":
                _, new = payload
                if new.identifier in self.appended_nodes:
                    self.appended_nodes[new.identifier] = new
                else:
                    self.node_shadow[new.identifier] = new
            elif op == "add_link":
                self.appended_links[payload] = None
            else:  # remove_link
                if payload in self.appended_links:
                    del self.appended_links[payload]
                else:
                    self.link_tombstones.add(payload)

    def finalise(self, base_link_total: int) -> None:
        """Assign appended records their post-base positions."""
        self.appended_node_positions = {
            identifier: position
            for position, identifier in enumerate(self.appended_nodes)
        }
        self.appended_out.clear()
        for position, link in enumerate(self.appended_links):
            self.appended_out.setdefault(link.source, []).append(
                (base_link_total + position, link)
            )

    @property
    def node_delta(self) -> int:
        """Net node-count change the journal applies to the base."""
        tombstones = sum(
            1 for node in self.node_shadow.values() if node is None
        )
        return len(self.appended_nodes) - tombstones

    @property
    def link_delta(self) -> int:
        """Net link-count change the journal applies to the base."""
        return len(self.appended_links) - len(self.link_tombstones)


def load_overlay(
    stored: "StoredArgument",
    base: JournalOverlay | None = None,
    start: int = 0,
) -> JournalOverlay:
    """Parse and verify journal segments of an open store handle.

    Segments verify like shards (count + CRC-32 + per-line decode).  A
    verification failure in the *final* segment is torn-write shaped: it
    raises :class:`StoreCorruptionError` naming the segment and the
    ``ignore_torn_tail=True`` recovery, or — when the handle was opened
    with that flag — drops exactly that segment (one whole append) and
    records it in :attr:`JournalOverlay.torn_segment`.  A damaged
    non-final segment always raises.

    ``base``/``start`` are the incremental path: an overlay already
    covering the first ``start`` segments is *extended* with just the
    newer ones, so a long editing session's Nth refresh decodes one new
    segment, not all N.
    """
    ops: list[tuple[str, Any]] = []
    names = stored.journal_segments
    torn: str | None = None
    for position in range(start, len(names)):
        name = names[position]
        final = position == len(names) - 1
        try:
            # Decode the whole segment before keeping any of it: a
            # mid-segment failure under ignore_torn_tail must drop the
            # entire append (the journal's atomicity unit), never a
            # prefix of it.
            segment_ops = [
                decode_op(record, name)
                for record in stored._stream_shard(name, ("op",))
            ]
            ops.extend(segment_ops)
        except StoreCorruptionError as error:
            if not final:
                raise
            if stored.ignore_torn_tail:
                torn = name
                break
            raise StoreCorruptionError(
                name,
                f"{error.detail}; the final journal segment looks like a "
                "torn append — reopen with StoredArgument(..., "
                "ignore_torn_tail=True) to recover the last consistent "
                "state",
            ) from None
    if base is None:
        overlay = JournalOverlay(tuple(ops), torn_segment=torn)
    else:
        overlay = base
        overlay.extend(ops)
        overlay.torn_segment = torn
    overlay.finalise(stored.base_link_total)
    return overlay


def _delta_counts(records: Iterable[tuple[str, Any]]) -> tuple[int, int]:
    """Net (node, link) count change a record sequence applies."""
    nodes = links = 0
    for op, _ in records:
        if op == "add_node":
            nodes += 1
        elif op == "remove_node":
            nodes -= 1
        elif op == "add_link":
            links += 1
        elif op == "remove_link":
            links -= 1
    return nodes, links


def append_delta(stored: "StoredArgument", delta: MutationDelta) -> dict:
    """Seal one delta as a journal segment; returns the new manifest.

    O(delta) writes plus one manifest rewrite: the segment streams to a
    ``.tmp`` file, seals under its content-addressed name (gzipped when
    the store is), and the atomic manifest rename commits it — the same
    interrupted-save guarantee shards have, so a crash at any point
    leaves the previous state loadable.  The caller (normally
    ``Argument.save(journal=True)``) is responsible for the delta
    actually continuing the stored state; an empty delta is a no-op.
    """
    if (
        stored._overlay is not None
        and stored._overlay.torn_segment is not None
    ):
        raise StoreError(
            "cannot append to a journal recovered from a torn tail; "
            "compact() (or a full save) must reconcile the store first"
        )
    if stored.journal_segments:
        # Building on top of a torn tail would strand the damage in the
        # *middle* of the journal, beyond ignore_torn_tail's reach — so
        # verify the sealed tail segment (count + CRC + decode) before
        # appending (and before the empty-delta no-op below: a no-op
        # save must not report a damaged store healthy).  O(one delta),
        # not O(journal): earlier segments were each the tail of a
        # previous successful append.
        final = stored.journal_segments[-1]
        if final not in stored.shards_read:
            for record in stored._stream_shard(final, ("op",)):
                decode_op(record, final)
    if not delta.records:
        return stored.manifest
    writer = _ShardWriter(
        stored.path,
        journal_base(len(stored.journal_segments)),
        stored.compression,
    )
    try:
        for op, payload in delta.records:
            writer.write(encode_op(op, payload))
    finally:
        writer.close()
    name = writer.finish()
    manifest = dict(stored.manifest)
    manifest["journal"] = list(stored.journal_segments) + [name]
    manifest["journal_schema"] = JOURNAL_SCHEMA_VERSION
    manifest["shards"] = {**manifest["shards"], name: writer.entry}
    node_delta, link_delta = _delta_counts(delta.records)
    manifest["node_count"] += node_delta
    manifest["link_count"] += link_delta
    _commit(stored.path, manifest)
    return manifest


def compact(stored: "StoredArgument") -> dict:
    """Fold the journal back into fresh shards; returns the new manifest.

    Streams the journal-replayed node and link sequences straight into
    new content-addressed shards — no hydration, memory O(shard handles
    + overlay) — and swaps the manifest atomically; the old shards and
    every journal segment are swept only after the commit point.  The
    result is byte-identical to a clean ``save()`` of the same live
    argument.  Compacting a journal-less store is a no-op returning the
    current manifest.
    """
    if not stored.journal_segments:
        return stored.manifest
    node_types: dict[str, NodeType] = {}

    def noted_nodes() -> "Iterable[Node]":
        for node in stored.iter_nodes():
            node_types[node.identifier] = node.node_type
            yield node

    node_shards, link_shards, shards, node_total, link_total = _write_graph(
        noted_nodes(),
        stored.iter_links(),
        stored.path,
        stored.shard_count,
        stored.compression,
    )
    manifest = dict(stored.manifest)
    manifest.pop("journal", None)
    manifest.pop("journal_schema", None)
    manifest["node_shards"] = node_shards
    manifest["link_shards"] = link_shards
    manifest["node_count"] = node_total
    manifest["link_count"] = link_total
    replaced = set(stored.manifest["node_shards"]) \
        | set(stored.manifest["link_shards"]) \
        | set(stored.journal_segments)
    if stored.kind == "case":
        # Journal edits may have removed or retyped cited solutions; the
        # loader drops their citations only while the journal documents
        # why, so compaction must reconcile the citations shard or the
        # folded store would stop loading as a case.  Evidence carries
        # verbatim (argument journals never touch it).
        old_citations = stored.manifest["citations_shard"]
        live = [
            record
            for record in stored._stream_shard(
                old_citations, ("seq", "solution", "evidence")
            )
            if node_types.get(record["solution"]) is NodeType.SOLUTION
        ]
        (citations_shard,), citations_meta = _write_sharded(
            stored.path,
            ["citations"],
            (
                (0, {
                    "seq": seq,
                    "solution": record["solution"],
                    "evidence": record["evidence"],
                })
                for seq, record in enumerate(live)
            ),
            stored.compression,
        )
        manifest["citations_shard"] = citations_shard
        shards = {**shards, **citations_meta}
        replaced.add(old_citations)
    carried = {
        name: entry
        for name, entry in stored.manifest["shards"].items()
        if name not in replaced
    }
    manifest["shards"] = {**carried, **shards}
    _commit(stored.path, manifest)
    return manifest


#: Filenames :func:`gc` is allowed to consider: exactly the shapes the
#: writer and this module produce (sealed shards/segments and their
#: in-flight ``.tmp`` forms).  Anything else in the directory is not
#: ours and is never deleted.
_STORE_FILE = re.compile(
    r"^(?:"
    r"(?:nodes|links|journal)-\d{4}"          # nodes-0003-1a2b3c4d.jsonl
    r"(?:-[0-9a-f]{8}\.jsonl(?:\.gz)?|\.tmp)"  # / nodes-0003.tmp
    r"|(?:evidence|citations)"                 # evidence-9c0d1e2f.jsonl
    r"(?:-[0-9a-f]{8}\.jsonl(?:\.gz)?|\.tmp)"  # / evidence.tmp
    r")$"
)


def gc(stored: "StoredArgument") -> list[str]:
    """Remove store files the live manifest does not reference.

    Orphans accumulate from interrupted saves and appends (sealed files
    whose manifest commit never happened) and from full rewrites under
    live readers (the old shards are swept opportunistically at commit,
    but a reader holding them open on some platforms, or a crash between
    commit and sweep, leaves them behind).  Only files matching the
    store's own naming scheme are candidates; the manifest itself and
    everything it references survive.  Returns the removed names,
    sorted.

    **No live writers.**  A save, append, or compaction in flight in
    another process has sealed files its manifest commit has not yet
    referenced; gc would see them as orphans and destroy the commit.
    Run it from the single editing process, between operations — the
    same discipline journal appends already assume.  Readers of the
    *live* generation are safe; a reader still lazily streaming a
    superseded generation can hit missing-file errors and should
    ``refresh()``.
    """
    referenced = set(stored.manifest["shards"]) | {MANIFEST_NAME}
    removed: list[str] = []
    for path in stored.path.iterdir():
        name = path.name
        if name in referenced:
            continue
        if not _STORE_FILE.match(name) and name != MANIFEST_NAME + ".tmp":
            continue
        path.unlink()
        removed.append(name)
    return sorted(removed)
