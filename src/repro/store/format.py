"""The on-disk format of the persistent sharded argument store.

Tool-generated assurance cases reach 100k+ nodes (Resolute derives cases
from architecture models; Isabelle/SACM persists mechanised cases next to
their proof artifacts), so a case must be able to outlive the process that
built it and be reloaded *partially* — a reviewer inspecting one hazard's
sub-argument should not pay to hydrate the whole case.  The store lays an
argument out as a directory:

::

    case.store/
        manifest.json               # schema version, kind, shard map,
                                    # counts, per-shard record counts +
                                    # CRC-32 checksums
        nodes-0000-1a2b3c4d.jsonl   # one node record per line, seq-ordered
        nodes-0001-00000000.jsonl
        links-0000-5e6f7a8b.jsonl   # one link record per line, sharded
        ...                         # by SOURCE id
        evidence-9c0d1e2f.jsonl     # kind == "case" only
        citations-3a4b5c6d.jsonl    # kind == "case" only

Records are sharded by **identifier hash** — ``crc32(id) % shard_count``
— nodes by their own id, links by their *source* id, so a traversal that
knows a frontier node can find all of its outgoing links by reading
exactly one shard.  Every record carries a ``seq`` field (its global
insertion index at save time): within a shard seqs are ascending, so a
heap-merge across shards streams records back in exact insertion order,
and a save → load → save cycle is **byte-stable** (same shard assignment,
same per-shard order, same seqs).

Shard filenames are **content-addressed** — ``<kind>-<index>-<crc>.jsonl``
— and the manifest maps shard indices to filenames.  Identical content
produces identical names (byte-stability holds), while *changed* content
lands under fresh names that never overwrite the previous store's files:
renaming the new manifest into place is the single atomic commit point,
so an interrupted save at any moment leaves the old store fully loadable
(plus, at worst, some orphaned files no manifest references).

Integrity is checked per shard: the manifest records each shard's line
count and the CRC-32 of its bytes; the reader verifies both as it
streams and raises :class:`StoreCorruptionError` *naming the shard* on
any mismatch, truncated line, or undecodable record.

Shards may optionally be **gzip-compressed**, recorded in the manifest as
``"compression": "gzip"`` and reflected in the ``.jsonl.gz`` filename
suffix; reads are transparent.  Record counts, checksums, and the
content-addressed names are always computed over the *decompressed*
JSONL lines, and the gzip stream is written deterministically (fixed
mtime, no embedded filename), so byte-stability — save → load → save
producing identical files — holds for compressed stores too.

The append journal
==================

An editing session must not pay an O(store) rewrite per save.  A store
may therefore carry an **append-only edit journal** beside its shards::

    case.store/
        manifest.json               # + "journal": [segment names, in
                                    #   order], "journal_schema": 1
        journal-0000-7f8e9dab.jsonl # one serialised mutation per line
        journal-0001-2c3d4e5f.jsonl

Each segment holds the serialised :class:`~repro.core.argument.
MutationDelta` records of one ``save(journal=True)`` — ``add_node`` /
``remove_node`` / ``replace_node`` / ``add_link`` / ``remove_link``
payloads in application order.  Segments get the same durability story
as shards: streamed to a ``.tmp`` file, sealed under a content-addressed
name (CRC-32 of the decompressed lines), entered into the manifest's
``shards`` map for count/checksum verification, and committed by the
atomic manifest rename — so one append is all-or-nothing, and a crash
mid-append leaves the previous state fully loadable.  Readers replay
the journal transparently: journal entries shadow shard records by
identifier, appended records order after the base records, and
``compact()`` folds the whole journal back into fresh content-addressed
shards (byte-identical to a clean save of the same argument) in one
manifest swap.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Any

__all__ = [
    "STORE_SCHEMA_VERSION",
    "JOURNAL_SCHEMA_VERSION",
    "MANIFEST_NAME",
    "LEASE_NAME",
    "DEFAULT_SHARD_COUNT",
    "ID_HASH",
    "GZIP_COMPRESSION",
    "COMPRESSIONS",
    "StoreError",
    "StoreCorruptionError",
    "StoreConflictError",
    "shard_of",
    "shard_base",
    "shard_filename",
    "journal_base",
    "tmp_name",
    "validate_compression",
    "encode_record",
    "durable",
    "set_durability",
    "fsync_fileobj",
    "fsync_path",
    "fsync_directory",
]

#: Bumped on any incompatible layout or record change.
STORE_SCHEMA_VERSION = 1

#: Bumped on any incompatible journal record change (recorded in the
#: manifest as ``journal_schema`` whenever a journal is present).
JOURNAL_SCHEMA_VERSION = 1

MANIFEST_NAME = "manifest.json"

#: The writer-lease file (see :mod:`repro.store.lease`): holder identity
#: and expiry of the one process allowed to mutate the store right now.
LEASE_NAME = "writer.lease"

#: Default number of shards per record kind.  Small enough that a full
#: load opens a handful of files, large enough that a subtree load over
#: a localised region of a big case skips most of them.
DEFAULT_SHARD_COUNT = 8

#: Name of the identifier-hash function recorded in the manifest, so a
#: reader can refuse a store written with a different placement scheme.
ID_HASH = "crc32"

#: The one supported per-shard compression scheme (manifest value).
GZIP_COMPRESSION = "gzip"

#: Accepted values for the manifest's optional ``compression`` key.
COMPRESSIONS = (None, GZIP_COMPRESSION)


class StoreError(ValueError):
    """Raised for store misuse: missing manifest, wrong schema or kind,
    unknown identifiers, unreadable layout."""


class StoreCorruptionError(StoreError):
    """A shard's content contradicts the manifest.

    ``shard`` names the offending file so operators can restore or
    regenerate exactly the damaged piece of a large store.
    """

    def __init__(self, shard: str, detail: str) -> None:
        super().__init__(f"shard {shard!r}: {detail}")
        self.shard = shard
        self.detail = detail

    def __reduce__(self) -> "tuple[type, tuple[str, str]]":
        # Default exception pickling would replay the *formatted*
        # message into the two-argument constructor; corruption raised
        # inside a parallel-check worker must cross the process
        # boundary intact.
        return (type(self), (self.shard, self.detail))


class StoreConflictError(StoreError):
    """Another writer got there first.

    Raised when the writer lease cannot be acquired (a live holder has
    it and the acquisition deadline passed) and when
    ``Argument.save(journal=True)`` finds the store diverged from the
    generation this argument last saw — committing would overwrite
    another writer's appends (a lost update).  The caller should reload
    the store, reconcile, and retry; ``save(..., force=True)`` is the
    explicit overwrite escape hatch.
    """


def shard_of(identifier: str, shard_count: int) -> int:
    """The shard index an identifier hashes to (stable across runs)."""
    return zlib.crc32(identifier.encode("utf-8")) % shard_count


def shard_base(kind: str, index: int) -> str:
    """The kind+index stem of a shard filename (``nodes-0003``)."""
    return f"{kind}-{index:04d}"


def journal_base(ordinal: int) -> str:
    """The stem of a journal segment filename (``journal-0007``).

    Ordinals count sealed segments in manifest order; the final name is
    content-addressed via :func:`shard_filename` like any shard.
    """
    return f"journal-{ordinal:04d}"


def shard_filename(
    base: str, checksum: int, compression: "str | None" = None
) -> str:
    """The content-addressed final filename of a finished shard.

    ``checksum`` is always the CRC-32 of the *decompressed* content, so
    identical records get identical names whatever the compression.
    """
    suffix = ".jsonl.gz" if compression == GZIP_COMPRESSION else ".jsonl"
    return f"{base}-{checksum:08x}{suffix}"


def tmp_name(base: str) -> str:
    """A collision-free in-flight filename for a streaming write.

    Deterministic ``<base>.tmp`` names let two processes saving into one
    directory overwrite each other's half-written files mid-stream; the
    pid + random infix makes every in-flight file private to its writer.
    The sealed content-addressed rename still decides what a store *is*;
    these names only have to never collide while open.  :data:`gc`'s
    ``_STORE_FILE`` pattern (and fsck's orphan inventory) matches both
    the unique and the legacy deterministic form.
    """
    return f"{base}.{os.getpid():x}-{os.urandom(4).hex()}.tmp"


#: Process-wide durability switch (see :func:`set_durability`).  On by
#: default; ``REPRO_STORE_FSYNC=0`` in the environment starts it off —
#: the test-suite escape hatch for hosts where fsync dominates runtime.
_DURABLE = os.environ.get("REPRO_STORE_FSYNC", "1") != "0"


def durable() -> bool:
    """Whether commits fsync (files before rename, directory after)."""
    return _DURABLE


def set_durability(enabled: bool) -> bool:
    """Turn commit fsyncs on or off process-wide; returns the old value.

    The atomic-rename commit protocol is only crash-safe when sealed
    files are fsynced before the rename and the directory after the
    manifest swap — otherwise the "commit point" can vanish or tear on
    power loss.  Leave durability on anywhere real; the opt-out exists
    for tests and throwaway scratch stores.
    """
    global _DURABLE
    previous = _DURABLE
    _DURABLE = enabled
    return previous


def fsync_fileobj(handle: Any) -> None:
    """Flush and fsync an open file object (no-op when durability is off)."""
    if _DURABLE:
        handle.flush()
        os.fsync(handle.fileno())


def fsync_path(path: Any) -> None:
    """fsync a closed file by path (no-op when durability is off)."""
    if _DURABLE:
        fd = os.open(os.fspath(path), os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)


def fsync_directory(path: Any) -> None:
    """fsync a directory so completed renames survive power loss.

    No-op when durability is off; platforms whose directory handles
    refuse fsync (some network filesystems, Windows) are tolerated —
    the rename itself is still ordered after the file fsyncs.
    """
    if not _DURABLE:
        return
    try:
        fd = os.open(os.fspath(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def validate_compression(compression: "str | None") -> "str | None":
    """The compression value, or a clear error for unsupported schemes."""
    if compression not in COMPRESSIONS:
        raise StoreError(
            f"unsupported shard compression {compression!r} "
            f"(supported: {', '.join(str(c) for c in COMPRESSIONS)})"
        )
    return compression


def encode_record(record: dict[str, Any]) -> bytes:
    """One JSONL line, deterministic bytes (key order = insertion order)."""
    return json.dumps(record, separators=(",", ":")).encode("utf-8") + b"\n"
