"""The persisted search index sidecar of the sharded argument store.

Searching a corpus of stored cases with ``text_contains`` costs O(total
text) per query: every store streams (and CRC-verifies) its node shards
just to run a substring test.  This module persists the token + trigram
inverted postings of :mod:`repro.core.search`'s canonical tokenizer as a
**sidecar** next to the shards, under exactly the store's existing
discipline:

* **checksummed + content-addressed** — the sidecar seals through the
  same :class:`~repro.store.writer._ShardWriter` as shards
  (``search-<crc32>.jsonl[.gz]``), is listed in the manifest's shard
  map (count + CRC-32), and commits via the atomic manifest swap;
* **journal-patched, O(delta) per edit** — ``save(journal=True)`` /
  ``append_delta`` never rewrite the sidecar.  Its header records the
  number of journal ops it reflects; the journal *is* the persisted
  delta log, so :func:`load_search_index` patches the loaded postings
  forward from exactly the suffix of
  :meth:`~repro.store.reader.StoredArgument.journal_ops` past that
  watermark, caches the patched index on the handle, and each
  subsequent append patches only its own delta;
* **rebuilt on compact(), swept by gc()** — compaction folds the
  journal into fresh shards and rebuilds the sidecar in the same
  streaming pass at watermark zero (byte-identical to a clean indexed
  save's sidecar); the superseded sidecar joins the deferred-sweep
  orphan set that lease-guarded ``gc()`` reclaims once pinned readers
  drain — never at commit time.

The index is **derived data**: a missing, stale (wrong base generation
or tokenizer version), or damaged sidecar silently degrades to the
streaming scan — correctness never depends on it, which is also why
``casefsck`` flags staleness as a note, not a failure.

:class:`CaseCorpus` drives ranked search (:func:`repro.core.search.
search`) over a directory of stores, holding warm handles and their
patched indexes between queries.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Iterable, Iterator
from zlib import crc32

from ..core.search import TOKENIZER_VERSION, tokenize, trigrams
from .format import (
    MANIFEST_NAME,
    StoreCorruptionError,
    StoreError,
)
from .journal import _check_handle_current, _check_not_torn
from .lease import writer_lease
from .reader import StoredArgument
from .writer import _commit, _ShardWriter

__all__ = [
    "SEARCH_INDEX_KEY",
    "SEARCH_SCHEMA_VERSION",
    "StoreSearchIndex",
    "CaseCorpus",
    "build_search_index",
    "load_search_index",
]

#: Manifest key referencing the sidecar file (absent: store unindexed).
SEARCH_INDEX_KEY = "search_index"

#: Bumped on any sidecar record-format change; other versions are stale.
SEARCH_SCHEMA_VERSION = 1

#: The sidecar's shard-name base (seals as ``search-<crc32>.jsonl``).
_SEARCH_BASE = "search"


def base_names_crc(names: Iterable[str]) -> int:
    """Identity of a base shard generation, as the sidecar records it.

    CRC-32 over the ordered content-addressed base shard names
    (:meth:`~repro.store.reader.StoredArgument.base_key`): any full
    rewrite or compaction changes it, a journal append never does —
    exactly the staleness boundary the journal-patch contract needs.
    """
    return crc32("\n".join(names).encode("utf-8"))


def _postings_add(
    tokens: dict[str, set[str]],
    grams: dict[str, set[str]],
    identifier: str,
    text: str,
) -> None:
    for token in set(tokenize(text)):
        tokens.setdefault(token, set()).add(identifier)
    for gram in trigrams(text):
        grams.setdefault(gram, set()).add(identifier)


def _postings_remove(
    tokens: dict[str, set[str]],
    grams: dict[str, set[str]],
    identifier: str,
    text: str,
) -> None:
    for token in set(tokenize(text)):
        entries = tokens.get(token)
        if entries is not None:
            entries.discard(identifier)
            if not entries:
                del tokens[token]
    for gram in trigrams(text):
        entries = grams.get(gram)
        if entries is not None:
            entries.discard(identifier)
            if not entries:
                del grams[gram]


class _PostingsBuilder:
    """Accumulates postings during a streaming pass over nodes.

    Shared by every sidecar producer — the indexed save, compaction's
    ``noted_nodes`` hook, and :func:`build_search_index` — so all three
    serialise identical postings for identical node streams.
    """

    __slots__ = ("tokens", "grams")

    def __init__(self) -> None:
        self.tokens: dict[str, set[str]] = {}
        self.grams: dict[str, set[str]] = {}

    def add(self, identifier: str, text: str) -> None:
        _postings_add(self.tokens, self.grams, identifier, text)


def _sidecar_records(
    tokens: dict[str, set[str]],
    grams: dict[str, set[str]],
    base_crc32: int,
    ops: int,
) -> Iterator[dict[str, Any]]:
    """The sidecar's serialised records, in canonical (deterministic)
    order: header first, then token and gram postings sorted by term
    with sorted id lists — identical postings always seal under
    identical bytes, which is what keeps compaction byte-stable."""
    yield {
        "seq": 0,
        "kind": "header",
        "search_schema": SEARCH_SCHEMA_VERSION,
        "tokenizer": TOKENIZER_VERSION,
        "base_crc32": base_crc32,
        "ops": ops,
    }
    seq = 1
    for kind, postings in (("token", tokens), ("gram", grams)):
        for term in sorted(postings):
            yield {
                "seq": seq,
                "kind": kind,
                "term": term,
                "ids": sorted(postings[term]),
            }
            seq += 1


def write_sidecar(
    directory: Path,
    builder: _PostingsBuilder,
    base_names: Iterable[str],
    ops: int,
    compression: "str | None",
) -> tuple[str, dict[str, int]]:
    """Seal a sidecar file; returns its final name and manifest entry.

    Writes only the file — the caller owns the manifest commit (the
    indexed save and compaction fold the reference into the manifest
    they were writing anyway; :func:`build_search_index` commits one
    itself).
    """
    writer = _ShardWriter(directory, _SEARCH_BASE, compression)
    try:
        for record in _sidecar_records(
            builder.tokens, builder.grams, base_names_crc(base_names), ops
        ):
            writer.write(record)
    finally:
        writer.close()
    return writer.finish(), writer.entry


class StoreSearchIndex:
    """A store's search postings, patched to one handle's generation.

    ``tokens`` and ``grams`` are the inverted maps (term -> identifier
    set) the query planner and ranked search resolve candidates from;
    ``ops_applied`` is the journal watermark the maps reflect.  The
    object deliberately exposes *only* the text-search capabilities —
    plans needing the live index's attribute/type postings raise
    ``AttributeError`` against it, which
    :func:`repro.core.query._select_stored` converts into the streaming
    scan fallback.

    ``nodes_indexed`` counts nodes (re)indexed by *this object* since it
    was created — zero for a sidecar loaded clean, and exactly the
    journal delta's node touches after patching — which is what the
    O(delta) regression test asserts on.
    """

    __slots__ = (
        "_stored", "tokens", "grams", "base_crc32", "ops_applied",
        "nodes_indexed",
    )

    def __init__(
        self,
        stored: StoredArgument,
        tokens: dict[str, set[str]],
        grams: dict[str, set[str]],
        base_crc32: int,
        ops_applied: int,
    ) -> None:
        self._stored = stored
        self.tokens = tokens
        self.grams = grams
        self.base_crc32 = base_crc32
        self.ops_applied = ops_applied
        self.nodes_indexed = 0

    @classmethod
    def build(cls, stored: StoredArgument) -> "StoreSearchIndex":
        """Index a store's current (journal-replayed) nodes from scratch.

        One verified streaming pass; the result reflects every journal
        op the handle currently serves.  This is the reference the
        invariant oracle compares journal-patched indexes against.
        """
        index = cls(
            stored,
            {},
            {},
            base_names_crc(stored.base_key()),
            len(stored.journal_ops()),
        )
        for node in stored.iter_nodes():
            index._add(node.identifier, node.text)
        return index

    def _add(self, identifier: str, text: str) -> None:
        _postings_add(self.tokens, self.grams, identifier, text)
        self.nodes_indexed += 1

    def _remove(self, identifier: str, text: str) -> None:
        _postings_remove(self.tokens, self.grams, identifier, text)

    def apply_ops(self, ops: "Iterable[tuple[str, Any]]") -> None:
        """Patch the postings with decoded journal ops, oldest first.

        Journal records carry full node payloads (``remove_node`` the
        removed node, ``replace_node`` both versions), so patching
        needs no store reads at all — O(delta text), like the live
        index's :meth:`~repro.core.query.ArgumentIndex.apply`.  The
        caller advances :attr:`ops_applied`.
        """
        for op, payload in ops:
            if op == "add_node":
                self._add(payload.identifier, payload.text)
            elif op == "remove_node":
                self._remove(payload.identifier, payload.text)
            elif op == "replace_node":
                old, new = payload
                self._remove(old.identifier, old.text)
                self._add(new.identifier, new.text)
            # Link ops never touch text postings.

    @property
    def doc_count(self) -> int:
        """Node count of the generation the postings reflect."""
        return int(self._stored.node_count)

    def grams_superset(self, lowered: str) -> "set[str] | None":
        """Unverified trigram candidates — a guaranteed superset of the
        nodes containing ``lowered`` under either case discipline; the
        predicate verifies.  ``None``: needle too short to narrow."""
        if len(lowered) < 3:
            return None
        candidates: "set[str] | None" = None
        for gram in trigrams(lowered):
            ids = self.grams.get(gram)
            if not ids:
                return set()
            candidates = (
                set(ids) if candidates is None else candidates & ids
            )
            if not candidates:
                return set()
        return set() if candidates is None else candidates

    def contains_candidates(self, lowered: str) -> "set[str] | None":
        """Exactly the nodes whose folded text contains ``lowered``.

        Trigram candidates verified against the actual node text (one
        lazy shard hydration per candidate's shard, not a store scan) —
        candidates are *checked, never trusted*, so the folded
        ``text_contains`` plan keeps its exactness over a store too.
        ``None`` (needle shorter than a trigram) demands the full scan.
        """
        if len(lowered) < 3:
            return None
        candidates = self.grams_superset(lowered)
        verified: set[str] = set()
        for identifier in candidates or ():
            try:
                node = self._stored.node(identifier)
            except StoreError:
                # Postings out of step with the store (should not
                # happen; derived data degrades, never crashes a read).
                continue
            if lowered in node.text.lower():
                verified.add(identifier)
        return verified

    def canonical(self) -> dict[str, dict[str, "list[str]"]]:
        """Order-insensitive postings snapshot for oracle comparison."""
        return {
            "tokens": {
                term: sorted(ids) for term, ids in self.tokens.items()
            },
            "grams": {
                term: sorted(ids) for term, ids in self.grams.items()
            },
        }


def _parse_sidecar(
    stored: StoredArgument, name: str
) -> "tuple[dict[str, set[str]], dict[str, set[str]], int, int] | None":
    """Read + verify the sidecar file; ``None`` on any mismatch.

    Damage (torn write, checksum mismatch, malformed records) and
    staleness (wrong schema/tokenizer version, a base generation other
    than the handle's, a watermark past the current journal) all
    degrade identically: no index, scan instead.  ``casefsck`` is the
    loud path for operators; readers just stay correct.
    """
    try:
        records = list(stored._stream_shard(name, ("seq", "kind")))
    except (StoreCorruptionError, StoreError):
        return None
    if not records or records[0].get("kind") != "header":
        return None
    header = records[0]
    if header.get("search_schema") != SEARCH_SCHEMA_VERSION:
        return None
    if header.get("tokenizer") != TOKENIZER_VERSION:
        return None
    if header.get("base_crc32") != base_names_crc(stored.base_key()):
        return None
    ops = header.get("ops")
    if not isinstance(ops, int) or isinstance(ops, bool) or ops < 0:
        return None
    tokens: dict[str, set[str]] = {}
    grams: dict[str, set[str]] = {}
    for record in records[1:]:
        kind = record.get("kind")
        term = record.get("term")
        ids = record.get("ids")
        if (
            kind not in ("token", "gram")
            or not isinstance(term, str)
            or not isinstance(ids, list)
            or not all(isinstance(identifier, str) for identifier in ids)
        ):
            return None
        postings = tokens if kind == "token" else grams
        postings[term] = set(ids)
    return tokens, grams, header["base_crc32"], ops


def load_search_index(
    stored: StoredArgument,
) -> "StoreSearchIndex | None":
    """The store's search index at this handle's generation, or ``None``.

    Returns ``None`` — meaning *scan instead* — when the store has no
    sidecar, or the sidecar is damaged or stale (see
    :func:`_parse_sidecar`).  Otherwise the postings are patched forward
    from the journal-op suffix past the sidecar's watermark and cached
    on the handle: a handle that refreshes after each
    ``save(journal=True)`` pays O(that delta) per edit, never a reload
    or rebuild.  The cache survives journal refreshes exactly like the
    base shard caches and drops on ``"rewritten"``.
    """
    name = stored.manifest.get(SEARCH_INDEX_KEY)
    if not isinstance(name, str) or name not in stored.manifest["shards"]:
        return None
    ops = stored.journal_ops()
    cached = stored._search_index
    if isinstance(cached, StoreSearchIndex):
        if (
            cached.base_crc32 == base_names_crc(stored.base_key())
            and cached.ops_applied <= len(ops)
        ):
            if cached.ops_applied < len(ops):
                cached.apply_ops(ops[cached.ops_applied:])
                cached.ops_applied = len(ops)
            return cached
        stored._search_index = None
    parsed = _parse_sidecar(stored, name)
    if parsed is None:
        return None
    tokens, grams, base_crc32, applied = parsed
    if applied > len(ops):
        return None  # indexes journal state this generation never saw
    index = StoreSearchIndex(stored, tokens, grams, base_crc32, applied)
    if applied < len(ops):
        index.apply_ops(ops[applied:])
        index.ops_applied = len(ops)
        index.nodes_indexed = 0  # patching to *open* a handle is setup,
        # not per-edit cost; the O(delta) counter starts at the handle's
        # own generation.
    stored._search_index = index
    return index


def build_search_index(stored: StoredArgument) -> dict[str, Any]:
    """Build (or rebuild) a store's sidecar; returns the new manifest.

    A lease-guarded compare-and-commit like every store write: one
    verified streaming pass over the journal-replayed nodes, the sealed
    sidecar enters the manifest's shard map under
    :data:`SEARCH_INDEX_KEY`, and the atomic manifest swap publishes it
    (``sweep=False`` — a superseded sidecar stays for pinned readers
    until ``gc()``).  The recorded watermark is the handle's current
    journal length, so readers at this generation patch nothing.

    This is the path for indexing an *existing* store; new stores index
    at save time via ``save(..., search_index=True)``, which folds the
    sidecar into the same commit (keeping the saved argument's
    ``save(journal=True)`` fingerprint baseline valid).
    """
    with writer_lease(stored.path):
        _check_not_torn(stored)
        _check_handle_current(stored)
        builder = _PostingsBuilder()
        for node in stored.iter_nodes():
            builder.add(node.identifier, node.text)
        name, entry = write_sidecar(
            stored.path,
            builder,
            stored.base_key(),
            len(stored.journal_ops()),
            stored.compression,
        )
        if stored.manifest.get(SEARCH_INDEX_KEY) == name:
            return stored.manifest  # identical content re-sealed: no-op
        manifest = dict(stored.manifest)
        old = manifest.get(SEARCH_INDEX_KEY)
        shards = {
            shard: meta
            for shard, meta in manifest["shards"].items()
            if shard != old
        }
        manifest[SEARCH_INDEX_KEY] = name
        manifest["shards"] = {**shards, name: entry}
        _commit(stored.path, manifest, sweep=False)
    return manifest


class CaseCorpus:
    """Ranked search over a directory of stores (one store per subdir).

    The serving-side driver: handles — and their journal-patched search
    indexes — stay warm between queries, so a corpus query is postings
    lookups plus per-hit shard hydration, not a corpus scan.
    :func:`repro.core.search.search` accepts a corpus directly (via
    :meth:`search_sources`) and ranks across stores; idf is per store.
    """

    def __init__(
        self, root: "Path | str", *, ignore_torn_tail: bool = False
    ) -> None:
        self.root = Path(root)
        self.ignore_torn_tail = ignore_torn_tail
        self._handles: dict[str, StoredArgument] = {}
        self._names: "list[str] | None" = None

    def store_names(self) -> "list[str]":
        """Subdirectories holding a store manifest, sorted by name.

        The listing is discovered once and cached — on a
        thousands-of-stores library re-statting every manifest would
        dominate each query.  :meth:`refresh` rediscovers.
        """
        if self._names is None:
            if not self.root.exists():
                return []
            self._names = sorted(
                entry.name
                for entry in self.root.iterdir()
                if (entry / MANIFEST_NAME).is_file()
            )
        return self._names

    def open(self, name: str) -> StoredArgument:
        """The (cached) handle for one member store."""
        handle = self._handles.get(name)
        if handle is None:
            handle = StoredArgument(
                self.root / name, ignore_torn_tail=self.ignore_torn_tail
            )
            self._handles[name] = handle
        return handle

    def __len__(self) -> int:
        return len(self.store_names())

    def __iter__(self) -> Iterator[str]:
        return iter(self.store_names())

    def search_sources(
        self,
    ) -> "Iterator[tuple[str, StoredArgument]]":
        """(name, handle) pairs — the corpus hook ranked search uses."""
        for name in self.store_names():
            yield name, self.open(name)

    def ensure_indexed(self) -> "list[str]":
        """Build sidecars for members lacking a current one; returns
        the names of the stores (re)indexed."""
        built: "list[str]" = []
        for name in self.store_names():
            stored = self.open(name)
            if load_search_index(stored) is None:
                build_search_index(stored)
                stored.refresh()
                built.append(name)
        return built

    def refresh(self) -> None:
        """Resync every cached handle and rediscover member stores."""
        self._names = None
        for handle in self._handles.values():
            handle.refresh()

    def search(self, query_text: str, **kwargs: Any) -> "list[Any]":
        """Ranked query-biased search across the corpus — see
        :func:`repro.core.search.search`."""
        from ..core.search import search

        return search(self, query_text, **kwargs)
