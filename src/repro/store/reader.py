"""Readers for the persistent sharded argument store.

:class:`StoredArgument` is the handle other layers consume.  It supports
three access patterns, cheapest first:

* **streaming** — :meth:`StoredArgument.iter_nodes` /
  :meth:`~StoredArgument.iter_links` heap-merge the shards by ``seq`` and
  yield records in exact insertion order without holding the case in
  memory; this is what :func:`repro.core.query.select` uses to scan a
  stored argument shard by shard;
* **lazy per-shard** — :meth:`StoredArgument.node` and
  :meth:`~StoredArgument.subtree` hydrate only the shards an access
  actually touches (a node lookup reads one shard; a subtree load reads
  the node and link shards of the reachable region), tracked in
  :attr:`StoredArgument.shards_read` so tests and benchmarks can assert
  partial loads really were partial;
* **full hydration** — :meth:`StoredArgument.load` rebuilds a live
  :class:`~repro.core.argument.Argument`, replaying every record through
  the PR 2 batch-mutation layer: one version bump for the whole load,
  and the mutation delta log carries the entire load as one delta for
  incremental index consumers.

Every shard is verified as it streams — CRC-32 and record count against
the manifest, JSON decode per line — and any mismatch raises
:class:`~repro.store.format.StoreCorruptionError` naming the shard.
"""

from __future__ import annotations

import gzip
import heapq
import json
from pathlib import Path
from typing import Any, Iterator
from zlib import crc32, error as zlib_error

from ..core.argument import Argument, Link, LinkKind
from ..core.case import AssuranceCase, SafetyCriterion
from ..core.nodes import Node
from ..notation.json_io import evidence_from_payload, node_from_payload
from .format import (
    COMPRESSIONS,
    GZIP_COMPRESSION,
    ID_HASH,
    MANIFEST_NAME,
    STORE_SCHEMA_VERSION,
    StoreCorruptionError,
    StoreError,
    shard_of,
)

__all__ = ["StoredArgument", "load_argument", "load_case"]


def _record_seq(record: dict[str, Any]) -> int:
    return record["seq"]


#: Keys every record of a shard kind must carry (validated as the shard
#: streams, so malformed-but-decodable lines are corruption, not crashes).
_NODE_KEYS = ("seq", "id", "type", "text")
_LINK_KEYS = ("seq", "source", "target", "kind")
_EVIDENCE_KEYS = ("seq", "id", "kind", "description")
_CITATION_KEYS = ("seq", "solution", "evidence")


class StoredArgument:
    """A lazily-loaded view of one store directory.

    Opening the handle reads only the manifest.  Shards hydrate on
    demand and stay cached on the handle; :attr:`shards_read` records
    which shard files have been read (and verified) so far.
    """

    def __init__(self, directory: Path | str) -> None:
        self.path = Path(directory)
        manifest_path = self.path / MANIFEST_NAME
        if not manifest_path.exists():
            raise StoreError(f"no store manifest at {manifest_path}")
        try:
            manifest = json.loads(manifest_path.read_text())
        except json.JSONDecodeError as error:
            raise StoreCorruptionError(
                MANIFEST_NAME, f"manifest is not valid JSON ({error})"
            ) from None
        if manifest.get("schema") != STORE_SCHEMA_VERSION:
            raise StoreError(
                f"unsupported store schema {manifest.get('schema')!r} "
                f"(this reader speaks {STORE_SCHEMA_VERSION})"
            )
        if manifest.get("kind") not in ("argument", "case"):
            raise StoreError(f"unknown store kind {manifest.get('kind')!r}")
        if manifest.get("id_hash") != ID_HASH:
            raise StoreError(
                f"store sharded with {manifest.get('id_hash')!r}, "
                f"not {ID_HASH!r}"
            )
        shard_count = manifest.get("shard_count")
        node_shards = manifest.get("node_shards")
        link_shards = manifest.get("link_shards")
        if (
            not isinstance(shard_count, int)
            or shard_count < 1
            or not isinstance(node_shards, list)
            or not isinstance(link_shards, list)
            or len(node_shards) != shard_count
            or len(link_shards) != shard_count
            or not isinstance(manifest.get("shards"), dict)
        ):
            raise StoreCorruptionError(
                MANIFEST_NAME,
                f"inconsistent shard map (shard_count {shard_count!r}, "
                f"{len(node_shards or ())} node / "
                f"{len(link_shards or ())} link shard names)",
            )
        compression = manifest.get("compression")
        if compression not in COMPRESSIONS:
            raise StoreError(
                f"unsupported shard compression {compression!r} "
                f"(this reader speaks gzip or none)"
            )
        self.manifest = manifest
        self.name: str = manifest["name"]
        self.kind: str = manifest["kind"]
        self.shard_count: int = shard_count
        #: ``"gzip"`` when shards are compressed (transparent on read).
        self.compression: str | None = compression
        self._node_shard_names: list[str] = node_shards
        self._link_shard_names: list[str] = link_shards
        #: Shard files fully read (and checksum-verified) so far.
        self.shards_read: set[str] = set()
        #: True once :meth:`load` has rebuilt a full in-memory argument —
        #: the no-hydration assertions of the streaming well-formedness
        #: path key off this flag.
        self.hydrated = False
        # Lazy caches: shard index -> {node id: (seq, Node)} and
        # shard index -> {source id: [(seq, Link), ...]} in seq order.
        self._node_shards: dict[int, dict[str, tuple[int, Node]]] = {}
        self._link_shards: dict[int, dict[str, list[tuple[int, Link]]]] = {}

    def __len__(self) -> int:
        return self.manifest["node_count"]

    def __contains__(self, identifier: str) -> bool:
        shard = self._node_shard(shard_of(identifier, self.shard_count))
        return identifier in shard

    # -- verified shard streaming -----------------------------------------

    def _stream_shard(
        self, filename: str, required: tuple[str, ...] = ("seq",)
    ) -> Iterator[dict[str, Any]]:
        """Yield a shard's records, verifying integrity as they stream.

        The shard is read in one buffer (bounded by shard size, which the
        id-hash distribution keeps at roughly 1/shard_count of the store)
        so the CRC-32 and the UTF-8 decode each run once at C speed —
        this is the hot path of streaming well-formedness and of every
        load.  Per-line JSON errors — including lines that decode to
        something other than a record carrying the ``required`` keys —
        raise at the offending line; count and checksum are verified
        up front against the manifest, so a consumed stream implies an
        intact shard.  Counts, checksums, and line numbers always refer
        to the *decompressed* content of a gzip shard.
        """
        meta = self.manifest["shards"].get(filename)
        if meta is None:
            raise StoreError(f"shard {filename!r} not in the manifest")
        shard_path = self.path / filename
        if not shard_path.exists():
            raise StoreCorruptionError(filename, "shard file is missing")
        data = shard_path.read_bytes()
        if self.compression == GZIP_COMPRESSION:
            try:
                data = gzip.decompress(data)
            except (OSError, EOFError, zlib_error) as error:
                raise StoreCorruptionError(
                    filename, f"cannot decompress gzip shard ({error})"
                ) from None
        checksum = crc32(data)
        if checksum != meta["crc32"]:
            raise StoreCorruptionError(
                filename,
                f"checksum mismatch (manifest {meta['crc32']}, "
                f"content {checksum})",
            )
        try:
            text = data.decode("utf-8")
        except UnicodeDecodeError as error:
            line_number = data.count(b"\n", 0, error.start) + 1
            raise StoreCorruptionError(
                filename,
                f"line {line_number} is not valid JSON ({error})",
            ) from None
        lines = text.splitlines()
        if len(lines) != meta["records"]:
            raise StoreCorruptionError(
                filename,
                f"expected {meta['records']} record(s), found "
                f"{len(lines)} (truncated or padded shard)",
            )
        for line_number, line in enumerate(lines, start=1):
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise StoreCorruptionError(
                    filename,
                    f"line {line_number} is not valid JSON ({error})",
                ) from None
            if type(record) is not dict:
                record = None
            else:
                for key in required:
                    if key not in record:
                        record = None
                        break
            if record is None:
                raise StoreCorruptionError(
                    filename,
                    f"line {line_number} is not a store record "
                    f"(expected an object with {', '.join(required)})",
                )
            yield record
        self.shards_read.add(filename)

    def iter_node_records(self) -> Iterator[dict[str, Any]]:
        """All node records, merged across shards into ``seq`` order."""
        return heapq.merge(
            *(
                self._stream_shard(name, _NODE_KEYS)
                for name in self._node_shard_names
            ),
            key=_record_seq,
        )

    def iter_nodes(self) -> Iterator[Node]:
        """Stream every node in original insertion order."""
        for record in self.iter_node_records():
            yield node_from_payload(record)

    def iter_links(self) -> Iterator[Link]:
        """Stream every link in original insertion order."""
        for record in heapq.merge(
            *(
                self._stream_shard(name, _LINK_KEYS)
                for name in self._link_shard_names
            ),
            key=_record_seq,
        ):
            yield Link(
                record["source"], record["target"], LinkKind(record["kind"])
            )

    def iter_shard_nodes(self, index: int) -> Iterator[tuple[int, Node]]:
        """Stream one node shard's ``(seq, node)`` pairs, seq-ascending.

        The per-shard work unit of the parallel well-formedness engine:
        shard ``index`` holds exactly the nodes whose identifiers hash
        there, verified as they stream.
        """
        for record in self._stream_shard(
            self._node_shard_names[index], _NODE_KEYS
        ):
            yield record["seq"], node_from_payload(record)

    def iter_shard_links(self, index: int) -> Iterator[tuple[int, Link]]:
        """Stream one link shard's ``(seq, link)`` pairs, seq-ascending.

        Links shard by *source* id, so a node's outgoing links live in
        the shard its identifier hashes to — per-source order within a
        shard equals global insertion order.
        """
        for record in self._stream_shard(
            self._link_shard_names[index], _LINK_KEYS
        ):
            yield record["seq"], Link(
                record["source"], record["target"], LinkKind(record["kind"])
            )

    # -- lazy per-shard access ---------------------------------------------

    def _node_shard(self, index: int) -> dict[str, tuple[int, Node]]:
        shard = self._node_shards.get(index)
        if shard is None:
            shard = {
                record["id"]: (record["seq"], node_from_payload(record))
                for record in self._stream_shard(
                    self._node_shard_names[index], _NODE_KEYS
                )
            }
            self._node_shards[index] = shard
        return shard

    def _link_shard(self, index: int) -> dict[str, list[tuple[int, Link]]]:
        shard = self._link_shards.get(index)
        if shard is None:
            shard = {}
            for record in self._stream_shard(
                self._link_shard_names[index], _LINK_KEYS
            ):
                link = Link(
                    record["source"], record["target"],
                    LinkKind(record["kind"]),
                )
                shard.setdefault(link.source, []).append(
                    (record["seq"], link)
                )
            self._link_shards[index] = shard
        return shard

    def node(self, identifier: str) -> Node:
        """Fetch one node, hydrating only its shard."""
        shard = self._node_shard(shard_of(identifier, self.shard_count))
        try:
            return shard[identifier][1]
        except KeyError:
            raise StoreError(
                f"unknown node {identifier!r} in store {self.name!r}"
            ) from None

    def subtree(self, root_id: str) -> Argument:
        """Hydrate only the region reachable from ``root_id``.

        Follows outgoing links of every kind — the same reachable set as
        the in-memory :meth:`~repro.core.argument.Argument.subtree` —
        but reads only the link shards of frontier nodes and the node
        shards of members, so a localised sub-argument of a huge store
        touches a strict subset of the shards a full load would.
        """
        self.node(root_id)
        members: set[str] = set()
        gathered: list[tuple[int, Link]] = []
        stack = [root_id]
        while stack:
            identifier = stack.pop()
            if identifier in members:
                continue
            members.add(identifier)
            outgoing = self._link_shard(
                shard_of(identifier, self.shard_count)
            ).get(identifier, ())
            for seq, link in outgoing:
                gathered.append((seq, link))
                if link.target not in members:
                    stack.append(link.target)
        ordered_nodes = sorted(
            self._node_shard(shard_of(identifier, self.shard_count))
            [identifier]
            for identifier in members
        )
        gathered.sort()
        fragment = Argument(name=f"{self.name}/{root_id}")
        with fragment.batch():
            fragment.add_nodes(node for _, node in ordered_nodes)
            fragment.add_links(
                (link.source, link.target, link.kind)
                for _, link in gathered
            )
        return fragment

    # -- full hydration -----------------------------------------------------

    def load(self, into: type[Argument] | None = None) -> Argument:
        """Rebuild the full in-memory argument.

        Streams shards through the batch-mutation layer: the whole load
        is one logical change (a single version bump), and the mutation
        log records it as one contiguous delta.  ``into`` names the
        class to instantiate (an :class:`Argument` subclass taking the
        same constructor), so ``MyArgument.load(path)`` really returns a
        ``MyArgument``.
        """
        argument = (into or Argument)(name=self.name)
        with argument.batch():
            argument.add_nodes(self.iter_nodes())
            argument.add_links(
                (link.source, link.target, link.kind)
                for link in self.iter_links()
            )
        # Cross-check the manifest's totals: every shard verified
        # individually, but a tampered manifest could still understate
        # the shard list coherently — loudness beats silent data loss.
        if (
            len(argument) != self.manifest["node_count"]
            or len(argument.links) != self.manifest["link_count"]
        ):
            raise StoreCorruptionError(
                MANIFEST_NAME,
                f"loaded {len(argument)} nodes / "
                f"{len(argument.links)} links, manifest claims "
                f"{self.manifest['node_count']} / "
                f"{self.manifest['link_count']}",
            )
        self.hydrated = True
        return argument


def load_argument(
    directory: Path | str, *, into: type[Argument] | None = None
) -> Argument:
    """Fully hydrate the argument stored in a directory."""
    return StoredArgument(directory).load(into=into)


def load_case(
    directory: Path | str, *, into: type[AssuranceCase] | None = None
) -> AssuranceCase:
    """Fully hydrate an assurance case stored by
    :func:`~repro.store.writer.save_case`.

    The lifecycle log restarts (see the writer); evidence and citations
    replay in their original registration order, so a reloaded case
    re-serialises byte-identically.  ``into`` names the
    :class:`AssuranceCase` subclass to instantiate.
    """
    stored = StoredArgument(directory)
    if stored.kind != "case":
        raise StoreError(
            f"store at {stored.path} holds an argument, not a case"
        )
    argument = stored.load()
    manifest = stored.manifest
    for key in ("case_name", "evidence_shard", "citations_shard"):
        if not isinstance(manifest.get(key), str):
            raise StoreCorruptionError(
                MANIFEST_NAME, f"case manifest is missing {key!r}"
            )
    criterion = None
    if manifest.get("criterion"):
        criterion = SafetyCriterion(
            statement=manifest["criterion"]["statement"],
            risk_metric=manifest["criterion"]["risk_metric"],
            threshold=manifest["criterion"]["threshold"],
        )
    case = (into or AssuranceCase)(
        manifest["case_name"], argument, criterion
    )
    for record in stored._stream_shard(
        manifest["evidence_shard"], _EVIDENCE_KEYS
    ):
        case.evidence.add(evidence_from_payload(record))
    for record in stored._stream_shard(
        manifest["citations_shard"], _CITATION_KEYS
    ):
        for evidence_id in record["evidence"]:
            case.cite(record["solution"], evidence_id)
    return case
