"""Readers for the persistent sharded argument store.

:class:`StoredArgument` is the handle other layers consume.  It supports
three access patterns, cheapest first:

* **streaming** — :meth:`StoredArgument.iter_nodes` /
  :meth:`~StoredArgument.iter_links` heap-merge the shards by ``seq`` and
  yield records in exact insertion order without holding the case in
  memory; this is what :func:`repro.core.query.select` uses to scan a
  stored argument shard by shard;
* **lazy per-shard** — :meth:`StoredArgument.node` and
  :meth:`~StoredArgument.subtree` hydrate only the shards an access
  actually touches (a node lookup reads one shard; a subtree load reads
  the node and link shards of the reachable region), tracked in
  :attr:`StoredArgument.shards_read` so tests and benchmarks can assert
  partial loads really were partial;
* **full hydration** — :meth:`StoredArgument.load` rebuilds a live
  :class:`~repro.core.argument.Argument`, replaying every record through
  the PR 2 batch-mutation layer: one version bump for the whole load,
  and the mutation delta log carries the entire load as one delta for
  incremental index consumers.

When the store carries an **append journal** (see
:mod:`repro.store.journal`), every access path replays it transparently:
journal entries shadow shard records by identifier, removed records
vanish, appended ones order after the base records with continuing
sequence numbers — so streaming, per-shard iteration, ``node``,
``subtree``, and ``load`` all see the post-edit argument without the
store ever being rewritten.  ``ignore_torn_tail=True`` recovers from a
torn final journal segment (a crash mid-append at the filesystem level)
by dropping exactly that segment; :meth:`StoredArgument.append_delta`,
:meth:`~StoredArgument.compact`, and :meth:`~StoredArgument.gc` are the
journal's write-side entry points.

Every shard is verified as it streams — CRC-32 and record count against
the manifest, JSON decode per line — and any mismatch raises
:class:`~repro.store.format.StoreCorruptionError` naming the shard.
"""

from __future__ import annotations

import gzip
import heapq
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator
from zlib import crc32, error as zlib_error

from ..core.argument import Argument, Link, LinkKind
from ..core.case import AssuranceCase, SafetyCriterion
from ..core.nodes import Node, NodeType
from ..notation.json_io import evidence_from_payload, node_from_payload
from .format import (
    COMPRESSIONS,
    GZIP_COMPRESSION,
    ID_HASH,
    JOURNAL_SCHEMA_VERSION,
    MANIFEST_NAME,
    STORE_SCHEMA_VERSION,
    StoreConflictError,
    StoreCorruptionError,
    StoreError,
    shard_of,
)

__all__ = [
    "StoredArgument", "StoreGeneration", "load_argument", "load_case",
]


@dataclass(frozen=True)
class StoreGeneration:
    """An opaque token naming one committed store generation.

    Two handles (or two moments of one handle) see the same store state
    iff their tokens compare equal.  ``fingerprint`` is the CRC-32 of
    the manifest bytes — the same identity ``save(journal=True)`` pins
    its compare-and-append on; ``base`` and ``segments`` distinguish a
    journal growth (same base) from a rewrite for consumers that care.
    """

    fingerprint: int
    base: "tuple[str, ...]"
    segments: "tuple[str, ...]"

    def __str__(self) -> str:
        return f"{self.fingerprint:08x}+{len(self.segments)}"


def _record_seq(record: dict[str, Any]) -> int:
    return record["seq"]


#: Keys every record of a shard kind must carry (validated as the shard
#: streams, so malformed-but-decodable lines are corruption, not crashes).
_NODE_KEYS = ("seq", "id", "type", "text")
_LINK_KEYS = ("seq", "source", "target", "kind")
_EVIDENCE_KEYS = ("seq", "id", "kind", "description")
_CITATION_KEYS = ("seq", "solution", "evidence")


#: Sentinel distinguishing "no shadow entry" from a ``None`` tombstone.
_MISSING = object()


class StoredArgument:
    """A lazily-loaded view of one store directory.

    Opening the handle reads only the manifest.  Shards hydrate on
    demand and stay cached on the handle; :attr:`shards_read` records
    which shard files have been read (and verified) so far.  The append
    journal, if any, parses lazily on the first access that needs it
    and shadows base records everywhere; ``ignore_torn_tail=True``
    drops a torn final journal segment instead of raising (recovering
    the last consistent state after a crash mid-append).

    ``generation`` opens the handle *at* a previously captured
    :class:`StoreGeneration` instead of whatever HEAD the manifest names
    (see :meth:`_pin_to`): the parallel well-formedness workers open
    with their parent's token so every process checks the one committed
    snapshot the parent pinned, and a base rotated out from under the
    token raises :class:`~repro.store.StoreConflictError` instead of
    silently mixing generations.
    """

    def __init__(
        self,
        directory: Path | str,
        *,
        ignore_torn_tail: bool = False,
        generation: StoreGeneration | None = None,
    ) -> None:
        self.path = Path(directory)
        #: Tolerate (drop) a torn final journal segment instead of
        #: raising :class:`StoreCorruptionError` — crash recovery.
        self.ignore_torn_tail = ignore_torn_tail
        #: Shard files fully read (and checksum-verified) so far.
        self.shards_read: set[str] = set()
        #: True once :meth:`load` has rebuilt a full in-memory argument —
        #: the no-hydration assertions of the streaming well-formedness
        #: path key off this flag.
        self.hydrated = False
        # Lazy caches: shard index -> {node id: (seq, Node)} and
        # shard index -> {source id: [(seq, Link), ...]} in seq order.
        self._node_shards: dict[int, dict[str, tuple[int, Node]]] = {}
        self._link_shards: dict[int, dict[str, list[tuple[int, Link]]]] = {}
        self._overlay: Any = None
        # Loaded (and journal-patched) search sidecar; survives journal
        # refreshes like the base shard caches do, so each append only
        # patches the delta — see repro.store.search.load_search_index.
        self._search_index: Any = None
        self._read_manifest()
        if generation is not None:
            self._pin_to(generation)

    def _read_manifest(self) -> None:
        """Parse and validate the manifest; (re)set the handle's view."""
        manifest_path = self.path / MANIFEST_NAME
        if not manifest_path.exists():
            raise StoreError(f"no store manifest at {manifest_path}")
        raw = manifest_path.read_bytes()
        try:
            manifest = json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise StoreCorruptionError(
                MANIFEST_NAME, f"manifest is not valid JSON ({error})"
            ) from None
        #: CRC-32 of the manifest bytes — the store generation's
        #: identity.  ``Argument.save(journal=True)`` compares it
        #: against the baseline recorded at the last save/load, so any
        #: external change to the store (appends by another handle,
        #: rewrites, compaction) falls back to a full rewrite instead of
        #: appending a delta onto state it never saw.
        self.manifest_fingerprint = crc32(raw)
        if manifest.get("schema") != STORE_SCHEMA_VERSION:
            raise StoreError(
                f"unsupported store schema {manifest.get('schema')!r} "
                f"(this reader speaks {STORE_SCHEMA_VERSION})"
            )
        if manifest.get("kind") not in ("argument", "case"):
            raise StoreError(f"unknown store kind {manifest.get('kind')!r}")
        if manifest.get("id_hash") != ID_HASH:
            raise StoreError(
                f"store sharded with {manifest.get('id_hash')!r}, "
                f"not {ID_HASH!r}"
            )
        shard_count = manifest.get("shard_count")
        node_shards = manifest.get("node_shards")
        link_shards = manifest.get("link_shards")
        if (
            not isinstance(shard_count, int)
            or shard_count < 1
            or not isinstance(node_shards, list)
            or not isinstance(link_shards, list)
            or len(node_shards) != shard_count
            or len(link_shards) != shard_count
            or not isinstance(manifest.get("shards"), dict)
        ):
            raise StoreCorruptionError(
                MANIFEST_NAME,
                f"inconsistent shard map (shard_count {shard_count!r}, "
                f"{len(node_shards or ())} node / "
                f"{len(link_shards or ())} link shard names)",
            )
        compression = manifest.get("compression")
        if compression not in COMPRESSIONS:
            raise StoreError(
                f"unsupported shard compression {compression!r} "
                f"(this reader speaks gzip or none)"
            )
        journal = manifest.get("journal", [])
        if journal:
            if not isinstance(journal, list) or not all(
                isinstance(name, str) for name in journal
            ):
                raise StoreCorruptionError(
                    MANIFEST_NAME, "journal segment list is malformed"
                )
            if manifest.get("journal_schema") != JOURNAL_SCHEMA_VERSION:
                raise StoreError(
                    "unsupported journal schema "
                    f"{manifest.get('journal_schema')!r} (this reader "
                    f"speaks {JOURNAL_SCHEMA_VERSION})"
                )
        self.manifest = manifest
        self.name: str = manifest["name"]
        self.kind: str = manifest["kind"]
        self.shard_count: int = shard_count
        #: ``"gzip"`` when shards are compressed (transparent on read).
        self.compression: str | None = compression
        self._node_shard_names: list[str] = node_shards
        self._link_shard_names: list[str] = link_shards
        #: Journal segment names, oldest first (empty: no journal).
        self.journal_segments: list[str] = journal
        try:
            #: Record totals of the base shards alone — the seq domain
            #: journal-appended records continue from.
            self.base_node_total: int = sum(
                manifest["shards"][name]["records"] for name in node_shards
            )
            self.base_link_total: int = sum(
                manifest["shards"][name]["records"] for name in link_shards
            )
        except (KeyError, TypeError):
            raise StoreCorruptionError(
                MANIFEST_NAME,
                "shard map is missing entries for listed shards",
            ) from None
        self._overlay = None

    # -- journal plumbing ---------------------------------------------------

    def journal_overlay(self) -> Any:
        """The parsed journal overlay (parsing segments on first use)."""
        if self._overlay is None:
            from .journal import JournalOverlay, load_overlay

            if self.journal_segments:
                self._overlay = load_overlay(self)
            else:
                self._overlay = JournalOverlay(())
        return self._overlay

    def _overlay_or_none(self) -> Any:
        """The overlay, or ``None`` when the store has no journal."""
        if not self.journal_segments:
            return None
        return self.journal_overlay()

    def journal_ops(self) -> "list[tuple[str, Any]]":
        """The decoded journal mutations, oldest first — the persisted
        delta stream :meth:`repro.core.analysis.IncrementalChecker.
        from_store` consumes.  Read-only: the overlay owns the list."""
        return self.journal_overlay().ops

    def base_key(self) -> tuple:
        """Identity of the base shard generation (changes on any full
        rewrite or compaction, never on a journal append)."""
        return tuple(self._node_shard_names) + tuple(self._link_shard_names)

    def pin(self) -> StoreGeneration:
        """The generation this handle is currently serving.

        A :class:`StoredArgument` **is** a snapshot reader: nothing it
        does implicitly resyncs to the store on disk, and the files its
        manifest references are content-addressed and never overwritten
        — later commits land under fresh names, and even the sweep of
        superseded files is deferred to an explicit lease-guarded
        ``gc()``.  So the handle keeps serving exactly this generation,
        however many writers commit behind it, until the owner *opts in*
        to :meth:`refresh`.  The token supports optimistic concurrency:
        capture it, do slow read work, compare against a fresh handle's
        token (or send it to the service's append endpoint) to detect
        that the world moved.
        """
        return StoreGeneration(
            fingerprint=self.manifest_fingerprint,
            base=tuple(self._node_shard_names)
            + tuple(self._link_shard_names),
            segments=tuple(self.journal_segments),
        )

    #: ``pin()`` as a property, for log lines and service payloads.
    @property
    def generation(self) -> StoreGeneration:
        return self.pin()

    def _pin_to(self, generation: StoreGeneration) -> None:
        """Rewind a freshly-opened handle to serve ``generation`` exactly.

        The snapshot contract of :meth:`pin` makes this possible: base
        shards and journal segments are content-addressed, never
        overwritten, and never swept while a pinned reader may hold
        them (the sweep is an explicit lease-guarded ``gc()``).  So
        when the store has only *grown* since the token was captured —
        journal segments appended behind it — the pinned generation is
        still fully on disk, and this handle serves it by truncating
        its segment list back to the pinned prefix.  That is how a
        parallel check's worker processes see their parent's snapshot:
        they open with the parent's token, however many appends another
        editor lands mid-check.

        What cannot be rewound raises
        :class:`~repro.store.StoreConflictError` naming both
        generations: a replaced base (a compaction or full rewrite
        rotated the shard files) or a reshaped journal (a coalesce
        merged the pinned segments away).
        """
        current = self.pin()
        if current == generation:
            return
        if current.base != generation.base:
            raise StoreConflictError(
                f"store at {self.path} no longer serves generation "
                f"{generation}: the base shards rotated (a compaction "
                f"or full rewrite committed mid-read) and this handle "
                f"opened generation {current}"
            )
        pinned = generation.segments
        if tuple(current.segments[:len(pinned)]) != pinned:
            raise StoreConflictError(
                f"store at {self.path} no longer serves generation "
                f"{generation}: the journal segments were coalesced or "
                f"replaced mid-read and this handle opened generation "
                f"{current}"
            )
        # Pinned prefix intact: rewind to it.  The manifest copy is
        # patched to stay self-consistent with the truncated journal
        # (the count fields reflect the newer journal's deltas; with no
        # segments left the overlay no longer corrects them).
        manifest = dict(self.manifest)
        self.journal_segments = list(pinned)
        if pinned:
            manifest["journal"] = list(pinned)
        else:
            manifest.pop("journal", None)
            manifest.pop("journal_schema", None)
            manifest["node_count"] = self.base_node_total
            manifest["link_count"] = self.base_link_total
        self.manifest = manifest
        self.manifest_fingerprint = generation.fingerprint
        self._overlay = None
        # A patched index cannot be *unwound* to the pinned prefix;
        # drop it and let the sidecar re-verify against the rewound ops.
        self._search_index = None

    def refresh(self) -> str:
        """Re-read the manifest; resync the handle to the store on disk.

        **Opt-in per reader**: no read path calls this implicitly, so a
        handle that never refreshes is a stable snapshot of the
        generation it opened (see :meth:`pin`).  Returns
        ``"unchanged"``, ``"journal"`` (same base shards, new journal
        segments — base caches stay valid), ``"coalesced"`` (same base
        shards, journal segments merged — base caches stay valid, the
        overlay re-parses), or ``"rewritten"`` (a full save or
        compaction replaced the base: every cache drops).  The
        incremental store checker polls this before each re-check.
        """
        previous = self.manifest
        previous_base = self.base_key()
        previous_journal = list(self.journal_segments)
        previous_overlay = self._overlay
        self._read_manifest()
        if self.manifest == previous:
            if (
                previous_overlay is not None
                and previous_overlay.torn_segment is not None
            ):
                # Never carry a torn-tail overlay across a refresh: the
                # damaged segment may have been repaired in place (same
                # manifest, content restored), and serving the recovered
                # pre-append state would be silently stale.  Dropping
                # the overlay re-verifies the journal from disk on the
                # next access.
                return "unchanged"
            self._overlay = previous_overlay
            return "unchanged"
        if self.base_key() == previous_base:
            if (
                self.journal_segments[:len(previous_journal)]
                == previous_journal
            ):
                # Same base generation, journal only grew: extend the
                # already-parsed overlay with just the new segments
                # instead of re-decoding the whole journal (keeps a long
                # editing session's refresh cost O(delta)).  A previous
                # overlay that dropped a torn tail is *rebuilt* instead
                # — extending it would keep serving the recovered state
                # while the on-disk journal has moved past it.
                if (
                    previous_overlay is not None
                    and previous_overlay.torn_segment is None
                ):
                    from .journal import load_overlay

                    self._overlay = load_overlay(
                        self, base=previous_overlay,
                        start=len(previous_journal),
                    )
                return "journal"
            # Same base shards but a different segment list: a
            # coalesce merged the journal.  The op stream is unchanged,
            # so the base shard caches stay valid; only the overlay
            # re-parses (lazily) from the merged segment.
            return "coalesced"
        self._node_shards.clear()
        self._link_shards.clear()
        self.shards_read.clear()
        self._search_index = None
        return "rewritten"

    def adopt_base_caches(self, other: "StoredArgument") -> bool:
        """Share another handle's base-shard caches, if generations align.

        The service's serving chain opens a fresh pinned handle per
        committed write; base shards are immutable content-addressed
        files, so when both handles reference the same base generation
        their per-shard caches are interchangeable — sharing them makes
        a new snapshot O(journal delta) instead of O(read shards again).
        Returns whether adoption happened.
        """
        if other.base_key() != self.base_key() or other is self:
            return False
        self._node_shards = other._node_shards
        self._link_shards = other._link_shards
        self.shards_read |= other.shards_read & set(
            self._node_shard_names
        ) | other.shards_read & set(self._link_shard_names)
        return True

    def append_delta(self, delta: Any) -> dict[str, Any]:
        """Seal one mutation delta as a journal segment (O(delta) writes).

        See :func:`repro.store.journal.append_delta`; the handle resyncs
        to the committed manifest before returning.
        """
        from .journal import append_delta

        manifest = append_delta(self, delta)
        self.refresh()
        return manifest

    def compact(self) -> dict[str, Any]:
        """Fold the journal into fresh shards (atomic manifest swap).

        See :func:`repro.store.journal.compact`; the handle resyncs to
        the compacted store before returning.
        """
        from .journal import compact

        manifest = compact(self)
        self.refresh()
        return manifest

    def coalesce(self) -> dict[str, Any]:
        """Merge all journal segments into one (atomic manifest swap).

        Same op stream, bounded manifest — see
        :func:`repro.store.journal.coalesce`; the handle resyncs to the
        coalesced store before returning.
        """
        from .journal import coalesce

        manifest = coalesce(self)
        self.refresh()
        return manifest

    def gc(self) -> list[str]:
        """Remove store files the live manifest no longer references.

        Resyncs to the manifest on disk first — sweeping against a
        stale in-memory view would delete a newer generation's shards.
        See :func:`repro.store.journal.gc` for the safety contract (no
        concurrent writers).
        """
        from .journal import gc

        self.refresh()
        return gc(self)

    # -- search sidecar ------------------------------------------------------

    def search_index(self) -> Any:
        """The store's search index, journal-patched to this handle's
        generation, or ``None`` when no current sidecar exists.  See
        :func:`repro.store.search.load_search_index`."""
        from .search import load_search_index

        return load_search_index(self)

    def build_search_index(self) -> dict[str, Any]:
        """Build (or rebuild) the persisted search sidecar and commit it.

        A lease-guarded manifest swap like any other write — see
        :func:`repro.store.search.build_search_index`; the handle
        resyncs to the committed manifest before returning.
        """
        from .search import build_search_index

        manifest = build_search_index(self)
        self.refresh()
        return manifest

    def search(self, query_text: str, **kwargs: Any) -> list:
        """Ranked query-biased search over this store — see
        :func:`repro.core.search.search`."""
        from ..core.search import search

        return search(self, query_text, **kwargs)

    # -- effective (post-journal) totals ------------------------------------

    @property
    def node_count(self) -> int:
        """Node count after journal replay (== manifest for clean tails)."""
        overlay = self._overlay_or_none()
        if overlay is None:
            return self.manifest["node_count"]
        return self.base_node_total + overlay.node_delta

    @property
    def link_count(self) -> int:
        """Link count after journal replay (== manifest for clean tails)."""
        overlay = self._overlay_or_none()
        if overlay is None:
            return self.manifest["link_count"]
        return self.base_link_total + overlay.link_delta

    def __len__(self) -> int:
        return self.node_count

    def __contains__(self, identifier: str) -> bool:
        overlay = self._overlay_or_none()
        if overlay is not None:
            if identifier in overlay.appended_nodes:
                return True
            shadow = overlay.node_shadow.get(identifier, _MISSING)
            if shadow is None:
                return False
            if shadow is not _MISSING:
                return True
        shard = self._node_shard(shard_of(identifier, self.shard_count))
        return identifier in shard

    # -- verified shard streaming -----------------------------------------

    def _stream_shard(
        self, filename: str, required: tuple[str, ...] = ("seq",)
    ) -> Iterator[dict[str, Any]]:
        """Yield a shard's records, verifying integrity as they stream.

        The shard is read in one buffer (bounded by shard size, which the
        id-hash distribution keeps at roughly 1/shard_count of the store)
        so the CRC-32 and the UTF-8 decode each run once at C speed —
        this is the hot path of streaming well-formedness and of every
        load.  Per-line JSON errors — including lines that decode to
        something other than a record carrying the ``required`` keys —
        raise at the offending line; count and checksum are verified
        up front against the manifest, so a consumed stream implies an
        intact shard.  Counts, checksums, and line numbers always refer
        to the *decompressed* content of a gzip shard.
        """
        meta = self.manifest["shards"].get(filename)
        if meta is None:
            raise StoreError(f"shard {filename!r} not in the manifest")
        shard_path = self.path / filename
        if not shard_path.exists():
            raise StoreCorruptionError(filename, "shard file is missing")
        data = shard_path.read_bytes()
        if self.compression == GZIP_COMPRESSION:
            try:
                data = gzip.decompress(data)
            except (OSError, EOFError, zlib_error) as error:
                raise StoreCorruptionError(
                    filename, f"cannot decompress gzip shard ({error})"
                ) from None
        checksum = crc32(data)
        if checksum != meta["crc32"]:
            raise StoreCorruptionError(
                filename,
                f"checksum mismatch (manifest {meta['crc32']}, "
                f"content {checksum})",
            )
        try:
            text = data.decode("utf-8")
        except UnicodeDecodeError as error:
            line_number = data.count(b"\n", 0, error.start) + 1
            raise StoreCorruptionError(
                filename,
                f"line {line_number} is not valid JSON ({error})",
            ) from None
        lines = text.splitlines()
        if len(lines) != meta["records"]:
            raise StoreCorruptionError(
                filename,
                f"expected {meta['records']} record(s), found "
                f"{len(lines)} (truncated or padded shard)",
            )
        for line_number, line in enumerate(lines, start=1):
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise StoreCorruptionError(
                    filename,
                    f"line {line_number} is not valid JSON ({error})",
                ) from None
            if type(record) is not dict:
                record = None
            else:
                for key in required:
                    if key not in record:
                        record = None
                        break
            if record is None:
                raise StoreCorruptionError(
                    filename,
                    f"line {line_number} is not a store record "
                    f"(expected an object with {', '.join(required)})",
                )
            yield record
        self.shards_read.add(filename)

    def iter_node_records(self) -> Iterator[dict[str, Any]]:
        """All *base* node records, merged across shards into ``seq``
        order — pre-journal; :meth:`iter_nodes` applies the overlay."""
        return heapq.merge(
            *(
                self._stream_shard(name, _NODE_KEYS)
                for name in self._node_shard_names
            ),
            key=_record_seq,
        )

    def _shadowed_node(
        self, overlay: Any, record: dict[str, Any]
    ) -> Node | None:
        """The node a base record contributes under the overlay, if any."""
        identifier = record["id"]
        shadow = overlay.node_shadow.get(identifier, _MISSING)
        if shadow is _MISSING:
            return node_from_payload(record)
        return shadow  # replacement Node, or None for a tombstone

    def iter_nodes(self) -> Iterator[Node]:
        """Stream every node in insertion order (journal replayed)."""
        overlay = self._overlay_or_none()
        if overlay is None:
            for record in self.iter_node_records():
                yield node_from_payload(record)
            return
        for record in self.iter_node_records():
            node = self._shadowed_node(overlay, record)
            if node is not None:
                yield node
        yield from overlay.appended_nodes.values()

    def iter_links(self) -> Iterator[Link]:
        """Stream every link in insertion order (journal replayed)."""
        overlay = self._overlay_or_none()
        for record in heapq.merge(
            *(
                self._stream_shard(name, _LINK_KEYS)
                for name in self._link_shard_names
            ),
            key=_record_seq,
        ):
            link = Link(
                record["source"], record["target"], LinkKind(record["kind"])
            )
            if overlay is not None and link in overlay.link_tombstones:
                continue
            yield link
        if overlay is not None:
            yield from overlay.appended_links

    def iter_shard_nodes(self, index: int) -> Iterator[tuple[int, Node]]:
        """Stream one node shard's ``(seq, node)`` pairs, seq-ascending.

        The per-shard work unit of the parallel well-formedness engine:
        shard ``index`` holds exactly the nodes whose identifiers hash
        there, verified as they stream.  Journal entries replay in
        place: shadowed records substitute, tombstoned ones vanish, and
        appended nodes hashing to this shard follow with their
        post-base seqs — the id-hash partition survives the journal.
        """
        overlay = self._overlay_or_none()
        for record in self._stream_shard(
            self._node_shard_names[index], _NODE_KEYS
        ):
            if overlay is None:
                yield record["seq"], node_from_payload(record)
                continue
            node = self._shadowed_node(overlay, record)
            if node is not None:
                yield record["seq"], node
        if overlay is not None:
            base_total = self.base_node_total
            for position, node in enumerate(
                overlay.appended_nodes.values()
            ):
                if shard_of(node.identifier, self.shard_count) == index:
                    yield base_total + position, node

    def iter_shard_links(self, index: int) -> Iterator[tuple[int, Link]]:
        """Stream one link shard's ``(seq, link)`` pairs, seq-ascending.

        Links shard by *source* id, so a node's outgoing links live in
        the shard its identifier hashes to — per-source order within a
        shard equals global insertion order.  The journal replays in
        place exactly as in :meth:`iter_shard_nodes`.
        """
        overlay = self._overlay_or_none()
        for record in self._stream_shard(
            self._link_shard_names[index], _LINK_KEYS
        ):
            link = Link(
                record["source"], record["target"], LinkKind(record["kind"])
            )
            if overlay is not None and link in overlay.link_tombstones:
                continue
            yield record["seq"], link
        if overlay is not None:
            base_total = self.base_link_total
            for position, link in enumerate(overlay.appended_links):
                if shard_of(link.source, self.shard_count) == index:
                    yield base_total + position, link

    # -- lazy per-shard access ---------------------------------------------

    def _node_shard(self, index: int) -> dict[str, tuple[int, Node]]:
        shard = self._node_shards.get(index)
        if shard is None:
            shard = {
                record["id"]: (record["seq"], node_from_payload(record))
                for record in self._stream_shard(
                    self._node_shard_names[index], _NODE_KEYS
                )
            }
            self._node_shards[index] = shard
        return shard

    def _link_shard(self, index: int) -> dict[str, list[tuple[int, Link]]]:
        shard = self._link_shards.get(index)
        if shard is None:
            shard = {}
            for record in self._stream_shard(
                self._link_shard_names[index], _LINK_KEYS
            ):
                link = Link(
                    record["source"], record["target"],
                    LinkKind(record["kind"]),
                )
                shard.setdefault(link.source, []).append(
                    (record["seq"], link)
                )
            self._link_shards[index] = shard
        return shard

    def _node_entry(self, identifier: str) -> tuple[int, Node]:
        """One node's ``(seq, node)`` under the overlay (KeyError if
        absent), hydrating at most its base shard."""
        overlay = self._overlay_or_none()
        if overlay is not None:
            position = overlay.appended_node_positions.get(identifier)
            if position is not None:
                return (
                    self.base_node_total + position,
                    overlay.appended_nodes[identifier],
                )
            shadow = overlay.node_shadow.get(identifier, _MISSING)
            if shadow is None:
                raise KeyError(identifier)
            if shadow is not _MISSING:
                shard = self._node_shard(
                    shard_of(identifier, self.shard_count)
                )
                return shard[identifier][0], shadow
        shard = self._node_shard(shard_of(identifier, self.shard_count))
        return shard[identifier]

    def node(self, identifier: str) -> Node:
        """Fetch one node, hydrating at most its shard (journal replayed)."""
        try:
            return self._node_entry(identifier)[1]
        except KeyError:
            raise StoreError(
                f"unknown node {identifier!r} in store {self.name!r}"
            ) from None

    def _outgoing(self, identifier: str) -> list[tuple[int, Link]]:
        """A node's outgoing ``(seq, link)`` pairs under the overlay,
        hydrating only the one link shard its identifier hashes to."""
        overlay = self._overlay_or_none()
        outgoing = list(
            self._link_shard(
                shard_of(identifier, self.shard_count)
            ).get(identifier, ())
        )
        if overlay is not None:
            if overlay.link_tombstones:
                outgoing = [
                    (seq, link)
                    for seq, link in outgoing
                    if link not in overlay.link_tombstones
                ]
            outgoing.extend(overlay.appended_out.get(identifier, ()))
        return outgoing

    def subtree(self, root_id: str) -> Argument:
        """Hydrate only the region reachable from ``root_id``.

        Follows outgoing links of every kind — the same reachable set as
        the in-memory :meth:`~repro.core.argument.Argument.subtree` —
        but reads only the link shards of frontier nodes and the node
        shards of members, so a localised sub-argument of a huge store
        touches a strict subset of the shards a full load would.
        Journal entries replay transparently.
        """
        self.node(root_id)
        members: set[str] = set()
        gathered: list[tuple[int, Link]] = []
        stack = [root_id]
        while stack:
            identifier = stack.pop()
            if identifier in members:
                continue
            members.add(identifier)
            for seq, link in self._outgoing(identifier):
                gathered.append((seq, link))
                if link.target not in members:
                    stack.append(link.target)
        ordered_nodes = sorted(
            self._node_entry(identifier) for identifier in members
        )
        gathered.sort()
        fragment = Argument(name=f"{self.name}/{root_id}")
        with fragment.batch():
            fragment.add_nodes(node for _, node in ordered_nodes)
            fragment.add_links(
                (link.source, link.target, link.kind)
                for _, link in gathered
            )
        return fragment

    # -- full hydration -----------------------------------------------------

    def load(self, into: type[Argument] | None = None) -> Argument:
        """Rebuild the full in-memory argument.

        Streams shards through the batch-mutation layer: the whole load
        is one logical change (a single version bump), and the mutation
        log records it as one contiguous delta.  ``into`` names the
        class to instantiate (an :class:`Argument` subclass taking the
        same constructor), so ``MyArgument.load(path)`` really returns a
        ``MyArgument``.
        """
        argument = (into or Argument)(name=self.name)
        with argument.batch():
            argument.add_nodes(self.iter_nodes())
            argument.add_links(
                (link.source, link.target, link.kind)
                for link in self.iter_links()
            )
        # Cross-check the totals (journal replay included): every shard
        # verified individually, but a tampered manifest could still
        # understate the shard list coherently — loudness beats silent
        # data loss.
        if (
            len(argument) != self.node_count
            or len(argument.links) != self.link_count
        ):
            raise StoreCorruptionError(
                MANIFEST_NAME,
                f"loaded {len(argument)} nodes / "
                f"{len(argument.links)} links, manifest claims "
                f"{self.node_count} / {self.link_count}",
            )
        self.hydrated = True
        # The loaded argument continues the stored state: record the
        # baseline so its next save(journal=True) appends a delta.
        argument.mark_persisted(self.path)
        return argument


def load_argument(
    directory: Path | str,
    *,
    into: type[Argument] | None = None,
    ignore_torn_tail: bool = False,
) -> Argument:
    """Fully hydrate the argument stored in a directory.

    ``ignore_torn_tail=True`` recovers from a torn final journal
    segment (see :mod:`repro.store.journal`) instead of raising.
    """
    return StoredArgument(
        directory, ignore_torn_tail=ignore_torn_tail
    ).load(into=into)


def load_case(
    directory: Path | str,
    *,
    into: type[AssuranceCase] | None = None,
    ignore_torn_tail: bool = False,
) -> AssuranceCase:
    """Fully hydrate an assurance case stored by
    :func:`~repro.store.writer.save_case`.

    The lifecycle log restarts (see the writer); evidence and citations
    replay in their original registration order, so a reloaded case
    re-serialises byte-identically.  ``into`` names the
    :class:`AssuranceCase` subclass to instantiate.
    """
    stored = StoredArgument(directory, ignore_torn_tail=ignore_torn_tail)
    if stored.kind != "case":
        raise StoreError(
            f"store at {stored.path} holds an argument, not a case"
        )
    argument = stored.load()
    manifest = stored.manifest
    for key in ("case_name", "evidence_shard", "citations_shard"):
        if not isinstance(manifest.get(key), str):
            raise StoreCorruptionError(
                MANIFEST_NAME, f"case manifest is missing {key!r}"
            )
    criterion = None
    if manifest.get("criterion"):
        criterion = SafetyCriterion(
            statement=manifest["criterion"]["statement"],
            risk_metric=manifest["criterion"]["risk_metric"],
            threshold=manifest["criterion"]["threshold"],
        )
    case = (into or AssuranceCase)(
        manifest["case_name"], argument, criterion
    )
    for record in stored._stream_shard(
        manifest["evidence_shard"], _EVIDENCE_KEYS
    ):
        case.evidence.add(evidence_from_payload(record))
    journaled = bool(stored.journal_segments)
    for record in stored._stream_shard(
        manifest["citations_shard"], _CITATION_KEYS
    ):
        solution = record["solution"]
        # Journal edits can orphan a base citations record — its
        # solution removed, or retyped away from SOLUTION, after the
        # shard was written.  Those citations are gone with the node,
        # not corruption: drop them instead of failing the load.  Only
        # a journal can explain such an orphan (compaction reconciles
        # the shard), so on journal-less stores a dangling citation
        # stays what it always was — a loud corruption error.
        if journaled and (
            solution not in argument
            or argument.node(solution).node_type is not NodeType.SOLUTION
        ):
            continue
        for evidence_id in record["evidence"]:
            case.cite(solution, evidence_id)
    return case
