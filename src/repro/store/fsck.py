"""``python -m repro.store.fsck`` — offline store verification CLI.

Runs :func:`repro.analysis_static.fsck.fsck_store` over one or more
store directories and prints each report.  Exit status is the worst
outcome over all stores: nonzero iff any store has a fatal finding, or
— with ``--strict`` — any recoverable one (a torn journal tail).

::

    $ python -m repro.store.fsck case.store other.store
    $ python -m repro.store.fsck --strict nightly/*.store
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from ..analysis_static.fsck import FsckReport, fsck_store

__all__ = ["main"]


def main(argv: "Optional[Sequence[str]]" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.store.fsck",
        description=(
            "Statically cross-check store directories against their "
            "manifests without loading them into the engine."
        ),
    )
    parser.add_argument(
        "stores", nargs="+", metavar="STORE",
        help="store directory (the one holding manifest.json)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="treat recoverable findings (torn journal tail) as failures",
    )
    options = parser.parse_args(argv)
    worst = 0
    for store in options.stores:
        report: FsckReport = fsck_store(store)
        print(report.render())
        worst = max(worst, report.exit_code(strict=options.strict))
    return worst


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    raise SystemExit(main())
