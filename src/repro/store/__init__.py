"""Persistent sharded storage for arguments and assurance cases.

Answering the paper's scale question — do formal assurance arguments pay
their way on *real* projects? — needs tool-generated cases with 100k+
nodes, which PR 1–2 made fast in memory but which still could not
outlive the process or exceed RAM.  This package gives them a durable,
incrementally-reloadable on-disk form:

* :mod:`~repro.store.format` — the JSONL shard layout, manifest schema,
  id-hash sharding, and the :class:`StoreError` /
  :class:`StoreCorruptionError` taxonomy;
* :mod:`~repro.store.writer` — :func:`save_argument` / :func:`save_case`,
  streaming records out shard by shard without materialising a document;
* :mod:`~repro.store.reader` — :class:`StoredArgument` (streaming
  iteration, lazy per-shard loading, partial ``subtree`` hydration) and
  the :func:`load_argument` / :func:`load_case` full loaders;
* :mod:`~repro.store.journal` — the append-only edit journal:
  ``StoredArgument.append_delta`` persists one mutation delta in
  O(delta) writes, readers replay the journal transparently,
  ``compact()`` folds it back into byte-stable shards, and ``gc()``
  sweeps orphaned files; ``ignore_torn_tail=True`` recovers from a
  crash mid-append;
* :mod:`~repro.store.fsck` — the ``python -m repro.store.fsck`` CLI:
  offline verification of a store directory (manifest, shard seals and
  content-addresses, id-hash partition, journal torn-tail
  classification, orphan inventory) without loading it into the
  engine; the checking machinery lives in
  :mod:`repro.analysis_static.fsck`.

``Argument.save/load`` (including ``save(journal=True)``) and
``AssuranceCase.save/load`` are the convenience entry points built on
these; :func:`repro.core.query.select` and
:func:`repro.core.wellformed.check` accept a :class:`StoredArgument`
directly, and :meth:`repro.core.analysis.IncrementalChecker.from_store`
re-checks a journalled store incrementally without hydrating it.
"""

from .format import (
    DEFAULT_SHARD_COUNT,
    JOURNAL_SCHEMA_VERSION,
    STORE_SCHEMA_VERSION,
    StoreCorruptionError,
    StoreError,
    shard_of,
)
from .journal import JournalOverlay
from .reader import StoredArgument, load_argument, load_case
from .writer import save_argument, save_case

__all__ = [
    "DEFAULT_SHARD_COUNT",
    "JOURNAL_SCHEMA_VERSION",
    "STORE_SCHEMA_VERSION",
    "StoreCorruptionError",
    "StoreError",
    "shard_of",
    "JournalOverlay",
    "StoredArgument",
    "load_argument",
    "load_case",
    "save_argument",
    "save_case",
]
