"""Persistent sharded storage for arguments and assurance cases.

Answering the paper's scale question — do formal assurance arguments pay
their way on *real* projects? — needs tool-generated cases with 100k+
nodes, which PR 1–2 made fast in memory but which still could not
outlive the process or exceed RAM.  This package gives them a durable,
incrementally-reloadable on-disk form:

* :mod:`~repro.store.format` — the JSONL shard layout, manifest schema,
  id-hash sharding, the durability switch (:func:`set_durability` /
  ``REPRO_STORE_FSYNC``), and the :class:`StoreError` /
  :class:`StoreCorruptionError` / :class:`StoreConflictError` taxonomy;
* :mod:`~repro.store.writer` — :func:`save_argument` / :func:`save_case`,
  streaming records out shard by shard without materialising a document;
* :mod:`~repro.store.reader` — :class:`StoredArgument` (streaming
  iteration, lazy per-shard loading, partial ``subtree`` hydration) and
  the :func:`load_argument` / :func:`load_case` full loaders;
* :mod:`~repro.store.journal` — the append-only edit journal:
  ``StoredArgument.append_delta`` persists one mutation delta in
  O(delta) writes, readers replay the journal transparently,
  ``coalesce()`` bounds the manifest for long sessions, ``compact()``
  folds the journal back into byte-stable shards, and ``gc()`` sweeps
  orphaned files; ``ignore_torn_tail=True`` recovers from a crash
  mid-append;
* :mod:`~repro.store.search` — the persisted token/trigram search index
  sidecar: sealed and checksummed like a shard, referenced from the
  manifest, journal-patched in O(delta) per edit, rebuilt by
  ``compact()``, swept by ``gc()``; :class:`CaseCorpus` drives ranked
  query-biased search (:func:`repro.core.search.search`) over a
  directory of stores;
* :mod:`~repro.store.lease` — the writer lease enforcing the
  single-writer contract: every mutating operation holds the store's
  ``writer.lease`` file, contenders back off and raise
  :class:`StoreConflictError` on deadline, and a crashed writer's stale
  lease is taken over atomically;
* :mod:`~repro.store.fsck` — the ``python -m repro.store.fsck`` CLI:
  offline verification of a store directory (manifest, shard seals and
  content-addresses, id-hash partition, journal torn-tail
  classification, orphan inventory) without loading it into the
  engine; the checking machinery lives in
  :mod:`repro.analysis_static.fsck`.

Concurrency contract
====================

*Readers are lock-free snapshots.*  Content-addressed shard names plus
the atomic manifest rename mean an open :class:`StoredArgument` keeps
streaming the generation it opened — concurrent commits create new
files, never mutate referenced ones.  ``pin()`` captures the generation
as a token; ``refresh()`` is the explicit opt-in to a newer one.  Only
``gc()`` deletes files, which is why it takes the writer lease and why
long-lived readers should be refreshed before a gc is scheduled.

*Writers are serialized by the lease.*  ``save_argument`` /
``save_case`` / ``append_delta`` / ``coalesce`` / ``compact`` / ``gc``
each acquire the store's writer lease; ``Argument.save(journal=True)``
holds one lease across its conflict check and the commit it decides on,
raising :class:`StoreConflictError` — instead of silently losing the
other writer's update — when the store moved past the generation this
argument last saw (``force=True`` overwrites deliberately).

``Argument.save/load`` (including ``save(journal=True)``) and
``AssuranceCase.save/load`` are the convenience entry points built on
these; :func:`repro.core.query.select` and
:func:`repro.core.wellformed.check` accept a :class:`StoredArgument`
directly, :meth:`repro.core.analysis.IncrementalChecker.from_store`
re-checks a journalled store incrementally without hydrating it, and
:mod:`repro.service` serves one shared store to many editors over HTTP.
"""

from .format import (
    DEFAULT_SHARD_COUNT,
    JOURNAL_SCHEMA_VERSION,
    STORE_SCHEMA_VERSION,
    StoreConflictError,
    StoreCorruptionError,
    StoreError,
    durable,
    set_durability,
    shard_of,
)
from .journal import JournalOverlay, coalesce, compact, gc
from .lease import (
    DEFAULT_ACQUIRE_TIMEOUT,
    DEFAULT_LEASE_TTL,
    WriterLease,
    acquire_lease,
    lease_is_stale,
    read_lease,
    writer_lease,
)
from .reader import StoredArgument, StoreGeneration, load_argument, load_case
from .search import (
    SEARCH_SCHEMA_VERSION,
    CaseCorpus,
    StoreSearchIndex,
    build_search_index,
    load_search_index,
)
from .writer import save_argument, save_case

__all__ = [
    "DEFAULT_SHARD_COUNT",
    "JOURNAL_SCHEMA_VERSION",
    "STORE_SCHEMA_VERSION",
    "StoreConflictError",
    "StoreCorruptionError",
    "StoreError",
    "durable",
    "set_durability",
    "shard_of",
    "JournalOverlay",
    "coalesce",
    "compact",
    "gc",
    "DEFAULT_ACQUIRE_TIMEOUT",
    "DEFAULT_LEASE_TTL",
    "WriterLease",
    "acquire_lease",
    "lease_is_stale",
    "read_lease",
    "writer_lease",
    "StoredArgument",
    "StoreGeneration",
    "load_argument",
    "load_case",
    "SEARCH_SCHEMA_VERSION",
    "CaseCorpus",
    "StoreSearchIndex",
    "build_search_index",
    "load_search_index",
    "save_argument",
    "save_case",
]
