"""Streaming writer for the persistent sharded argument store.

The writer never materialises a full JSON document: it opens one handle
per shard and streams records — nodes, then links, then (for cases)
evidence and citations — one line at a time, accumulating each shard's
record count and CRC-32 as it goes.  Memory stays O(shard handles), not
O(case), so an argument that barely fits in RAM can still be saved.

Node and link payloads reuse the :mod:`repro.notation.json_io` schema
(:func:`~repro.notation.json_io.node_payload`), extended with a ``seq``
field recording insertion order; node metadata is written in canonical
form (duplicate attribute names collapsed, sorted by name — exactly what
a JSON round-trip produces) so save → load → save is byte-stable.

Crash safety: shards stream to per-writer unique ``.tmp`` files (pid +
random infix, so two processes saving into one directory can never
scribble over each other's in-flight data) and finish under
content-addressed names (``nodes-0003-<crc>.jsonl``) that never collide
with a previous store's files; renaming the new manifest into place is
the single atomic commit point.  Sealed files are fsynced before their
rename and the directory after the manifest swap (see
:func:`repro.store.format.set_durability` for the test opt-out), so the
commit point survives power loss instead of merely process death.  An
interrupted save therefore leaves the previous store fully loadable — at
worst with some orphaned files no manifest references — and files the
store never wrote are never touched.

Concurrency: every mutating entry point takes the store's **writer
lease** (:mod:`repro.store.lease`) for the duration of the operation, so
two processes saving into one directory serialise instead of racing;
contention past the acquire deadline raises
:class:`~repro.store.format.StoreConflictError`.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import Any, Iterable
from zlib import crc32

from ..core.argument import Argument, Link
from ..core.case import AssuranceCase
from ..core.evidence import EvidenceItem
from ..core.nodes import Node
from ..notation.json_io import evidence_payload, node_payload
from .format import (
    DEFAULT_SHARD_COUNT,
    GZIP_COMPRESSION,
    ID_HASH,
    MANIFEST_NAME,
    STORE_SCHEMA_VERSION,
    StoreError,
    encode_record,
    fsync_directory,
    fsync_fileobj,
    shard_base,
    shard_filename,
    shard_of,
    tmp_name,
    validate_compression,
)
from .lease import writer_lease

__all__ = ["save_argument", "save_case"]


class _ShardWriter:
    """One shard file: append records, track count and checksum.

    Streams to ``<base>.tmp``; :meth:`finish` seals the file under its
    content-addressed final name, so an interrupted save never damages
    an existing store.  With ``compression="gzip"`` the lines pass
    through a deterministic gzip stream (``mtime=0``, no embedded
    filename) while the count and CRC-32 keep tracking the *decompressed*
    lines — identical records therefore seal under identical names and
    bytes, compressed or not.
    """

    __slots__ = (
        "base", "compression", "_directory", "_tmp", "_raw", "_handle",
        "records", "crc",
    )

    def __init__(
        self, directory: Path, base: str, compression: str | None = None
    ) -> None:
        self.base = base
        self.compression = compression
        self._directory = directory
        self._tmp = directory / tmp_name(base)
        self._raw = self._tmp.open("wb")
        if compression == GZIP_COMPRESSION:
            self._handle: Any = gzip.GzipFile(
                filename="", mode="wb", fileobj=self._raw, mtime=0
            )
        else:
            self._handle = self._raw
        self.records = 0
        self.crc = 0

    def write(self, record: dict[str, Any]) -> None:
        line = encode_record(record)
        self._handle.write(line)
        self.crc = crc32(line, self.crc)
        self.records += 1

    def close(self) -> None:
        if self._handle is not self._raw:
            self._handle.close()
        # Durability: the content must be on the platters *before* the
        # content-addressed rename publishes the name — a post-crash
        # store must never contain a sealed name with torn content.
        fsync_fileobj(self._raw)
        self._raw.close()

    def finish(self) -> str:
        """Rename the closed tmp file to its final name; return it.

        Content-addressed names make this collision-free against any
        *different* previous content; identical content re-seals the
        identical file.
        """
        name = shard_filename(self.base, self.crc, self.compression)
        self._tmp.replace(self._directory / name)
        return name

    @property
    def entry(self) -> dict[str, int]:
        return {"records": self.records, "crc32": self.crc}


def _node_record(seq: int, node: Node) -> dict[str, Any]:
    payload = node_payload(node)
    if "metadata" in payload:
        # Canonical form: duplicate attribute names collapse to the last
        # entry (metadata_dict semantics) and names sort — the same shape
        # a load produces, which makes re-serialisation byte-stable.
        payload["metadata"] = {
            name: list(params)
            for name, params in sorted(node.metadata_dict().items())
        }
    return {"seq": seq, **payload}


def _link_record(seq: int, link: Link) -> dict[str, Any]:
    return {
        "seq": seq,
        "source": link.source,
        "target": link.target,
        "kind": link.kind.value,
    }


def _write_sharded(
    directory: Path,
    bases: list[str],
    records: Iterable[tuple[int, dict[str, Any]]],
    compression: str | None = None,
) -> tuple[list[str], dict[str, dict[str, int]]]:
    """Stream ``(shard_index, record)`` pairs; seal and name the shards.

    Returns the final filenames in shard-index order plus their
    manifest entries.
    """
    writers = [
        _ShardWriter(directory, base, compression) for base in bases
    ]
    try:
        for index, record in records:
            writers[index].write(record)
    finally:
        for writer in writers:
            writer.close()
    names = [writer.finish() for writer in writers]
    return names, {
        name: writer.entry for name, writer in zip(names, writers)
    }


def _write_graph(
    nodes: Iterable[Node],
    links: Iterable[Link],
    directory: Path,
    shard_count: int,
    compression: str | None = None,
) -> tuple[list[str], list[str], dict[str, dict[str, int]], int, int]:
    """Stream nodes and links into their shards; seqs are re-enumerated.

    Takes plain iterables — a live argument's node/link lists or a
    stored argument's journal-replayed streams (compaction) — so memory
    stays O(shard handles) either way.  Returns the sealed node and link
    shard names, their manifest entries, and the record totals.
    """
    node_total = 0
    link_total = 0

    def _node_records() -> Iterable[tuple[int, dict[str, Any]]]:
        nonlocal node_total
        for seq, node in enumerate(nodes):
            node_total += 1
            yield shard_of(node.identifier, shard_count), \
                _node_record(seq, node)

    def _link_records() -> Iterable[tuple[int, dict[str, Any]]]:
        nonlocal link_total
        for seq, link in enumerate(links):
            link_total += 1
            yield shard_of(link.source, shard_count), \
                _link_record(seq, link)

    node_names, shards = _write_sharded(
        directory,
        [shard_base("nodes", i) for i in range(shard_count)],
        _node_records(),
        compression,
    )
    link_names, link_shards = _write_sharded(
        directory,
        [shard_base("links", i) for i in range(shard_count)],
        _link_records(),
        compression,
    )
    shards.update(link_shards)
    return node_names, link_names, shards, node_total, link_total


def _previous_shards(directory: Path) -> set[str]:
    """Shard files the existing manifest claims, if one is readable."""
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.exists():
        return set()
    try:
        manifest = json.loads(manifest_path.read_text())
        return set(manifest["shards"])
    except (json.JSONDecodeError, KeyError, TypeError):
        return set()  # unreadable old store: leave its files alone


def _commit(
    directory: Path, manifest: dict[str, Any], *, sweep: bool = True
) -> None:
    """Atomically swap the new manifest in; optionally sweep old shards.

    Every shard already sits sealed under a content-addressed name, so
    the manifest rename is the commit point: before it, the old store is
    untouched; after it, the new one is complete.  The manifest tmp is
    fsynced before the rename and the directory after it, making the
    swap itself power-loss-safe.

    ``sweep=True`` (full rewrites — the caller deliberately replaces
    the store) removes shards the old manifest listed that the new one
    does not, right after the commit; files the store never wrote are
    never deleted.  ``sweep=False`` (journal appends, coalescing,
    compaction — routine maintenance under live traffic) leaves the
    superseded generation's files on disk so snapshot readers pinned to
    it keep streaming; a later lease-guarded :func:`~repro.store.
    journal.gc` reclaims them.
    """
    stale = (
        _previous_shards(directory) - set(manifest["shards"])
        if sweep else set()
    )
    tmp = directory / tmp_name(MANIFEST_NAME)
    with tmp.open("w", encoding="utf-8") as handle:
        handle.write(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
        fsync_fileobj(handle)
    tmp.replace(directory / MANIFEST_NAME)
    fsync_directory(directory)
    for name in stale:
        path = directory / name
        if path.exists():
            path.unlink()


def _prepare(directory: Path | str, shard_count: int | None) -> tuple[Path, int]:
    shard_count = DEFAULT_SHARD_COUNT if shard_count is None else shard_count
    if shard_count < 1:
        raise StoreError(f"shard_count must be >= 1, not {shard_count}")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    return directory, shard_count


def _index_into(
    manifest: dict[str, Any],
    nodes: Iterable[Node],
    directory: Path,
    compression: str | None,
) -> None:
    """Fold a search sidecar for ``nodes`` into an uncommitted manifest.

    Runs between sealing the graph shards and the manifest commit, so
    the sidecar is part of the *same* atomic generation as the shards it
    indexes — which is what keeps the saved argument's
    ``save(journal=True)`` fingerprint baseline valid (a separate
    sidecar commit would change the manifest out from under it).
    """
    from .search import SEARCH_INDEX_KEY, _PostingsBuilder, write_sidecar

    builder = _PostingsBuilder()
    for node in nodes:
        builder.add(node.identifier, node.text)
    name, entry = write_sidecar(
        directory,
        builder,
        list(manifest["node_shards"]) + list(manifest["link_shards"]),
        0,
        compression,
    )
    manifest[SEARCH_INDEX_KEY] = name
    manifest["shards"][name] = entry


def save_argument(
    argument: Argument,
    directory: Path | str,
    *,
    shard_count: int | None = None,
    compression: str | None = None,
    search_index: bool = False,
) -> dict[str, Any]:
    """Write an argument to a store directory; returns the manifest.

    Replaces any store already in the directory, safely: new shards land
    under fresh content-addressed names and the manifest rename is the
    atomic commit, so an interrupted save leaves the previous store
    loadable.  ``compression="gzip"`` gzips every shard (recorded in the
    manifest, transparent on read; counts/checksums stay those of the
    decompressed records).  ``search_index=True`` additionally seals the
    token/trigram search sidecar (:mod:`repro.store.search`) into the
    same commit.
    """
    directory, shard_count = _prepare(directory, shard_count)
    compression = validate_compression(compression)
    with writer_lease(directory):
        node_shards, link_shards, shards, _, _ = _write_graph(
            argument.nodes, argument.links, directory, shard_count,
            compression,
        )
        manifest: dict[str, Any] = {
            "schema": STORE_SCHEMA_VERSION,
            "kind": "argument",
            "name": argument.name,
            "id_hash": ID_HASH,
            "shard_count": shard_count,
            "node_count": len(argument),
            "link_count": len(argument.links),
            "node_shards": node_shards,
            "link_shards": link_shards,
            "shards": shards,
        }
        if compression is not None:
            manifest["compression"] = compression
        if search_index:
            _index_into(
                manifest, argument.nodes, directory, compression
            )
        _commit(directory, manifest)
    return manifest


def _evidence_record(seq: int, item: EvidenceItem) -> dict[str, Any]:
    return {"seq": seq, **evidence_payload(item)}


def save_case(
    case: AssuranceCase,
    directory: Path | str,
    *,
    shard_count: int | None = None,
    compression: str | None = None,
    search_index: bool = False,
) -> dict[str, Any]:
    """Write a whole assurance case to a store directory.

    The argument is sharded exactly as :func:`save_argument` lays it
    out; evidence and citations stream to their own JSONL shards (all
    gzipped together under ``compression="gzip"``).  The lifecycle log
    is intentionally not persisted (matching
    :func:`~repro.notation.json_io.case_from_json`): history belongs to
    the live case, and a loaded case starts a fresh log.
    ``search_index=True`` seals the argument's search sidecar into the
    same commit, exactly as in :func:`save_argument`.
    """
    directory, shard_count = _prepare(directory, shard_count)
    compression = validate_compression(compression)
    with writer_lease(directory):
        return _save_case_locked(
            case, directory, shard_count, compression,
            search_index=search_index,
        )


def _save_case_locked(
    case: AssuranceCase,
    directory: Path,
    shard_count: int,
    compression: str | None,
    *,
    search_index: bool = False,
) -> dict[str, Any]:
    node_shards, link_shards, shards, _, _ = _write_graph(
        case.argument.nodes, case.argument.links, directory, shard_count,
        compression,
    )
    (evidence_shard,), evidence_meta = _write_sharded(
        directory,
        ["evidence"],
        ((0, _evidence_record(seq, item))
         for seq, item in enumerate(case.evidence)),
        compression,
    )
    shards.update(evidence_meta)
    def _citation_records() -> Iterable[tuple[int, dict[str, Any]]]:
        seq = 0
        for node in case.argument.nodes:
            cited = case.citations(node.identifier)
            if not cited:
                continue
            yield (0, {
                "seq": seq,
                "solution": node.identifier,
                "evidence": [item.identifier for item in cited],
            })
            seq += 1

    (citations_shard,), citations_meta = _write_sharded(
        directory, ["citations"], _citation_records(), compression
    )
    shards.update(citations_meta)
    manifest: dict[str, Any] = {
        "schema": STORE_SCHEMA_VERSION,
        "kind": "case",
        "name": case.argument.name,
        "case_name": case.name,
        "criterion": (
            {
                "statement": case.criterion.statement,
                "risk_metric": case.criterion.risk_metric,
                "threshold": case.criterion.threshold,
            }
            if case.criterion
            else None
        ),
        "id_hash": ID_HASH,
        "shard_count": shard_count,
        "node_count": len(case.argument),
        "link_count": len(case.argument.links),
        "node_shards": node_shards,
        "link_shards": link_shards,
        "evidence_shard": evidence_shard,
        "citations_shard": citations_shard,
        "shards": shards,
    }
    if compression is not None:
        manifest["compression"] = compression
    if search_index:
        _index_into(
            manifest, case.argument.nodes, directory, compression
        )
    _commit(directory, manifest)
    # The natural case editing loop is save() then edit then
    # argument.save(journal=True): record the baseline here, exactly as
    # Argument.save and StoredArgument.load do, so that append works.
    case.argument.mark_persisted(directory)
    return manifest
