"""The writer lease: at most one mutating process per store directory.

The store's readers are lock-free — content-addressed shards plus the
atomic manifest swap give every open handle a consistent generation to
stream (MVCC) — but its *writers* were, until this module, merely asked
nicely to take turns: ``gc()`` documented "no live writers", and two
concurrent ``save(journal=True)`` calls could interleave their
check-then-commit windows and silently lose an append.  The lease makes
the single-writer contract enforced instead of assumed.

Protocol
========

A writer holds the store's ``writer.lease`` file for the duration of one
mutating operation (save, append, compact, coalesce, gc)::

    case.store/
        writer.lease      # JSON: holder id, pid, host, acquired, expires

* **Acquire** — create the file with ``O_CREAT | O_EXCL``: exactly one
  process wins; losers retry with capped exponential backoff (plus
  jitter, so two contenders do not retry in lockstep) until the
  acquisition deadline, then raise
  :class:`~repro.store.format.StoreConflictError` naming the holder.
* **Expiry** — every lease carries a TTL.  A holder that crashes leaves
  a lease behind; once ``expires`` passes, any contender may take over.
* **Takeover** — atomically ``rename`` the stale lease to a unique
  ``writer.lease.stale-*`` name.  Rename of one source path succeeds in
  exactly one process (the others get ``FileNotFoundError`` and go back
  to the acquire loop), so two contenders that both observed the same
  stale lease cannot both break it.  The winner unlinks the renamed
  file and creates its own lease; a crash in between leaves only a
  ``.stale-*`` orphan that ``gc()`` sweeps.
* **Renew** — a long operation (a big compaction) re-seals its lease
  with a fresh expiry before the TTL runs out; renewal verifies the
  file still names this holder first.
* **Release** — unlink, but only after verifying the file still names
  this holder (it may have been taken over if we stalled past expiry).

Within a process the lease is **reentrant per thread**: the fallback
path of ``Argument.save(journal=True)`` holds the lease across its
conflict check *and* the rewrite it decides on, while the rewrite's own
``save_argument`` re-enters.  A second *thread* of the same process
contends like any foreign process.

Lease files are written through the same durability discipline as
shards (unique tmp name, fsync, atomic rename) so a takeover decision
is never based on a torn lease; an unreadable lease file (the microscopic
window between ``O_EXCL`` create and the payload write, or genuine
damage) is treated as live until its mtime plus the default TTL passes.
"""

from __future__ import annotations

import json
import os
import random
import socket
import threading
import time
from pathlib import Path
from types import TracebackType
from typing import Any, Optional

from .format import (
    LEASE_NAME,
    StoreConflictError,
    fsync_directory,
    fsync_fileobj,
)

__all__ = [
    "WriterLease",
    "writer_lease",
    "acquire_lease",
    "read_lease",
    "lease_is_stale",
    "DEFAULT_LEASE_TTL",
    "DEFAULT_ACQUIRE_TIMEOUT",
]

#: How long one acquired lease lives without renewal.  Generous against
#: the store's own operations (an append is milliseconds, a compaction
#: of a huge store seconds) while keeping crashed-writer takeover quick.
DEFAULT_LEASE_TTL = 30.0

#: How long an acquirer keeps retrying against a live holder before
#: raising :class:`StoreConflictError`.
DEFAULT_ACQUIRE_TIMEOUT = 10.0

#: Backoff bounds for the acquire retry loop, seconds.
_RETRY_INITIAL = 0.005
_RETRY_CAP = 0.25


def _holder_identity() -> str:
    """A lease holder id unique across hosts, processes, and threads."""
    return (
        f"{socket.gethostname()}:{os.getpid()}:"
        f"{threading.get_ident():x}:{os.urandom(4).hex()}"
    )


def read_lease(directory: Path | str) -> "Optional[dict[str, Any]]":
    """The parsed lease payload at ``directory``, if one is readable.

    ``None`` means no lease file.  An existing but unreadable file
    returns a synthetic payload carrying only ``mtime`` — callers must
    treat it as held until ``mtime + DEFAULT_LEASE_TTL`` passes.
    """
    path = Path(directory) / LEASE_NAME
    try:
        raw = path.read_bytes()
    except OSError:
        return None
    try:
        payload = json.loads(raw.decode("utf-8"))
        if not isinstance(payload, dict):
            raise ValueError("lease payload is not an object")
    except (ValueError, UnicodeDecodeError):
        try:
            mtime = path.stat().st_mtime
        except OSError:
            return None
        return {"mtime": mtime}
    return payload


def lease_is_stale(
    payload: "dict[str, Any]", now: "float | None" = None
) -> bool:
    """Whether a lease payload's expiry has passed."""
    if now is None:
        now = time.time()
    expires = payload.get("expires")
    if isinstance(expires, (int, float)):
        return now > float(expires)
    # Torn or foreign payload: grant it the default TTL from its mtime.
    mtime = payload.get("mtime")
    if isinstance(mtime, (int, float)):
        return now > float(mtime) + DEFAULT_LEASE_TTL
    return True


class WriterLease:
    """One held writer lease; a context manager releasing on exit."""

    __slots__ = ("directory", "holder", "ttl", "expires", "_depth")

    def __init__(self, directory: Path, holder: str, ttl: float) -> None:
        self.directory = directory
        self.holder = holder
        self.ttl = ttl
        self.expires = 0.0
        self._depth = 1

    @property
    def path(self) -> Path:
        return self.directory / LEASE_NAME

    def _payload(self) -> "dict[str, Any]":
        now = time.time()
        self.expires = now + self.ttl
        return {
            "holder": self.holder,
            "pid": os.getpid(),
            "host": socket.gethostname(),
            "acquired": now,
            "expires": self.expires,
        }

    def _write(self, fd: int) -> None:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(self._payload(), handle, sort_keys=True)
            handle.write("\n")
            fsync_fileobj(handle)
        fsync_directory(self.directory)

    def _still_mine(self) -> bool:
        payload = read_lease(self.directory)
        return payload is not None and payload.get("holder") == self.holder

    def renew(self) -> None:
        """Extend the expiry of a lease this process still holds.

        Raises :class:`StoreConflictError` when the lease was taken over
        (we stalled past expiry and someone else broke it): continuing
        to write would race the new holder.
        """
        if not self._still_mine():
            raise StoreConflictError(
                f"writer lease on {self.directory} was taken over "
                f"(holder {self.holder!r} expired); the operation must "
                "be retried from a fresh store view"
            )
        unique = self.directory / (
            LEASE_NAME + f".renew-{os.getpid():x}-{os.urandom(4).hex()}"
        )
        fd = os.open(
            unique, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644
        )
        self._write(fd)
        os.replace(unique, self.path)
        fsync_directory(self.directory)

    def release(self) -> None:
        """Give the lease up (idempotent; verifies we still hold it)."""
        if self._still_mine():
            try:
                self.path.unlink()
            except OSError:  # pragma: no cover - raced takeover
                pass
            fsync_directory(self.directory)

    def __enter__(self) -> "WriterLease":
        return self

    def __exit__(
        self,
        exc_type: "type[BaseException] | None",
        exc: "BaseException | None",
        tb: "TracebackType | None",
    ) -> None:
        _release_held(self)


#: Leases held by this process, by resolved directory — the reentrancy
#: registry.  Guarded by :data:`_HELD_GUARD`; each entry remembers the
#: owning thread so a *different* thread contends like another process.
_HELD: "dict[str, tuple[int, WriterLease]]" = {}
_HELD_GUARD = threading.Lock()


def _registry_key(directory: Path) -> str:
    return os.path.abspath(os.fspath(directory))


def _release_held(lease: WriterLease) -> None:
    """Leave one nesting level; drop the file at the outermost exit."""
    key = _registry_key(lease.directory)
    with _HELD_GUARD:
        held = _HELD.get(key)
        if held is None or held[1] is not lease:
            release_now = True  # not registry-tracked: plain release
        else:
            lease._depth -= 1
            release_now = lease._depth <= 0
            if release_now:
                del _HELD[key]
    if release_now:
        lease.release()


def _try_create(directory: Path, holder: str, ttl: float) -> (
    "WriterLease | None"
):
    """One O_EXCL attempt at the lease file; None when somebody holds it."""
    lease = WriterLease(directory, holder, ttl)
    try:
        fd = os.open(
            lease.path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644
        )
    except FileExistsError:
        return None
    lease._write(fd)
    return lease


def _break_stale(directory: Path) -> bool:
    """Atomically retire a stale lease file; True when *we* broke it.

    The rename is the arbitration: exactly one contender's rename of
    ``writer.lease`` succeeds, everyone else sees it already gone.
    """
    stale_name = (
        LEASE_NAME + f".stale-{os.getpid():x}-{os.urandom(4).hex()}"
    )
    try:
        os.rename(directory / LEASE_NAME, directory / stale_name)
    except OSError:
        return False
    try:
        (directory / stale_name).unlink()
    except OSError:  # pragma: no cover - leave it for gc()
        pass
    return True


def acquire_lease(
    directory: Path | str,
    *,
    ttl: float = DEFAULT_LEASE_TTL,
    timeout: float = DEFAULT_ACQUIRE_TIMEOUT,
) -> WriterLease:
    """Acquire the writer lease on a store directory, or raise.

    Blocks (with capped, jittered exponential backoff) up to ``timeout``
    seconds while a live holder has it; takes over a stale lease
    immediately.  Raises :class:`StoreConflictError` naming the holder
    on deadline.  Reentrant per thread: nested acquisition by the same
    thread returns the already-held lease one level deeper.
    """
    directory = Path(directory)
    key = _registry_key(directory)
    me = threading.get_ident()
    with _HELD_GUARD:
        held = _HELD.get(key)
        if held is not None and held[0] == me:
            held[1]._depth += 1
            return held[1]
    directory.mkdir(parents=True, exist_ok=True)
    holder = _holder_identity()
    deadline = time.monotonic() + timeout
    delay = _RETRY_INITIAL
    while True:
        lease = _try_create(directory, holder, ttl)
        if lease is not None:
            with _HELD_GUARD:
                _HELD[key] = (me, lease)
            return lease
        current = read_lease(directory)
        if current is None:
            continue  # released between our attempt and the read: retry
        if lease_is_stale(current):
            _break_stale(directory)
            continue  # whoever won the break races for the create next
        if time.monotonic() >= deadline:
            raise StoreConflictError(
                f"store at {directory} is being written by "
                f"{current.get('holder', 'an unknown holder')!r} "
                f"(lease expires in "
                f"{max(0.0, float(current.get('expires', 0)) - time.time()):.1f}s); "
                "retry, or raise the acquire timeout"
            )
        time.sleep(delay * (0.5 + random.random()))
        delay = min(delay * 2, _RETRY_CAP)


def writer_lease(
    directory: Path | str,
    *,
    ttl: float = DEFAULT_LEASE_TTL,
    timeout: float = DEFAULT_ACQUIRE_TIMEOUT,
) -> WriterLease:
    """``with writer_lease(directory): ...`` around one mutating operation.

    Alias of :func:`acquire_lease` named for its context-manager use;
    every store write path (``save_argument`` / ``save_case`` /
    ``append_delta`` / ``compact`` / ``coalesce`` / ``gc``) wraps itself
    in this, so callers get the single-writer guarantee without doing
    anything — and can themselves take the lease *around* a larger
    critical section (check-then-write) thanks to reentrancy.
    """
    return acquire_lease(directory, ttl=ttl, timeout=timeout)
