"""Rushby-style partial formalisation of assurance arguments.

Rushby proposes 'formalizing the elements that do lend themselves to this
process' into symbolic logic checked by machine, 'thereby preserving the
precious resource of expert human review for those elements that truly do
require it' (§III.M).  His example axiom shape is::

    good_doc(approp_claim_doc) IMPLIES appropriate(claim, system, context)

and reviewers 'indicate their assent by adding good_doc(approp_claim_doc)
as an axiom'.

This module implements the scheme over GSN arguments:

* each goal becomes a propositional atom (its *claim atom*);
* each support step becomes an implication: the conjunction of the
  supporters' atoms implies the supported claim's atom;
* each solution becomes a ``good_doc`` atom awaiting reviewer assent;
* elements that do **not** lend themselves — Rushby's own list:
  probabilistic claims, enumerations over imperfectly known sets, appeals
  to expert judgement or history — are detected by text classification
  and left in the *informal residue* with assumed-implication axioms,
  exactly the parts human review must still cover.

The resulting :class:`Formalisation` supports the services Rushby
promises: mechanical soundness checking (§III.M), and the 'what-if
exploration' of §VI.E — temporarily remove an axiom and observe whether
the proof fails.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..core.argument import Argument, LinkKind
from ..core.nodes import Node, NodeType
from ..logic.entailment import entails, premises_used
from ..logic.propositional import Atom, Formula, Implies, conjoin

__all__ = [
    "ResidueReason",
    "Formalisation",
    "formalise_argument",
    "classify_residue",
]


_PROBABILISTIC = re.compile(
    r"\b(probab|likel|rate of|per hour|per flight|frequency|10-\d|1e-\d|"
    r"chance)\b",
    re.IGNORECASE,
)
_OPEN_ENUMERATION = re.compile(
    r"\ball (identified |known )?(hazards?|causes?|failure modes?|threats?)"
    r"\b|\bcomplete\b.*\b(hazard|threat)\b",
    re.IGNORECASE,
)
_JUDGEMENT = re.compile(
    r"\b(expert|judge?ment|experience|historical|track record|engineer"
    r"ing judgement)\b",
    re.IGNORECASE,
)


@dataclass(frozen=True)
class ResidueReason:
    """Why a node stayed informal, per Rushby's three categories."""

    node_id: str
    category: str  # 'probabilistic' | 'open-enumeration' | 'judgement'
    excerpt: str

    def __str__(self) -> str:
        return f"{self.node_id} [{self.category}]: {self.excerpt!r}"


def classify_residue(node: Node) -> str | None:
    """Rushby's triage: does this element lend itself to formalisation?

    Returns the residue category, or None when the element formalises.
    """
    if _PROBABILISTIC.search(node.text):
        return "probabilistic"
    if _OPEN_ENUMERATION.search(node.text):
        return "open-enumeration"
    if _JUDGEMENT.search(node.text):
        return "judgement"
    return None


def _atom_name(node: Node) -> str:
    slug = re.sub(r"[^a-z0-9]+", "_", node.text.lower()).strip("_")
    return f"{node.identifier.lower()}_{slug[:40]}".rstrip("_")


@dataclass
class Formalisation:
    """The formal skeleton of an argument plus its informal residue.

    ``rules`` are the support-step implications; ``evidence_atoms`` map
    solution nodes to their pending ``good_doc`` atoms; ``assented`` holds
    the axioms reviewers have granted; ``residue`` lists the elements that
    stayed informal (each contributes an *assumed* rule, flagged so
    reviewers know the machine is trusting a human there).
    """

    argument: Argument
    claim_atoms: dict[str, Atom]
    rules: list[Formula]
    evidence_atoms: dict[str, Atom]
    residue: list[ResidueReason]
    assumed_rules: list[Formula] = field(default_factory=list)
    assented: set[str] = field(default_factory=set)

    # -- reviewer interaction -------------------------------------------

    def assent(self, solution_id: str) -> Atom:
        """Reviewer assent: add ``good_doc(...)`` for a solution as axiom."""
        if solution_id not in self.evidence_atoms:
            raise KeyError(f"no evidence atom for {solution_id!r}")
        self.assented.add(solution_id)
        return self.evidence_atoms[solution_id]

    def assent_all(self) -> None:
        """Grant every evidence axiom (the all-reviews-passed state)."""
        self.assented.update(self.evidence_atoms)

    def retract(self, solution_id: str) -> None:
        """Withdraw assent (evidence fell to in-service data, say)."""
        self.assented.discard(solution_id)

    # -- mechanical services ----------------------------------------------

    def axioms(self) -> list[Formula]:
        """The current axiom set: assented evidence + all rules."""
        granted: list[Formula] = [
            self.evidence_atoms[s] for s in sorted(self.assented)
        ]
        return granted + list(self.rules) + list(self.assumed_rules)

    def root_atom(self) -> Atom:
        roots = self.argument.roots()
        if len(roots) != 1:
            raise ValueError(
                f"formalisation needs exactly one root, got {len(roots)}"
            )
        return self.claim_atoms[roots[0].identifier]

    def check(self) -> bool:
        """Does the axiom set entail the top-level claim?

        This is Rushby's 'reduce some of the analysis to mechanized
        calculation'.
        """
        return entails(self.axioms(), self.root_atom())

    def holds(self, node_id: str) -> bool:
        """Does the axiom set entail one particular claim?"""
        return entails(self.axioms(), self.claim_atoms[node_id])

    def what_if_without(self, solution_id: str) -> bool:
        """§VI.E what-if probing: remove one evidence axiom and re-check."""
        if solution_id not in self.assented:
            return self.check()
        self.assented.discard(solution_id)
        try:
            return self.check()
        finally:
            self.assented.add(solution_id)

    def load_bearing_evidence(self) -> list[str]:
        """Solutions whose axiom the top-level proof actually needs."""
        return [
            solution_id
            for solution_id in sorted(self.assented)
            if not self.what_if_without(solution_id)
        ]

    def minimal_support(self) -> list[Formula]:
        """A minimal entailing axiom subset (greedy, via what-if removal)."""
        axioms = self.axioms()
        used = premises_used(axioms, self.root_atom())
        return [axioms[i] for i in used]

    def summary(self) -> str:
        return (
            f"{len(self.claim_atoms)} claims, {len(self.rules)} rules, "
            f"{len(self.evidence_atoms)} evidence atoms "
            f"({len(self.assented)} assented), "
            f"{len(self.residue)} informal-residue elements"
        )


def formalise_argument(argument: Argument) -> Formalisation:
    """Build the Rushby-style formal skeleton of a GSN argument."""
    claim_atoms: dict[str, Atom] = {}
    evidence_atoms: dict[str, Atom] = {}
    residue: list[ResidueReason] = []
    rules: list[Formula] = []
    assumed_rules: list[Formula] = []

    for node in argument.nodes:
        if node.node_type in (NodeType.GOAL, NodeType.AWAY_GOAL,
                              NodeType.STRATEGY):
            claim_atoms[node.identifier] = Atom(_atom_name(node))
        elif node.node_type is NodeType.SOLUTION:
            evidence_atoms[node.identifier] = Atom(
                f"good_doc_{node.identifier.lower()}"
            )

    for node in argument.nodes:
        if node.identifier not in claim_atoms:
            continue
        supporters = argument.supporters(node.identifier)
        if not supporters:
            continue
        claim_children = [
            claim_atoms[c.identifier]
            for c in supporters if c.identifier in claim_atoms
        ]
        evidence_children = [
            evidence_atoms[c.identifier]
            for c in supporters if c.identifier in evidence_atoms
        ]
        # Support semantics: sub-claims are jointly required (an argument
        # step needs all its legs), while multiple evidence items under
        # one claim are *alternative* grounds — each independently
        # establishes it.  GSN itself leaves this ambiguous (the paper
        # cites [35] on GSN's definitional ambiguity); the choice is
        # documented here and exercised by the §VI.E redundancy probes.
        node_rules: list[Formula] = []
        if claim_children:
            antecedent = conjoin(claim_children + evidence_children)
            node_rules.append(
                Implies(antecedent, claim_atoms[node.identifier])
            )
        else:
            node_rules.extend(
                Implies(evidence, claim_atoms[node.identifier])
                for evidence in evidence_children
            )
        if not node_rules:
            continue
        category = classify_residue(node)
        if category is None:
            rules.extend(node_rules)
        else:
            residue.append(ResidueReason(
                node.identifier, category, node.text[:60]
            ))
            assumed_rules.extend(node_rules)

    return Formalisation(
        argument=argument,
        claim_atoms=claim_atoms,
        rules=rules,
        evidence_atoms=evidence_atoms,
        residue=residue,
        assumed_rules=assumed_rules,
    )
