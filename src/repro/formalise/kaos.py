"""KAOS goal models with LTL semantics (Brunel & Cazin).

Brunel & Cazin 'propose first developing a KAOS goal structure and then
deriving the formalised argument from this' (§III.G), giving claims an LTL
semantics 'that allows automatic validation of the argumentation'.  Their
running example formalises the UAV claim 'the Detect and Avoid function is
correct' as a temporal property over obstacle distance.

This module provides:

* :class:`KaosGoal` — a goal with a natural-language definition, an
  optional LTL formalisation, and AND-refinements into sub-goals down to
  leaf requirements/expectations/domain properties;
* :meth:`KaosModel.check_refinement` — mechanical validation of one
  refinement over a trace suite: a counterexample is any trace where all
  children hold but the parent fails (the 'validity' problem);
* :meth:`KaosModel.validate` — whole-model validation plus the
  'completion' check (every leaf formalised, every goal refined or leaf);
* :func:`kaos_to_argument` — derivation of a GSN argument whose structure
  'reflects that of the KAOS goal structure' as the paper describes;
* :func:`uav_model` / :func:`uav_traces` — the detect-and-avoid scenario,
  with seeded nominal and fault-injected trace generators.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from ..core.argument import Argument, LinkKind
from ..core.nodes import Node, NodeType
from ..logic.ltl import LtlFormula, Trace, holds, parse_ltl

__all__ = [
    "GoalCategory",
    "KaosGoal",
    "RefinementCounterexample",
    "ValidationReport",
    "KaosModel",
    "kaos_to_argument",
    "uav_model",
    "uav_traces",
]


from enum import Enum


class GoalCategory(Enum):
    """KAOS leaf categories."""

    GOAL = "goal"
    REQUIREMENT = "requirement"    # assigned to the software
    EXPECTATION = "expectation"    # assigned to the environment
    DOMAIN_PROPERTY = "domain_property"


@dataclass
class KaosGoal:
    """One node of a KAOS goal model."""

    name: str
    definition: str
    formal: LtlFormula | None = None
    category: GoalCategory = GoalCategory.GOAL
    refinements: list["KaosGoal"] = field(default_factory=list)

    def refine(self, *children: "KaosGoal") -> "KaosGoal":
        """AND-refine this goal into sub-goals; returns self for chaining."""
        self.refinements.extend(children)
        return self

    def is_leaf(self) -> bool:
        return not self.refinements

    def walk(self) -> Iterable["KaosGoal"]:
        yield self
        for child in self.refinements:
            yield from child.walk()


@dataclass(frozen=True)
class RefinementCounterexample:
    """A trace witnessing an invalid refinement."""

    parent: str
    trace_index: int
    detail: str

    def __str__(self) -> str:
        return (
            f"refinement of {self.parent!r} fails on trace "
            f"{self.trace_index}: {self.detail}"
        )


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of whole-model validation."""

    counterexamples: tuple[RefinementCounterexample, ...]
    unformalised: tuple[str, ...]
    unrefined: tuple[str, ...]

    @property
    def valid(self) -> bool:
        """No refinement failed on any supplied trace."""
        return not self.counterexamples

    @property
    def complete(self) -> bool:
        """Every goal formalised; every non-leaf refined (completion)."""
        return not self.unformalised and not self.unrefined

    def summary(self) -> str:
        return (
            f"valid={self.valid} complete={self.complete} "
            f"({len(self.counterexamples)} counterexample(s), "
            f"{len(self.unformalised)} unformalised, "
            f"{len(self.unrefined)} unrefined)"
        )


class KaosModel:
    """A KAOS goal model rooted at one system goal."""

    def __init__(self, root: KaosGoal) -> None:
        self.root = root

    def goals(self) -> list[KaosGoal]:
        return list(self.root.walk())

    def goal(self, name: str) -> KaosGoal:
        for candidate in self.root.walk():
            if candidate.name == name:
                return candidate
        raise KeyError(f"no goal named {name!r}")

    def check_refinement(
        self, parent: KaosGoal, traces: Sequence[Trace]
    ) -> list[RefinementCounterexample]:
        """Trace-based refinement validation.

        For each trace where every formalised child holds, the parent must
        hold too.  (A semantic entailment check over all traces is
        undecidable in general; bounded trace suites are the standard
        pragmatic validation — and exactly what 'explicit validation of
        the model assumptions' amounts to in practice.)
        """
        if parent.formal is None or parent.is_leaf():
            return []
        formal_children = [
            child for child in parent.refinements if child.formal is not None
        ]
        if not formal_children:
            return []
        out: list[RefinementCounterexample] = []
        for index, trace in enumerate(traces):
            if not trace:
                continue
            if all(holds(c.formal, trace) for c in formal_children):
                if not holds(parent.formal, trace):
                    out.append(RefinementCounterexample(
                        parent.name, index,
                        "all sub-goals hold but the parent fails",
                    ))
        return out

    def validate(self, traces: Sequence[Trace]) -> ValidationReport:
        """Validate every refinement and check completion."""
        counterexamples: list[RefinementCounterexample] = []
        unformalised: list[str] = []
        unrefined: list[str] = []
        for goal in self.root.walk():
            if goal.formal is None:
                unformalised.append(goal.name)
            if goal.is_leaf() and goal.category is GoalCategory.GOAL:
                unrefined.append(goal.name)
            counterexamples.extend(self.check_refinement(goal, traces))
        return ValidationReport(
            tuple(counterexamples), tuple(unformalised), tuple(unrefined)
        )


def kaos_to_argument(model: KaosModel) -> Argument:
    """Derive the formal safety argumentation from the KAOS structure.

    Structure mirrors the goal model (§III.G): each goal becomes a GSN
    goal whose text pairs the natural-language definition with its LTL
    formalisation; refinements become strategies; requirement/expectation
    leaves gain solutions citing their verification artefacts; domain
    properties become context.
    """
    argument = Argument(name=f"kaos:{model.root.name}")
    counter = {"s": 0, "sn": 0, "c": 0}

    def add_goal(goal: KaosGoal, parent_strategy: str | None) -> None:
        formal_text = f" [LTL: {goal.formal}]" if goal.formal else ""
        if goal.category is GoalCategory.DOMAIN_PROPERTY:
            counter["c"] += 1
            identifier = f"C{counter['c']}"
            argument.add_node(Node(
                identifier, NodeType.CONTEXT,
                f"{goal.definition}{formal_text}",
            ))
            if parent_strategy:
                argument.add_link(
                    parent_strategy, identifier, LinkKind.IN_CONTEXT_OF
                )
            return
        identifier = f"G_{goal.name}"
        argument.add_node(Node(
            identifier, NodeType.GOAL,
            f"{goal.definition}{formal_text}",
        ))
        if parent_strategy:
            argument.add_link(
                parent_strategy, identifier, LinkKind.SUPPORTED_BY
            )
        if goal.is_leaf():
            counter["sn"] += 1
            solution = f"Sn{counter['sn']}"
            label = (
                "verification record"
                if goal.category is GoalCategory.REQUIREMENT
                else "environment assumption validation record"
            )
            argument.add_node(Node(
                solution, NodeType.SOLUTION,
                f"{goal.name} {label}",
            ))
            argument.add_link(identifier, solution, LinkKind.SUPPORTED_BY)
            return
        counter["s"] += 1
        strategy = f"S{counter['s']}"
        argument.add_node(Node(
            strategy, NodeType.STRATEGY,
            f"AND-refinement of {goal.name}",
        ))
        argument.add_link(identifier, strategy, LinkKind.SUPPORTED_BY)
        for child in goal.refinements:
            add_goal(child, strategy)

    add_goal(model.root, None)
    return argument


def uav_model() -> KaosModel:
    """The Brunel & Cazin detect-and-avoid goal model (our rendering).

    The top-level claim is their 'Detect and Avoid function is correct':
    whenever an intrusion occurs, no collision happens until separation is
    restored — ``G (intrusion -> (no_collision U separated))`` over the
    boolean trace vocabulary of :func:`uav_traces`.
    """
    top = KaosGoal(
        "DetectAndAvoidCorrect",
        "The Detect and Avoid function is correct",
        parse_ltl("G (intrusion -> (no_collision U separated))"),
    )
    detect = KaosGoal(
        "IntrusionDetected",
        "Every intrusion raises a detection within one step",
        parse_ltl("G (intrusion -> (detected | X detected))"),
        GoalCategory.REQUIREMENT,
    )
    manoeuvre = KaosGoal(
        "AvoidanceManoeuvre",
        "A detection leads to an avoidance manoeuvre that keeps "
        "separation until restored",
        parse_ltl("G (detected -> (no_collision U separated))"),
        GoalCategory.REQUIREMENT,
    )
    detection_sound = KaosGoal(
        "SensorCoverage",
        "The sensor field of regard covers the intrusion geometry",
        parse_ltl("G (intrusion -> in_field_of_regard)"),
        GoalCategory.EXPECTATION,
    )
    physics = KaosGoal(
        "ClosureDynamics",
        "Closure dynamics give at least one step between intrusion "
        "onset and collision",
        parse_ltl("G (intrusion -> no_collision)"),
        GoalCategory.DOMAIN_PROPERTY,
    )
    top.refine(detect, manoeuvre, detection_sound, physics)
    return KaosModel(top)


def flawed_uav_model() -> KaosModel:
    """The detect-and-avoid model *without* its domain property.

    Omitting ClosureDynamics makes the refinement incomplete: a trace can
    satisfy detection (one step late) and the manoeuvre goal yet collide
    at intrusion onset.  The validation benchmarks show
    :meth:`KaosModel.validate` finding exactly this hole — and the full
    :func:`uav_model` closing it.
    """
    full = uav_model()
    full.root.refinements = [
        goal for goal in full.root.refinements
        if goal.category is not GoalCategory.DOMAIN_PROPERTY
    ]
    return full


def uav_traces(
    rng: random.Random,
    count: int = 50,
    length: int = 20,
    fault_rate: float = 0.0,
) -> list[Trace]:
    """Seeded encounter traces for the detect-and-avoid scenario.

    Nominal traces satisfy every goal in :func:`uav_model`.  With
    ``fault_rate`` > 0 some traces exhibit the late-detection hazard: the
    intruder is detected one step after intrusion onset and a collision
    occurs *at onset* — the sub-goals of :func:`flawed_uav_model` all hold
    on such traces while the parent fails, a genuine refinement
    counterexample (closed by the ClosureDynamics domain property in the
    full model).
    """
    traces: list[Trace] = []
    for _ in range(count):
        faulty = rng.random() < fault_rate
        states: list[frozenset[str]] = []
        intrusion_at = rng.randrange(1, max(2, length - 6))
        separation_at = intrusion_at + rng.randrange(2, 5)
        for step in range(length):
            atoms: set[str] = {"in_field_of_regard"}
            intruding = intrusion_at <= step < separation_at
            if intruding:
                atoms.add("intrusion")
            if step >= separation_at:
                atoms.add("separated")
            if intruding and (step > intrusion_at or not faulty):
                atoms.add("detected")
            collision = faulty and step == intrusion_at
            if not collision:
                atoms.add("no_collision")
            states.append(frozenset(atoms))
        traces.append(states)
    return traces
