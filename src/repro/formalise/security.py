"""Security requirements satisfaction arguments (Haley et al.).

Haley et al. split satisfaction arguments into two parts (§III.K):

* the **outer argument** — 'a formal argument to prove that a system can
  satisfy its security requirements, drawing upon claims about the
  behavior and properties of domains', given as a numbered natural-
  deduction proof whose premises are *trust assumptions*;
* the **inner arguments** — 'structured informal arguments to support the
  trust assumptions made in the formal argument', in extended Toulmin
  notation.

This module implements the framework: domain behaviour claims, the
machine-checked outer proof, inner Toulmin arguments keyed to the outer
premises, and the completeness analysis the framework motivates —
'by first requiring the construction of the formal argument ... one
discovers which domain properties are critical for security'.

:func:`haley_example` assembles the exact 2008 worked example: the
11-step proof of ``D -> H`` plus the credential-administration inner
argument.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..core.toulmin import (
    Rebuttal,
    Statement,
    ToulminArgument,
    haley_inner_argument,
)
from ..logic.entailment import entails
from ..logic.natural_deduction import (
    Proof,
    ProofError,
    Rule,
    check_proof,
    haley_outer_proof,
)
from ..logic.propositional import Atom, Formula, parse

__all__ = [
    "DomainClaim",
    "SatisfactionArgument",
    "SatisfactionReport",
    "haley_example",
]


@dataclass(frozen=True)
class DomainClaim:
    """A claim about the behaviour/properties of a domain — the unit from
    which outer arguments draw, and which trust assumptions ground."""

    atom: str
    meaning: str
    domain: str

    def __str__(self) -> str:
        return f"{self.atom} ({self.domain}): {self.meaning}"


@dataclass(frozen=True)
class SatisfactionReport:
    """Outcome of checking a satisfaction argument."""

    proof_checks: bool
    requirement_proved: bool
    unsupported_assumptions: tuple[str, ...]
    critical_assumptions: tuple[str, ...]

    @property
    def satisfied(self) -> bool:
        """Outer proof checks, proves the requirement, and every premise
        has inner support."""
        return (
            self.proof_checks
            and self.requirement_proved
            and not self.unsupported_assumptions
        )

    def summary(self) -> str:
        return (
            f"proof_checks={self.proof_checks} "
            f"requirement_proved={self.requirement_proved} "
            f"unsupported={list(self.unsupported_assumptions)} "
            f"critical={list(self.critical_assumptions)}"
        )


@dataclass
class SatisfactionArgument:
    """A two-part Haley security satisfaction argument."""

    requirement: Formula
    outer: Proof
    vocabulary: dict[str, DomainClaim] = field(default_factory=dict)
    inner: dict[str, ToulminArgument] = field(default_factory=dict)

    def declare(self, claim: DomainClaim) -> None:
        """Register the meaning of one proof atom."""
        self.vocabulary[claim.atom] = claim

    def support(self, premise_text: str, argument: ToulminArgument) -> None:
        """Attach an inner argument to one outer premise (by its text)."""
        known = {str(p) for p in self.outer.premises}
        if premise_text not in known:
            raise KeyError(
                f"{premise_text!r} is not an outer premise; premises are "
                f"{sorted(known)}"
            )
        self.inner[premise_text] = argument

    def trust_assumptions(self) -> list[str]:
        """The outer premises, i.e. what must be trusted for the proof."""
        return [str(p) for p in self.outer.premises]

    def critical_domain_properties(self) -> list[str]:
        """Premises the conclusion actually needs (what-if elimination).

        This operationalises the authors' claimed benefit: 'one discovers
        which domain properties are critical for security'.
        """
        premises = list(self.outer.premises)
        critical: list[str] = []
        for index, premise in enumerate(premises):
            rest = premises[:index] + premises[index + 1:]
            if not entails(rest, self.outer.conclusion):
                critical.append(str(premise))
        return critical

    def check(self) -> SatisfactionReport:
        """Full framework check: proof, requirement, inner coverage."""
        try:
            proof_ok = check_proof(self.outer)
        except ProofError:
            # An invalid proof is a *negative check result*, not a
            # crash.  Anything else (a genuine bug in the checker, a
            # malformed Proof object) must propagate — swallowing it
            # here would report a broken checker as "proof fails".
            proof_ok = False
        requirement_ok = proof_ok and (
            self.outer.conclusion == self.requirement
            or entails([self.outer.conclusion], self.requirement)
        )
        unsupported = tuple(
            text
            for text in self.trust_assumptions()
            if text not in self.inner
        )
        return SatisfactionReport(
            proof_checks=proof_ok,
            requirement_proved=requirement_ok,
            unsupported_assumptions=unsupported,
            critical_assumptions=tuple(self.critical_domain_properties()),
        )

    def rebuttals(self) -> list[str]:
        """Every rebuttal recorded across the inner arguments.

        Industrial partners 'wanted to proceed directly to the inner
        arguments' (§III.K); the rebuttal list is where the inner
        arguments earn their keep.
        """
        out: list[str] = []
        for argument in self.inner.values():
            out.extend(
                rebuttal.statement.text
                for rebuttal in _all_rebuttals(argument)
            )
        return out


def _all_rebuttals(argument: ToulminArgument) -> list[Rebuttal]:
    found = list(argument.rebuttals)
    for warrant in argument.warrants:
        if isinstance(warrant, ToulminArgument):
            found.extend(_all_rebuttals(warrant))
    return found


def haley_example() -> SatisfactionArgument:
    """The complete 2008 worked example (§III.K).

    Outer: the 11-step proof establishing ``D -> H``.  Vocabulary: the
    atom meanings implied by the example (deployment, credentials, HR
    membership).  Inner: the credential-administration Toulmin argument
    supporting premise ``(C -> H)``; the remaining premises are left for
    the caller, so ``check()`` on the fresh example reports them as
    unsupported trust assumptions — the framework's to-do list.
    """
    argument = SatisfactionArgument(
        requirement=parse("D -> H"),
        outer=haley_outer_proof(),
    )
    for atom, meaning, domain in (
        ("I", "the system is inducted into the enterprise", "enterprise"),
        ("V", "credentials presented are valid", "credential system"),
        ("C", "credentials are checked on access", "access control"),
        ("H", "the credential holder is an HR member", "personnel"),
        ("Y", "the system behaves as designed", "system"),
        ("D", "the system is deployed", "deployment"),
    ):
        argument.declare(DomainClaim(atom, meaning, domain))
    argument.support("(C -> H)", haley_inner_argument())
    return argument
