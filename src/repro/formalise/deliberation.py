"""Deliberation dialogues for safety-critical actions (Tolchinsky et al.).

§III.O: Tolchinsky, Modgil, Atkinson, McBurney & Cortés 'propose using
non-monotonic logic as an on-line decision-making tool for humans
performing safety-critical tasks' — their running domain is organ
transplantation, with claims 'expressed using symbolic predicates (e.g.,
treat(r, penicillin)) and stored in the tool's database.  Using dialogue
games, the argument is updated with the details relevant to the safety
of a proposed action ... and used to explore factors that might make
that action unsafe.'

This module implements that machinery:

* :class:`DefeasibleArgument` — a presumptive argument for (or against)
  a claim, grounded in predicate facts;
* :class:`ArgumentationFramework` — a Dung abstract framework over those
  arguments with **grounded semantics** (the sceptical fixed point):
  :meth:`~ArgumentationFramework.grounded_extension` and the full
  IN/OUT/UNDEC labelling;
* :class:`DeliberationDialogue` — the dialogue game: a *proposal* to act
  opens the dialogue; participants move by attacking or reinstating
  standing arguments; at any point :meth:`~DeliberationDialogue.decision`
  reports whether the proposal is currently acceptable (its argument is
  IN under grounded semantics) — safety-conservative by construction,
  since UNDEC proposals are not acted on;
* :func:`transplant_scenario` — the paper's domain as a worked example:
  an organ offer, a contraindication, and the specialist knowledge that
  defeats it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..logic.terms import Atom, parse_atom

__all__ = [
    "DefeasibleArgument",
    "Attack",
    "ArgumentationFramework",
    "Labelling",
    "Label",
    "Move",
    "DeliberationDialogue",
    "DialogueError",
    "transplant_scenario",
]


@dataclass(frozen=True)
class DefeasibleArgument:
    """A presumptive argument: premises presumptively support the claim.

    ``name`` identifies the argument in the framework; the claim and
    premises are predicate atoms in the Tolchinsky style
    (``treat(r, penicillin)``).
    """

    name: str
    claim: Atom
    premises: tuple[Atom, ...] = ()
    note: str = ""

    @classmethod
    def of(cls, name: str, claim: str, *premises: str,
           note: str = "") -> "DefeasibleArgument":
        return cls(
            name,
            parse_atom(claim),
            tuple(parse_atom(p) for p in premises),
            note,
        )

    def __str__(self) -> str:
        premise_text = ", ".join(str(p) for p in self.premises) or "(presumption)"
        return f"{self.name}: {premise_text} => {self.claim}"


@dataclass(frozen=True)
class Attack:
    """``attacker`` attacks ``target`` (identified by argument name)."""

    attacker: str
    target: str

    def __str__(self) -> str:
        return f"{self.attacker} -x-> {self.target}"


class Label(enum.Enum):
    """Grounded labelling values."""

    IN = "in"
    OUT = "out"
    UNDEC = "undec"


Labelling = Mapping[str, Label]


class ArgumentationFramework:
    """A Dung abstract argumentation framework with grounded semantics."""

    def __init__(self) -> None:
        self._arguments: dict[str, DefeasibleArgument] = {}
        self._attacks: set[tuple[str, str]] = set()

    def add(self, argument: DefeasibleArgument) -> DefeasibleArgument:
        if argument.name in self._arguments:
            raise ValueError(
                f"argument {argument.name!r} already present"
            )
        self._arguments[argument.name] = argument
        return argument

    def attack(self, attacker: str, target: str) -> Attack:
        for name in (attacker, target):
            if name not in self._arguments:
                raise ValueError(f"unknown argument {name!r}")
        self._attacks.add((attacker, target))
        return Attack(attacker, target)

    @property
    def arguments(self) -> list[DefeasibleArgument]:
        return list(self._arguments.values())

    @property
    def attacks(self) -> list[Attack]:
        return [Attack(a, t) for a, t in sorted(self._attacks)]

    def attackers_of(self, name: str) -> set[str]:
        return {a for a, t in self._attacks if t == name}

    def grounded_extension(self) -> frozenset[str]:
        """The grounded extension: least fixed point of the defence
        operator — the sceptically acceptable arguments."""
        labelling = self.grounded_labelling()
        return frozenset(
            name for name, label in labelling.items()
            if label is Label.IN
        )

    def grounded_labelling(self) -> dict[str, Label]:
        """IN/OUT/UNDEC labelling by iterative propagation."""
        labels: dict[str, Label] = {}
        changed = True
        while changed:
            changed = False
            for name in self._arguments:
                if name in labels:
                    continue
                attackers = self.attackers_of(name)
                if all(labels.get(a) is Label.OUT for a in attackers):
                    labels[name] = Label.IN
                    changed = True
                elif any(labels.get(a) is Label.IN for a in attackers):
                    labels[name] = Label.OUT
                    changed = True
        for name in self._arguments:
            labels.setdefault(name, Label.UNDEC)
        return labels

    def is_acceptable(self, name: str) -> bool:
        """Sceptical acceptance: the argument is IN under grounding."""
        if name not in self._arguments:
            raise ValueError(f"unknown argument {name!r}")
        return self.grounded_labelling()[name] is Label.IN

    def __len__(self) -> int:
        return len(self._arguments)


class DialogueError(ValueError):
    """Raised for moves that violate the dialogue protocol."""


@dataclass(frozen=True)
class Move:
    """One dialogue move: who played which argument against what."""

    participant: str
    argument: DefeasibleArgument
    attacks_target: str | None

    def __str__(self) -> str:
        if self.attacks_target is None:
            return f"{self.participant} proposes {self.argument}"
        return (
            f"{self.participant} plays {self.argument} against "
            f"{self.attacks_target}"
        )


class DeliberationDialogue:
    """The Tolchinsky-style dialogue game over a proposed action.

    The *proposal* argument claims the action is safe.  Subsequent moves
    must attack an argument already in play (exploring 'factors that
    might make that action unsafe') or defend by attacking an attacker.
    The running :meth:`decision` is safety-conservative: the action is
    endorsed only while the proposal is sceptically IN.
    """

    def __init__(self, action: str, proposer: str = "proponent") -> None:
        self.framework = ArgumentationFramework()
        self.action = parse_atom(action)
        proposal = DefeasibleArgument(
            "proposal", self.action, (),
            note=f"it is safe to perform {action}",
        )
        self.framework.add(proposal)
        self._moves: list[Move] = [Move(proposer, proposal, None)]

    @property
    def moves(self) -> list[Move]:
        return list(self._moves)

    def play(
        self,
        participant: str,
        argument: DefeasibleArgument,
        against: str,
    ) -> Move:
        """Play an argument attacking one already in play."""
        existing = {a.name for a in self.framework.arguments}
        if against not in existing:
            raise DialogueError(
                f"target {against!r} is not in play; targets are "
                f"{sorted(existing)}"
            )
        if argument.name in existing:
            raise DialogueError(
                f"argument {argument.name!r} was already played"
            )
        self.framework.add(argument)
        self.framework.attack(argument.name, against)
        move = Move(participant, argument, against)
        self._moves.append(move)
        return move

    def decision(self) -> bool:
        """Is the proposed action currently endorsed?

        True only when the proposal is IN under grounded semantics —
        unresolved (UNDEC) states do not endorse a safety-critical
        action.
        """
        return self.framework.is_acceptable("proposal")

    def open_challenges(self) -> list[str]:
        """Arguments currently IN that oppose the proposal's side.

        These are the factors a deliberating team must answer before
        the action becomes acceptable again.
        """
        labelling = self.framework.grounded_labelling()
        proposal_side = {"proposal"}
        # Everything at even attack-distance from the proposal defends
        # it; odd distance opposes it.  Compute by BFS over attacks.
        distance: dict[str, int] = {"proposal": 0}
        frontier = ["proposal"]
        while frontier:
            current = frontier.pop()
            for attacker in self.framework.attackers_of(current):
                if attacker not in distance:
                    distance[attacker] = distance[current] + 1
                    frontier.append(attacker)
        del proposal_side
        return sorted(
            name
            for name, label in labelling.items()
            if label is Label.IN
            and distance.get(name, 0) % 2 == 1
        )

    def transcript(self) -> str:
        lines = [str(move) for move in self._moves]
        labelling = self.framework.grounded_labelling()
        lines.append("")
        for argument in self.framework.arguments:
            lines.append(
                f"  {argument.name}: {labelling[argument.name].value}"
            )
        verdict = "ENDORSED" if self.decision() else "NOT ENDORSED"
        lines.append(f"action {self.action}: {verdict}")
        return "\n".join(lines) + "\n"


def transplant_scenario() -> DeliberationDialogue:
    """The paper's domain, worked: an organ offer under deliberation.

    The proposal: transplant donor organ o1 into recipient r.  The
    on-call physician raises a contraindication — the donor had a
    history of hepatitis B, presumptively unsafe.  The transplant
    specialist defeats it with domain knowledge: the recipient is
    already immune (vaccinated responder), so the contraindication does
    not apply — mirroring the 'dialogue games ... used to explore
    factors that might make that action unsafe'.
    """
    dialogue = DeliberationDialogue("transplant(o1, r)")
    contraindication = DefeasibleArgument.of(
        "contra_hbv",
        "unsafe(transplant(o1, r))",
        "donor_history(o1, hepatitis_b)",
        note="donor HBV history presumptively contraindicates",
    )
    dialogue.play("physician", contraindication, against="proposal")
    immunity = DefeasibleArgument.of(
        "recipient_immune",
        "not_applicable(contra_hbv)",
        "vaccinated(r, hepatitis_b)", "responder(r, hepatitis_b)",
        note="recipient immunity defeats the HBV contraindication",
    )
    dialogue.play("specialist", immunity, against="contra_hbv")
    return dialogue
