"""The surveyed formalisation proposals, implemented as working systems.

One module per proposal family from the §III survey:

* :mod:`~repro.formalise.translator` — Rushby's partial formalisation
  into machine-checked logic with what-if probing (§III.M)
* :mod:`~repro.formalise.proof_to_argument` — Basir/Denney/Fischer
  argument generation from proofs, with the abstraction pass (§III.E)
* :mod:`~repro.formalise.kaos` — Brunel & Cazin KAOS goal models with
  LTL semantics and mechanical validation (§III.G)
* :mod:`~repro.formalise.security` — Haley et al. two-part security
  satisfaction arguments (§III.K)
* :mod:`~repro.formalise.policy` — Tun et al. Event-Calculus privacy
  arguments with availability/denial/explanation checks (§III.P)
"""

from .deliberation import (
    ArgumentationFramework,
    DefeasibleArgument,
    DeliberationDialogue,
    transplant_scenario,
)
from .kaos import (
    GoalCategory,
    flawed_uav_model,
    KaosGoal,
    KaosModel,
    kaos_to_argument,
    uav_model,
    uav_traces,
)
from .policy import (
    DisclosureExplanation,
    PolicyModel,
    build_location_policy,
    check_availability,
    check_denial,
    explain_disclosure,
)
from .proof_to_argument import (
    GenerationReport,
    abstract_argument,
    proof_to_argument,
    report,
    resolution_to_argument,
)
from .security import (
    DomainClaim,
    SatisfactionArgument,
    SatisfactionReport,
    haley_example,
)
from .translator import (
    Formalisation,
    ResidueReason,
    classify_residue,
    formalise_argument,
)

__all__ = [
    "ArgumentationFramework",
    "DefeasibleArgument",
    "DeliberationDialogue",
    "transplant_scenario",
    "GoalCategory",
    "KaosGoal",
    "KaosModel",
    "kaos_to_argument",
    "flawed_uav_model",
    "uav_model",
    "uav_traces",
    "DisclosureExplanation",
    "PolicyModel",
    "build_location_policy",
    "check_availability",
    "check_denial",
    "explain_disclosure",
    "GenerationReport",
    "abstract_argument",
    "proof_to_argument",
    "report",
    "resolution_to_argument",
    "DomainClaim",
    "SatisfactionArgument",
    "SatisfactionReport",
    "haley_example",
    "Formalisation",
    "ResidueReason",
    "classify_residue",
    "formalise_argument",
]
