"""Automatic generation of safety arguments from proofs (Basir et al.).

Basir, Denney & Fischer 'automatically generate safety arguments from
symbolic, deductive proofs' (§III.E), preferring 'natural deduction style
proofs, which are closer to human reasoning than resolution proofs'.  The
paper records two of their own caveats, both reproduced here:

* generated goals like 'Formal proof that Quat4::quat(NED, Body) holds for
  Fc.cpp' are *not propositions* as GSN requires — our generator offers
  both that 'formal-proof-that' goal style (``proposition_style=False``,
  faithfully failing the propositionality check) and a corrected
  declarative style;
* 'the straightforward conversion of proofs into safety cases is far from
  satisfactory as they typically contain too many details', with
  abstraction as future work — :func:`abstract_argument` implements that
  future work: linear inference chains collapse into single steps.

:func:`resolution_to_argument` converts resolution refutations too, so the
benchmarks can quantify the authors' readability preference: generated-
from-resolution arguments come out deeper and more cluttered than
generated-from-ND ones.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.argument import Argument, LinkKind
from ..core.nodes import Node, NodeType
from ..logic.natural_deduction import Proof, Rule
from ..logic.resolution import ResolutionProof

__all__ = [
    "GenerationReport",
    "proof_to_argument",
    "resolution_to_argument",
    "abstract_argument",
]


@dataclass(frozen=True)
class GenerationReport:
    """Size metrics for a generated argument (benchmark fodder)."""

    source: str
    node_count: int
    link_count: int
    depth: int

    def __str__(self) -> str:
        return (
            f"{self.source}: {self.node_count} nodes, "
            f"{self.link_count} links, depth {self.depth}"
        )


def proof_to_argument(
    proof: Proof,
    subject: str = "the system",
    proposition_style: bool = True,
) -> Argument:
    """Generate a GSN argument from a checked natural-deduction proof.

    Each derived line becomes a goal supported by the lines it cites;
    premises become goals supported by a solution citing the proof
    evidence.  With ``proposition_style=False`` the generator reproduces
    the Basir/Denney goal phrasing the paper criticises ('Formal proof
    that ... holds'), which fails
    :func:`repro.core.nodes.looks_propositional`.
    """
    argument = Argument(name=f"generated:{subject}")
    conclusion_line = len(proof.lines)
    for line in proof.lines:
        if proposition_style:
            text = f"{line.formula} holds for {subject}"
        else:
            text = f"Formal proof that {line.formula} holds for {subject}"
        identifier = f"G{line.number}"
        argument.add_node(Node(identifier, NodeType.GOAL, text))
        if line.rule in (Rule.PREMISE, Rule.ASSUMPTION):
            solution_id = f"Sn{line.number}"
            argument.add_node(Node(
                solution_id, NodeType.SOLUTION,
                f"Verification-condition record for premise "
                f"{line.formula}",
            ))
            argument.add_link(
                identifier, solution_id, LinkKind.SUPPORTED_BY
            )
        else:
            rule_name = line.rule.value.replace("_", " ")
            strategy_id = f"S{line.number}"
            argument.add_node(Node(
                strategy_id, NodeType.STRATEGY,
                f"Argument by {rule_name} over "
                f"{', '.join(f'line {c}' for c in line.citations)}",
            ))
            argument.add_link(
                identifier, strategy_id, LinkKind.SUPPORTED_BY
            )
            cited_lines = list(line.citations)
            if line.rule is Rule.CONCLUSION:
                # A conditional proof also rests on the line that derived
                # its consequent; cite it so the generated structure
                # hangs together.
                from ..logic.propositional import Implies as _Implies

                if isinstance(line.formula, _Implies):
                    for earlier in proof.lines[: line.number - 1]:
                        if earlier.formula == line.formula.consequent:
                            cited_lines.append(earlier.number)
                            break
            for cited in cited_lines:
                argument.add_link(
                    strategy_id, f"G{cited}", LinkKind.SUPPORTED_BY
                )
    # The conclusion is the root; nothing supports it, all else hangs off.
    del conclusion_line
    return argument


def resolution_to_argument(
    proof: ResolutionProof, subject: str = "the system"
) -> Argument:
    """Generate a GSN argument from a resolution refutation.

    Only steps on the path to the empty clause are rendered.  Because
    refutations argue by contradiction over machine-generated clauses,
    the output is exactly the 'obscure' structure Basir et al. avoided —
    benchmarks compare its size/depth against the ND rendering.
    """
    if not proof.found:
        raise ValueError("resolution proof did not reach the empty clause")
    argument = Argument(name=f"generated-resolution:{subject}")
    used = proof.used_steps()
    for index in used:
        step = proof.steps[index]
        clause_text = str(step.clause) if not step.clause.is_empty else \
            "a contradiction"
        if step.rule == "input":
            text = f"Clause {clause_text} is given for {subject}"
        else:
            text = (
                f"Clause {clause_text} follows by {step.rule} for {subject}"
            )
        argument.add_node(Node(f"G{index}", NodeType.GOAL, text))
        if step.rule == "input":
            argument.add_node(Node(
                f"Sn{index}", NodeType.SOLUTION,
                f"Clausification record for {clause_text}",
            ))
            argument.add_link(
                f"G{index}", f"Sn{index}", LinkKind.SUPPORTED_BY
            )
    for index in used:
        step = proof.steps[index]
        for parent in step.parents:
            argument.add_link(
                f"G{index}", f"G{parent}", LinkKind.SUPPORTED_BY
            )
    return argument


def abstract_argument(argument: Argument) -> Argument:
    """The Basir et al. future-work abstraction pass.

    Collapses every linear chain — a goal supported by exactly one
    strategy that supports exactly one goal — into a direct link, removing
    the intermediate bookkeeping nodes that make generated arguments
    'contain too many details'.  Repeats to a fixed point.
    """
    current = argument.copy(name=f"{argument.name}(abstracted)")
    changed = True
    while changed:
        changed = False
        for node in list(current.nodes):
            if node.node_type is not NodeType.STRATEGY:
                continue
            parents = current.parents(node.identifier, LinkKind.SUPPORTED_BY)
            children = current.supporters(node.identifier)
            if len(parents) == 1 and len(children) == 1:
                parent, child = parents[0], children[0]
                current.remove_node(node.identifier)
                try:
                    current.supported_by(
                        parent.identifier, child.identifier
                    )
                except ValueError:
                    pass  # link already present
                changed = True
                break
    return current


def report(argument: Argument, source: str) -> GenerationReport:
    """Measure a generated argument."""
    stats = argument.statistics()
    return GenerationReport(
        source=source,
        node_count=stats["node_count"],
        link_count=stats["link_count"],
        depth=stats["depth"],
    )
