"""Privacy arguments over the Event Calculus (Tun et al.).

Tun et al. formalise selective-disclosure requirements into the Event
Calculus 'so that requirement satisfaction can be reasoned about'
(§III.P).  Their example axiom — rendered in the paper — says: if at time
``t`` the user and subject share a platform (``SamePF``) or are friends,
and the user taps the subject, then the subject's location is queried at
``t+1`` and disclosed (``At``) at ``t+2``.

They claim the formalisation 'can be used to check some important privacy
properties': **(1) information availability**, **(2) denial**, and
**(3) explanation**.  This module builds the scenario on our EC engine and
implements all three checks:

* :func:`check_availability` — an authorised requester's tap leads to a
  disclosure;
* :func:`check_denial` — an unauthorised requester's tap never leads to a
  disclosure;
* :func:`explain_disclosure` — the causal chain (trigger firings) behind
  each disclosure, reconstructed from the timeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..logic.event_calculus import (
    EffectAxiom,
    Event,
    EventCalculus,
    Fluent,
    Narrative,
    Timeline,
    TriggerRule,
)

__all__ = [
    "PolicyModel",
    "DisclosureExplanation",
    "build_location_policy",
    "check_availability",
    "check_denial",
    "explain_disclosure",
]


def _same_pf(user: str, subject: str) -> Fluent:
    return Fluent("SamePF", (user, subject))


def _friends(user: str, subject: str) -> Fluent:
    return Fluent("Friends", (user, subject))


def _tap(user: str, subject: str) -> Event:
    return Event("Tap", (user, subject))


def _query(user: str, subject: str) -> Event:
    return Event("Query", (user, subject))


def _at(user: str, subject: str, location: str) -> Event:
    return Event("At", (user, subject, location))


@dataclass
class PolicyModel:
    """A selective-disclosure policy instance for a set of principals."""

    calculus: EventCalculus
    principals: tuple[str, ...]
    location_of: dict[str, str]

    def tap(self, narrative: Narrative, user: str, subject: str,
            time: int) -> None:
        """Record a Tap request in the narrative."""
        narrative.happens(_tap(user, subject), time)

    def run(self, narrative: Narrative) -> Timeline:
        return self.calculus.run(narrative)

    def disclosure_event(self, user: str, subject: str) -> Event:
        return _at(user, subject, self.location_of[subject])


def build_location_policy(
    principals: Sequence[str],
    location_of: dict[str, str],
) -> PolicyModel:
    """Instantiate the Tun et al. axiom for concrete principals.

    The paper's axiom, grounded per (user, subject) pair::

        (HoldsAt(SamePF(u, s), t) | HoldsAt(Friends(u, s), t))
        & Happens(Tap(u, s), t)
          -> Happens(Query(s, loc), t+1) & Happens(At(s, loc), t+2)
    """
    calculus = EventCalculus()
    for user in principals:
        for subject in principals:
            if user == subject:
                continue
            location = location_of[subject]
            for guard_fluent in (_same_pf(user, subject),
                                 _friends(user, subject)):
                calculus.add_trigger(TriggerRule(
                    trigger=_tap(user, subject),
                    guard=(guard_fluent,),
                    response=_query(user, subject),
                    delay=1,
                ))
                calculus.add_trigger(TriggerRule(
                    trigger=_tap(user, subject),
                    guard=(guard_fluent,),
                    response=_at(user, subject, location),
                    delay=2,
                ))
    # Relationship lifecycle events, so narratives can evolve friendships.
    for user in principals:
        for subject in principals:
            if user == subject:
                continue
            calculus.add_axiom(EffectAxiom(
                Event("Befriend", (user, subject)),
                _friends(user, subject), initiates=True,
            ))
            calculus.add_axiom(EffectAxiom(
                Event("Unfriend", (user, subject)),
                _friends(user, subject), initiates=False,
            ))
            calculus.add_axiom(EffectAxiom(
                Event("JoinPlatform", (user, subject)),
                _same_pf(user, subject), initiates=True,
            ))
    return PolicyModel(calculus, tuple(principals), dict(location_of))


def check_availability(
    model: PolicyModel,
    narrative: Narrative,
    user: str,
    subject: str,
) -> bool:
    """Property (1): an authorised Tap eventually yields the disclosure.

    'Authorised' means the guard (SamePF or Friends) held at the moment
    of some Tap in the narrative.
    """
    timeline = model.run(narrative)
    taps = [
        occ.time
        for occ in narrative.occurrences
        if occ.event == _tap(user, subject)
    ]
    disclosure = model.disclosure_event(user, subject)
    for tap_time in taps:
        authorised = (
            timeline.holds_at(_same_pf(user, subject), tap_time)
            or timeline.holds_at(_friends(user, subject), tap_time)
        )
        if authorised and timeline.happens(disclosure, tap_time + 2):
            return True
    return False


def check_denial(
    model: PolicyModel,
    narrative: Narrative,
    user: str,
    subject: str,
) -> bool:
    """Property (2): no disclosure to ``user`` ever occurs.

    True when the timeline contains no ``At(user, subject, loc)`` event at
    any instant — the denial guarantee for an unauthorised requester.
    """
    timeline = model.run(narrative)
    disclosure = model.disclosure_event(user, subject)
    return not timeline.ever_happens(disclosure)


@dataclass(frozen=True)
class DisclosureExplanation:
    """Property (3): why a disclosure happened."""

    user: str
    subject: str
    disclosed_at: int
    tap_time: int
    basis: str  # 'SamePF' or 'Friends'

    def __str__(self) -> str:
        return (
            f"location of {self.subject!r} disclosed to {self.user!r} at "
            f"t={self.disclosed_at} because of Tap at t={self.tap_time} "
            f"while {self.basis} held"
        )


def explain_disclosure(
    model: PolicyModel,
    narrative: Narrative,
    user: str,
    subject: str,
) -> list[DisclosureExplanation]:
    """Reconstruct the causal chain behind each disclosure to ``user``."""
    timeline = model.run(narrative)
    disclosure = model.disclosure_event(user, subject)
    explanations: list[DisclosureExplanation] = []
    for time, events in sorted(timeline.occurrences.items()):
        if disclosure not in events:
            continue
        tap_time = time - 2
        if tap_time < 0 or not timeline.happens(_tap(user, subject),
                                                tap_time):
            continue
        if timeline.holds_at(_same_pf(user, subject), tap_time):
            basis = "SamePF"
        elif timeline.holds_at(_friends(user, subject), tap_time):
            basis = "Friends"
        else:
            basis = "unknown"
        explanations.append(DisclosureExplanation(
            user, subject, time, tap_time, basis
        ))
    return explanations
