"""Formal evidence obligations: claims bound to machine-checked proofs.

This is the half of the claim language that answers the paper's central
question (do formal assurance arguments pay their way?) with a
measurable workload: an evidence node stops being a prose citation and
starts carrying **obligations** — small formal problems that must be
discharged by :mod:`repro.logic` every time the argument is checked.

An obligation is a one-line spec, ``<kind>: <body>``:

``sat: <propositional formula>``
    the formula must be satisfiable (a consistency witness exists);
``valid: <propositional formula>``
    the formula must be a tautology;
``entails: p1 ; p2 |- conclusion``
    the ``;``-separated propositional premises must entail the
    conclusion;
``fol: sort S = a, b ; pred P(S) ; axiom forall x:S. P(x) |- P(a)``
    a multi-sorted finite-domain FOL entailment — ``sort`` declares a
    sort with its (non-empty) constant domain, ``pred`` a typed
    predicate, ``axiom`` a premise; the formula after ``|-`` must
    follow (decided by grounding + SAT, :func:`repro.logic.fol
    .fol_entails`);
``ltl: G (brake -> F stop) @ brake ; brake stop ; stop``
    the LTL formula before ``@`` must hold of the finite trace after
    it (``;``-separated states, whitespace-separated atoms, ``.`` for
    an empty state).

Obligations ride on :attr:`repro.core.nodes.Node.metadata` under
:data:`OBLIGATION_KEY`, so they persist through every store format,
journal deltas, and the parallel executor's flat columns for free.
:data:`OBLIGATION_RULE` is an ordinary audited per-node scoped rule —
the engine discharges obligations identically in all four execution
modes, and the incremental checker re-proves only the nodes an edit
touched.

Results are cached in-process per ``(evidence id, obligation
fingerprint)`` — fingerprints are content hashes, so *editing* an
obligation re-proves it while re-checking an untouched one is a cache
hit.  The cache keeps two counters (proofs run, cache hits) that the
regression tests and :mod:`benchmarks.bench_claims` use to assert the
selective-re-proof contract.
"""

from __future__ import annotations

import hashlib
import re
import threading
from dataclasses import dataclass
from typing import Callable, Optional

from ..core.analysis import RuleContext, ScopedRule, Violation, per_node
from ..core.nodes import Node
from ..logic import fol
from ..logic.entailment import entails, is_satisfiable, is_valid
from ..logic.ltl import LtlFormula, Trace, holds, parse_ltl
from ..logic.propositional import Formula, parse as parse_prop
from ..logic.terms import Atom, Const, Var

__all__ = [
    "OBLIGATION_KEY",
    "OBLIGATION_RULE",
    "OBLIGATION_RULE_NAME",
    "OBLIGATION_KINDS",
    "Obligation",
    "ObligationSyntaxError",
    "parse_obligation",
    "validate_obligation",
    "discharge",
    "obligation_counters",
    "reset_obligation_cache",
    "obligation_specs",
]

#: Metadata attribute under which a node carries its obligation specs.
OBLIGATION_KEY = "obligation"

#: Name of the shipped per-node discharge rule (stable in violations).
OBLIGATION_RULE_NAME = "evidence-obligation"

#: Recognised obligation kinds, in documentation order.
OBLIGATION_KINDS = ("sat", "valid", "entails", "fol", "ltl")


class ObligationSyntaxError(ValueError):
    """An obligation spec that cannot be parsed."""


@dataclass(frozen=True)
class Obligation:
    """One parsed obligation: a kind plus its whitespace-normal body."""

    kind: str
    body: str

    @property
    def spec(self) -> str:
        """The canonical one-line rendering, ``kind: body``."""
        return f"{self.kind}: {self.body}"

    @property
    def fingerprint(self) -> str:
        """Content hash of the canonical spec.

        sha256, not :func:`hash` — stable across processes, so the
        parallel executor's workers and a restarted session agree on
        cache keys.
        """
        digest = hashlib.sha256(self.spec.encode("utf-8")).hexdigest()
        return digest[:16]


def parse_obligation(spec: str) -> Obligation:
    """Parse ``<kind>: <body>`` into an :class:`Obligation`.

    Only the kind is validated here; body syntax is checked by
    :func:`validate_obligation` (compile time) or surfaces as a
    deterministic discharge failure (check time).
    """
    head, sep, tail = spec.partition(":")
    kind = head.strip().lower()
    body = " ".join(tail.split())
    if not sep or kind not in OBLIGATION_KINDS:
        kinds = ", ".join(OBLIGATION_KINDS)
        raise ObligationSyntaxError(
            f"expected '<kind>: <body>' with kind in {{{kinds}}}, "
            f"got {spec!r}"
        )
    if not body:
        raise ObligationSyntaxError(f"obligation {spec!r} has no body")
    return Obligation(kind, body)


# -- the FOL surface syntax ---------------------------------------------------
#
# repro.logic.fol exposes constructors only; the claim language needs a
# concrete syntax.  Grammar (';'-separated declarations, then '|-'):
#
#   spec    := decl (';' decl)* '|-' formula
#   decl    := 'sort' NAME '=' NAME (',' NAME)*
#            | 'pred' NAME ['(' NAME (',' NAME)* ')']
#            | 'axiom' formula
#   formula := quant | or_ ('->' formula)?
#   quant   := ('forall'|'exists') NAME ':' NAME '.' formula
#   or_     := and_ ('|' and_)*
#   and_    := unary ('&' unary)*
#   unary   := ('~'|'!') unary | '(' formula ')' | atom
#   atom    := NAME ['(' NAME (',' NAME)* ')']
#
# Quantified variables are the only Vars; every other NAME in term
# position is a constant.  Sort checking (including "every sort has a
# non-empty domain") happens after parsing, so errors carry the
# signature's own diagnostics.

_FOL_TOKEN_RE = re.compile(r"\s*(\|-|->|[A-Za-z_][A-Za-z0-9_]*|[(),;:=.&|~!])")

_FOL_RESERVED = frozenset({"sort", "pred", "axiom", "forall", "exists"})


def _tokenize_fol(text: str) -> "list[str]":
    tokens: "list[str]" = []
    pos = 0
    while pos < len(text):
        match = _FOL_TOKEN_RE.match(text, pos)
        if match is None:
            if text[pos:].strip():
                raise ObligationSyntaxError(
                    f"unexpected character {text[pos:].strip()[0]!r} "
                    f"in FOL spec"
                )
            break
        tokens.append(match.group(1))
        pos = match.end()
    return tokens


class _FolParser:
    """Recursive-descent parser for the FOL obligation surface syntax."""

    def __init__(self, text: str) -> None:
        self.tokens = _tokenize_fol(text)
        self.pos = 0
        self.signature = fol.Signature()
        self.sorts: "dict[str, fol.Sort]" = {}
        self.axioms: "list[fol.FolFormula]" = []

    def peek(self) -> Optional[str]:
        if self.pos < len(self.tokens):
            return self.tokens[self.pos]
        return None

    def pop(self) -> str:
        token = self.peek()
        if token is None:
            raise ObligationSyntaxError("unexpected end of FOL spec")
        self.pos += 1
        return token

    def expect(self, token: str) -> None:
        got = self.pop()
        if got != token:
            raise ObligationSyntaxError(
                f"expected {token!r} in FOL spec, got {got!r}"
            )

    def name(self) -> str:
        token = self.pop()
        if not re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", token):
            raise ObligationSyntaxError(
                f"expected a name in FOL spec, got {token!r}"
            )
        return token

    def sort_named(self, name: str) -> fol.Sort:
        try:
            return self.sorts[name]
        except KeyError:
            raise ObligationSyntaxError(
                f"sort {name!r} used before declaration"
            ) from None

    # -- declarations --------------------------------------------------

    def parse_spec(
        self,
    ) -> "tuple[fol.Signature, list[fol.FolFormula], fol.FolFormula]":
        while True:
            self.parse_decl()
            token = self.pop()
            if token == ";":
                continue
            if token == "|-":
                break
            raise ObligationSyntaxError(
                f"expected ';' or '|-' after declaration, got {token!r}"
            )
        conclusion = self.parse_formula({})
        if self.peek() is not None:
            raise ObligationSyntaxError(
                f"trailing input in FOL spec at {self.peek()!r}"
            )
        return self.signature, self.axioms, conclusion

    def parse_decl(self) -> None:
        keyword = self.pop()
        if keyword == "sort":
            name = self.name()
            self.expect("=")
            sort = self.signature.declare_sort(name)
            self.sorts[name] = sort
            self.signature.declare_constant(self.name(), sort)
            while self.peek() == ",":
                self.pop()
                self.signature.declare_constant(self.name(), sort)
        elif keyword == "pred":
            name = self.name()
            arg_sorts: "list[fol.Sort]" = []
            if self.peek() == "(":
                self.pop()
                arg_sorts.append(self.sort_named(self.name()))
                while self.peek() == ",":
                    self.pop()
                    arg_sorts.append(self.sort_named(self.name()))
                self.expect(")")
            self.signature.declare_predicate(name, *arg_sorts)
        elif keyword == "axiom":
            self.axioms.append(self.parse_formula({}))
        else:
            raise ObligationSyntaxError(
                f"expected 'sort', 'pred', or 'axiom', got {keyword!r}"
            )

    # -- formulas ------------------------------------------------------

    def parse_formula(
        self, bound: "dict[str, fol.Sort]"
    ) -> fol.FolFormula:
        left = self.parse_or(bound)
        if self.peek() == "->":
            self.pop()
            return fol.FolImplies(left, self.parse_formula(bound))
        return left

    def parse_or(self, bound: "dict[str, fol.Sort]") -> fol.FolFormula:
        left = self.parse_and(bound)
        while self.peek() == "|":
            self.pop()
            left = fol.FolOr(left, self.parse_and(bound))
        return left

    def parse_and(self, bound: "dict[str, fol.Sort]") -> fol.FolFormula:
        left = self.parse_unary(bound)
        while self.peek() == "&":
            self.pop()
            left = fol.FolAnd(left, self.parse_unary(bound))
        return left

    def parse_unary(self, bound: "dict[str, fol.Sort]") -> fol.FolFormula:
        token = self.peek()
        if token in ("~", "!"):
            self.pop()
            return fol.FolNot(self.parse_unary(bound))
        if token == "(":
            self.pop()
            inner = self.parse_formula(bound)
            self.expect(")")
            return inner
        if token in ("forall", "exists"):
            self.pop()
            var_name = self.name()
            self.expect(":")
            sort = self.sort_named(self.name())
            self.expect(".")
            body = self.parse_formula({**bound, var_name: sort})
            ctor = fol.ForAll if token == "forall" else fol.Exists
            return ctor(Var(var_name), sort, body)
        return self.parse_atom(bound)

    def parse_atom(self, bound: "dict[str, fol.Sort]") -> fol.FolFormula:
        name = self.name()
        if name in _FOL_RESERVED:
            raise ObligationSyntaxError(
                f"reserved word {name!r} cannot start a formula here"
            )
        args: "list[fol.Term]" = []
        if self.peek() == "(":
            self.pop()
            args.append(self.term(bound))
            while self.peek() == ",":
                self.pop()
                args.append(self.term(bound))
            self.expect(")")
        return fol.FolAtom(Atom(name, tuple(args)))

    def term(self, bound: "dict[str, fol.Sort]") -> "fol.Term":
        name = self.name()
        if name in bound:
            return Var(name)
        return Const(name)


def _parse_fol_body(
    body: str,
) -> "tuple[fol.Signature, list[fol.FolFormula], fol.FolFormula]":
    signature, axioms, conclusion = _FolParser(body).parse_spec()
    for formula in [*axioms, conclusion]:
        fol.sort_check(signature, formula)
    return signature, axioms, conclusion


# -- the other kinds ----------------------------------------------------------


def _parse_entails_body(body: str) -> "tuple[list[Formula], Formula]":
    left, sep, right = body.partition("|-")
    if not sep or "|-" in right:
        raise ObligationSyntaxError(
            "an entails obligation needs exactly one '|-'"
        )
    premise_texts = [p.strip() for p in left.split(";") if p.strip()]
    premises = [parse_prop(text) for text in premise_texts]
    conclusion = parse_prop(right)
    return premises, conclusion


def _parse_ltl_body(body: str) -> "tuple[LtlFormula, Trace]":
    formula_text, sep, trace_text = body.partition("@")
    if not sep or not trace_text.strip():
        raise ObligationSyntaxError(
            "an ltl obligation needs '<formula> @ <trace>'"
        )
    formula = parse_ltl(formula_text)
    states: "list[frozenset[str]]" = []
    for state_text in trace_text.split(";"):
        atoms = [
            atom for atom in state_text.replace(",", " ").split()
            if atom not in (".", "-")
        ]
        states.append(frozenset(atoms))
    return formula, states


def validate_obligation(obligation: Obligation) -> None:
    """Raise :class:`ObligationSyntaxError` if the body does not parse.

    The claim compiler calls this so authoring mistakes fail at
    compile time; at check time the same conditions surface as
    deterministic discharge failures instead (a rule must never
    raise).
    """
    try:
        if obligation.kind in ("sat", "valid"):
            parse_prop(obligation.body)
        elif obligation.kind == "entails":
            _parse_entails_body(obligation.body)
        elif obligation.kind == "fol":
            _parse_fol_body(obligation.body)
        elif obligation.kind == "ltl":
            _parse_ltl_body(obligation.body)
    except ObligationSyntaxError:
        raise
    except (ValueError, TypeError) as exc:
        raise ObligationSyntaxError(str(exc)) from exc


def discharge(obligation: Obligation) -> Optional[str]:
    """Run the bound proof; ``None`` on success, a failure detail else.

    Total and deterministic: malformed bodies come back as a
    ``malformed obligation`` detail rather than an exception, so a
    broken spec is a violation, not a crashed check.
    """
    try:
        return _prove(obligation)
    except (ValueError, TypeError, KeyError, RecursionError) as exc:
        return f"malformed obligation: {exc}"


def _prove(obligation: Obligation) -> Optional[str]:
    kind, body = obligation.kind, obligation.body
    if kind == "sat":
        if is_satisfiable(parse_prop(body)):
            return None
        return "formula is unsatisfiable"
    if kind == "valid":
        if is_valid(parse_prop(body)):
            return None
        return "formula is not valid"
    if kind == "entails":
        premises, conclusion = _parse_entails_body(body)
        if entails(premises, conclusion):
            return None
        return "premises do not entail the conclusion"
    if kind == "fol":
        signature, axioms, conclusion = _parse_fol_body(body)
        if fol.fol_entails(signature, axioms, conclusion):
            return None
        return "axioms do not entail the conclusion"
    if kind == "ltl":
        formula, trace = _parse_ltl_body(body)
        if holds(formula, trace):
            return None
        return "trace does not satisfy the formula"
    return f"unknown obligation kind {kind!r}"


# -- the result cache ---------------------------------------------------------


class ObligationCache:
    """Per-process discharge results keyed by (evidence, fingerprint).

    The fingerprint is a content hash, so an *edited* obligation misses
    the cache (and re-proves) while an untouched one hits.  Counters
    instrument the selective-re-proof contract: ``proofs_run`` is the
    number of actual prover invocations, ``hits`` the number of
    results served from cache.  Thread-safe; parallel worker processes
    each hold their own (initially empty) cache, which affects only
    performance — discharge is a pure function of the spec, so every
    mode reports identical violations.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._results: "dict[tuple[str, str], Optional[str]]" = {}
        self._proofs_run = 0
        self._hits = 0

    def result(self, evidence_id: str, obligation: Obligation) -> Optional[str]:
        """Cached failure detail (or ``None``) for one obligation."""
        key = (evidence_id, obligation.fingerprint)
        with self._lock:
            if key in self._results:
                self._hits += 1
                return self._results[key]
            self._proofs_run += 1
        detail = discharge(obligation)
        with self._lock:
            self._results[key] = detail
        return detail

    def counters(self) -> "tuple[int, int]":
        """``(proofs_run, hits)`` so far."""
        with self._lock:
            return self._proofs_run, self._hits

    def reset(self) -> None:
        with self._lock:
            self._results.clear()
            self._proofs_run = 0
            self._hits = 0


CACHE = ObligationCache()


def obligation_counters() -> "tuple[int, int]":
    """``(proofs_run, cache_hits)`` for this process's cache."""
    return CACHE.counters()


def reset_obligation_cache() -> None:
    """Forget all cached discharge results and zero the counters."""
    CACHE.reset()


# -- the scoped rule ----------------------------------------------------------


def obligation_specs(node: Node) -> "tuple[str, ...]":
    """The obligation spec strings a node carries (possibly empty)."""
    return _obligation_specs(node)


def _obligation_specs(node: Node) -> "tuple[str, ...]":
    values: "tuple[object, ...]" = ()
    for key, entry in node.metadata:
        if key == OBLIGATION_KEY:
            values = tuple(entry)
    return tuple(str(spec) for spec in values)


def _obligation_violations(
    identifier: str, specs: "tuple[str, ...]"
) -> "list[Violation]":
    out: "list[Violation]" = []
    for spec in specs:
        try:
            obligation = parse_obligation(spec)
        except ObligationSyntaxError as exc:
            out.append(Violation(
                OBLIGATION_RULE_NAME, identifier,
                f"{spec}: malformed obligation: {exc}",
            ))
            continue
        detail = CACHE.result(identifier, obligation)
        if detail is not None:
            out.append(Violation(
                OBLIGATION_RULE_NAME, identifier,
                f"{obligation.spec}: {detail}",
            ))
    return out


def _rule_obligations(node: Node, ctx: RuleContext) -> "list[Violation]":
    """Every obligation bound to this node must discharge."""
    specs = _obligation_specs(node)
    if not specs:
        return []
    return _obligation_violations(node.identifier, specs)


#: The shipped discharge rule: per-node scope, so streaming never
#: hydrates, parallel workers prove their own shards, and the
#: incremental checker re-proves exactly the nodes an edit touched.
OBLIGATION_RULE: ScopedRule = per_node(
    OBLIGATION_RULE_NAME,
    "formal obligations bound to a node must discharge via repro.logic "
    "(SAT / propositional entailment / finite-domain FOL / LTL)",
    _rule_obligations,
)
