"""The shipped exemplar claim module (the claims kernel).

One small braking-system module exercising every construct of the
language — each rule template, each claim flag, and all five
obligation kinds — plus a matching argument.  It serves three
masters: the import-time audit gate registers its compiled rule set
(:data:`KERNEL_CLAIMS_RULES`), the tests use it as a known-clean
fixture, and ``examples/claims_demo.py`` walks it through an edit →
selective re-proof cycle.
"""

from __future__ import annotations

from functools import lru_cache

from ..core.argument import Argument, LinkKind
from ..core.nodes import Node, NodeType
from ..core.wellformed import GSN_STANDARD_RULES, RuleSet
from .compiler import CompiledClaims
from .lang import ClaimModule, parse_module
from .obligations import OBLIGATION_RULE

__all__ = [
    "EXEMPLAR_SOURCE",
    "exemplar_module",
    "exemplar_claims",
    "exemplar_argument",
    "GSN_OBLIGATION_RULES",
    "KERNEL_CLAIMS_RULES",
]

EXEMPLAR_SOURCE = '''\
# The claims kernel: a braking-system module exercising the whole
# language.  Kept deliberately small; see repro.claims.lang for the
# grammar.
module braking-kernel

claim G1 "The braking system is acceptably safe" supported
claim G2 "Residual braking hazards are acceptable" supported
claim G3 "Future braking modes are covered" undeveloped

rule goals-cite-support require supported goal
rule no-undev-strategy  forbid undeveloped strategy
rule evidence-is-leaf   forbid link supported_by solution -> goal
rule names-the-system   require mention goal "braking"
rule no-cycles          require acyclic
rule one-root           require single_root

evidence Sn1 sat     "wheel_sensor & (wheel_sensor -> brake_cmd)"
evidence Sn1 valid   "brake_cmd -> brake_cmd"
evidence Sn2 entails "brake_cmd -> decel ; brake_cmd |- decel"
evidence Sn2 fol     "sort Hazard = h_skid, h_fade ; pred Mitigated(Hazard) ; axiom forall h:Hazard. Mitigated(h) |- Mitigated(h_skid)"
evidence Sn3 ltl     "G (brake -> F stopped) @ brake ; brake stopped ; stopped"
'''


@lru_cache(maxsize=1)
def exemplar_module() -> ClaimModule:
    """The parsed kernel module (cached)."""
    return parse_module(EXEMPLAR_SOURCE)


@lru_cache(maxsize=1)
def exemplar_claims() -> CompiledClaims:
    """The compiled kernel (cached).

    Compiled with ``audit=False`` to keep ``import repro`` light; the
    same rule set is registered in the PR 6 import-time gate
    (:mod:`repro.analysis_static.gate`), which audits it for real.
    """
    return exemplar_module().compile(audit=False)


def exemplar_argument(*, apply_bindings: bool = True) -> Argument:
    """A fresh argument satisfying the kernel module.

    ``apply_bindings=False`` leaves the obligation metadata off, for
    tests that want to stamp (or corrupt) it themselves.
    """
    argument = Argument("braking-kernel")
    argument.add_nodes([
        Node("G1", NodeType.GOAL,
             "The braking system is acceptably safe"),
        Node("S1", NodeType.STRATEGY,
             "Argue over residual hazards and future modes"),
        Node("G2", NodeType.GOAL,
             "Residual braking hazards are acceptable"),
        Node("G3", NodeType.GOAL,
             "Future braking modes are covered", undeveloped=True),
        Node("Sn1", NodeType.SOLUTION, "Wheel-sensor bench report"),
        Node("Sn2", NodeType.SOLUTION, "Deceleration analysis AN-12"),
        Node("Sn3", NodeType.SOLUTION, "Braking trace review TR-7"),
        Node("C1", NodeType.CONTEXT, "Operating on paved roads"),
    ])
    argument.add_links([
        ("G1", "S1", LinkKind.SUPPORTED_BY),
        ("S1", "G2", LinkKind.SUPPORTED_BY),
        ("S1", "G3", LinkKind.SUPPORTED_BY),
        ("G2", "Sn1", LinkKind.SUPPORTED_BY),
        ("G2", "Sn2", LinkKind.SUPPORTED_BY),
        ("G1", "Sn3", LinkKind.SUPPORTED_BY),
        ("G1", "C1", LinkKind.IN_CONTEXT_OF),
    ])
    if apply_bindings:
        exemplar_claims().apply(argument)
    return argument


#: GSN standard well-formedness plus obligation discharge — the
#: default rule set wherever obligations should be live (the service,
#: the invariant harness) without compiling a claim module.
GSN_OBLIGATION_RULES = RuleSet(
    "gsn-standard+obligations",
    GSN_STANDARD_RULES.rules + (OBLIGATION_RULE,),
)

#: The compiled kernel's rule set, registered in the import-time gate.
KERNEL_CLAIMS_RULES = exemplar_claims().rule_set
