"""Lowering claim modules onto the scoped rule engine.

``compile_module`` turns a parsed :class:`~repro.claims.lang
.ClaimModule` into a :class:`CompiledClaims`: an audited
:class:`~repro.core.wellformed.RuleSet` (claims + declared rules +
the obligation discharge rule) plus the evidence bindings.  Every
emitted rule is a ``functools.partial`` of a module-level template
(:mod:`repro.claims.templates`), which keeps compiled sets picklable
for the parallel executor and auditable by the PR 6 static gate —
the gate registers the shipped claim rule sets and
``assert_shipped_clean()`` fails the import if a template ever drifts
off its declared scope surface.

Obligation bodies are validated at compile time
(:func:`~repro.claims.obligations.validate_obligation`), so authoring
mistakes fail fast; at check time discharge is total and its results
are cached per (evidence id, fingerprint).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Mapping

from ..core.analysis import ScopedRule, global_rule, per_link, per_node
from ..core.argument import Argument
from ..core.wellformed import RuleSet
from . import templates as tpl
from .lang import (
    ClaimModule,
    ForbidLink,
    ForbidUndeveloped,
    RequireAcyclic,
    RequireMention,
    RequireSingleRoot,
    RequireSupported,
    RuleDecl,
)
from .obligations import (
    OBLIGATION_KEY,
    OBLIGATION_RULE,
    Obligation,
    ObligationSyntaxError,
    parse_obligation,
    validate_obligation,
)

__all__ = ["ClaimCompileError", "CompiledClaims", "compile_module"]


class ClaimCompileError(ValueError):
    """A claim module that parses but cannot be lowered soundly."""


@dataclass(frozen=True)
class CompiledClaims:
    """A lowered claim module: rule set + evidence obligation bindings.

    ``rule_set`` plugs into everything that takes a
    :class:`~repro.core.wellformed.RuleSet` — ``repro.check``, the
    incremental checkers, the service.  ``bindings`` maps node
    identifiers to the obligation spec strings their evidence
    declarations bind; :meth:`apply` stamps them onto an argument's
    node metadata so they persist with the case.
    """

    module: ClaimModule
    rule_set: RuleSet
    bindings: "Mapping[str, tuple[str, ...]]"

    @property
    def name(self) -> str:
        return self.module.name

    def obligations(self) -> "tuple[tuple[str, Obligation], ...]":
        """All (evidence id, parsed obligation) pairs, binding order."""
        out: "list[tuple[str, Obligation]]" = []
        for identifier, specs in self.bindings.items():
            for spec in specs:
                out.append((identifier, parse_obligation(spec)))
        return tuple(out)

    def apply(self, argument: Argument) -> int:
        """Stamp the evidence bindings onto *argument*'s metadata.

        Returns the number of nodes annotated.  Nodes the module
        names but the argument lacks are skipped — the compiled
        presence rule reports them as violations instead.
        """
        count = 0
        with argument.batch():
            for identifier, specs in self.bindings.items():
                if identifier not in argument:
                    continue
                node = argument.node(identifier)
                argument.replace_node(
                    node.with_metadata({OBLIGATION_KEY: specs})
                )
                count += 1
        return count


def _compile_rule(decl: RuleDecl) -> ScopedRule:
    if isinstance(decl, ForbidUndeveloped):
        return per_node(
            decl.name,
            f"forbid undeveloped {decl.node_type.value}",
            partial(tpl._tpl_forbid_undeveloped, decl.name),
            node_types=(decl.node_type,),
        )
    if isinstance(decl, RequireSupported):
        return per_node(
            decl.name,
            f"require supported {decl.node_type.value}",
            partial(tpl._tpl_require_supported, decl.name),
            node_types=(decl.node_type,),
        )
    if isinstance(decl, ForbidLink):
        return per_link(
            decl.name,
            f"forbid link {decl.kind.value} {decl.source_type.value} "
            f"-> {decl.target_type.value}",
            partial(
                tpl._tpl_forbid_link, decl.name,
                decl.source_type, decl.target_type,
            ),
            kind=decl.kind,
        )
    if isinstance(decl, RequireMention):
        return per_node(
            decl.name,
            f"require mention {decl.node_type.value} {decl.needle!r}",
            partial(tpl._tpl_require_mention, decl.name, decl.needle),
            node_types=(decl.node_type,),
        )
    if isinstance(decl, RequireAcyclic):
        return global_rule(
            decl.name,
            "require acyclic support",
            partial(tpl._tpl_acyclic, decl.name),
        )
    if isinstance(decl, RequireSingleRoot):
        return global_rule(
            decl.name,
            "require a single root claim",
            partial(tpl._tpl_single_root, decl.name),
        )
    raise ClaimCompileError(f"unknown rule declaration {decl!r}")


def _builtin_rules(module: ClaimModule) -> "list[ScopedRule]":
    """The rules every module implies from its claim declarations."""
    rules: "list[ScopedRule]" = []
    claim_ids = tuple(c.identifier for c in module.claims)
    if claim_ids:
        rules.append(global_rule(
            "claims-present",
            "every declared claim exists and is claim-like",
            partial(tpl._tpl_declared_present, "claims-present",
                    claim_ids, True),
        ))
        texts = {c.identifier: c.text for c in module.claims}
        rules.append(per_node(
            "claim-text",
            "claim node text matches its declaration",
            partial(tpl._tpl_claim_text, "claim-text", texts),
        ))
    supported = frozenset(
        c.identifier for c in module.claims if c.supported
    )
    if supported:
        rules.append(per_node(
            "claim-supported",
            "claims declared supported cite support",
            partial(tpl._tpl_claim_supported, "claim-supported",
                    supported),
        ))
    undeveloped = frozenset(
        c.identifier for c in module.claims if c.undeveloped
    )
    if undeveloped:
        rules.append(per_node(
            "claim-undeveloped",
            "claims declared undeveloped carry the marker",
            partial(tpl._tpl_claim_undeveloped, "claim-undeveloped",
                    undeveloped),
        ))
    evidence_ids = tuple(dict.fromkeys(
        e.identifier for e in module.evidence
        if e.identifier not in claim_ids
    ))
    if evidence_ids:
        rules.append(global_rule(
            "evidence-present",
            "every node named by an evidence declaration exists",
            partial(tpl._tpl_declared_present, "evidence-present",
                    evidence_ids, False),
        ))
    return rules


def compile_module(
    module: ClaimModule, *, audit: bool = True
) -> CompiledClaims:
    """Lower *module* to a :class:`CompiledClaims`.

    ``audit=True`` (the default) runs the PR 6 rule-scope auditor over
    the emitted rule set and raises :class:`ClaimCompileError` on any
    hard finding — a compiled module is only shipped if it provably
    keeps the locality contract.
    """
    for decl in module.evidence:
        try:
            validate_obligation(parse_obligation(decl.spec))
        except ObligationSyntaxError as exc:
            raise ClaimCompileError(
                f"evidence {decl.identifier} (line {decl.line}): {exc}"
            ) from exc
    rules = _builtin_rules(module)
    rules.extend(_compile_rule(decl) for decl in module.rules)
    rules.append(OBLIGATION_RULE)
    rule_set = RuleSet(f"claims:{module.name}", tuple(rules))
    if audit:
        from ..analysis_static.auditor import errors_only

        errors = errors_only(rule_set.audit())
        if errors:
            listing = "; ".join(str(f) for f in errors)
            raise ClaimCompileError(
                f"compiled rule set fails the static audit: {listing}"
            )
    bindings: "dict[str, tuple[str, ...]]" = {}
    for decl in module.evidence:
        bindings[decl.identifier] = (
            bindings.get(decl.identifier, ()) + (decl.spec,)
        )
    return CompiledClaims(module, rule_set, bindings)
