"""Declarative claim language with machine-checked evidence bindings.

The paper asks whether formal assurance arguments pay their way; this
package makes the question measurable.  A **claim module**
(:mod:`repro.claims.lang`) declares claims, structural rules, and
evidence obligations in a small Resolute-style text language; the
compiler (:mod:`repro.claims.compiler`) lowers it onto the PR 4
scoped-rule engine (audited by the PR 6 static gate); and the
obligation layer (:mod:`repro.claims.obligations`) binds evidence
nodes to SAT / propositional-entailment / finite-domain-FOL / LTL
problems discharged by :mod:`repro.logic` in every execution mode —
with per-(evidence, fingerprint) caching so the incremental checker
re-proves exactly what an edit touched.

Typical use::

    import repro

    module = repro.ClaimModule.parse(source_text)
    compiled = module.compile()
    compiled.apply(argument)            # stamp obligation bindings
    report = repro.check(argument, rules=compiled.rule_set)
"""

from .compiler import ClaimCompileError, CompiledClaims, compile_module
from .exemplar import (
    EXEMPLAR_SOURCE,
    GSN_OBLIGATION_RULES,
    KERNEL_CLAIMS_RULES,
    exemplar_argument,
    exemplar_claims,
    exemplar_module,
)
from .lang import (
    ClaimDecl,
    ClaimModule,
    ClaimSyntaxError,
    EvidenceDecl,
    parse_module,
)
from .obligations import (
    OBLIGATION_KEY,
    OBLIGATION_RULE,
    OBLIGATION_RULE_NAME,
    Obligation,
    ObligationSyntaxError,
    discharge,
    obligation_counters,
    obligation_specs,
    parse_obligation,
    reset_obligation_cache,
    validate_obligation,
)

__all__ = [
    "ClaimModule",
    "ClaimDecl",
    "EvidenceDecl",
    "ClaimSyntaxError",
    "parse_module",
    "CompiledClaims",
    "ClaimCompileError",
    "compile_module",
    "Obligation",
    "ObligationSyntaxError",
    "parse_obligation",
    "validate_obligation",
    "discharge",
    "obligation_counters",
    "obligation_specs",
    "reset_obligation_cache",
    "OBLIGATION_KEY",
    "OBLIGATION_RULE",
    "OBLIGATION_RULE_NAME",
    "EXEMPLAR_SOURCE",
    "exemplar_module",
    "exemplar_claims",
    "exemplar_argument",
    "GSN_OBLIGATION_RULES",
    "KERNEL_CLAIMS_RULES",
]
