"""Rule templates the claim compiler instantiates.

Every template is a **module-level** function whose leading parameters
are the compiled declaration's constants and whose trailing parameters
are the scoped-rule signature (``(node, ctx)`` / ``(link, ctx)`` /
``(ctx)``).  The compiler binds the constants with
``functools.partial`` — module-level functions partially applied with
picklable constants stay picklable, so compiled rule sets run under
the parallel executor unchanged, and the static auditor unwraps the
partial to audit the template body itself.

Templates obey the scope surface table
(:data:`repro.core.analysis.SCOPE_SURFACE`): per-node templates touch
only their node and ``ctx.cites_support``; per-link templates only
endpoint types; global templates the declared whole-graph helpers.
That is what makes every compiled claim module pass the PR 6 audit
gate and behave identically in all four execution modes.
"""

from __future__ import annotations

from ..core.analysis import RuleContext, Violation
from ..core.argument import ArgumentError, Link
from ..core.nodes import Node, NodeType

__all__ = [
    "_tpl_declared_present",
    "_tpl_claim_text",
    "_tpl_claim_supported",
    "_tpl_claim_undeveloped",
    "_tpl_forbid_undeveloped",
    "_tpl_require_supported",
    "_tpl_forbid_link",
    "_tpl_require_mention",
    "_tpl_acyclic",
    "_tpl_single_root",
]


def _tpl_declared_present(
    rule_name: str,
    entries: "tuple[str, ...]",
    claim_like: bool,
    ctx: RuleContext,
) -> "list[Violation]":
    """Every declared identifier must exist (claims must be claim-like).

    Global scope: presence is a whole-graph question.  ``entries`` is a
    tuple, so iteration order is the declaration order — deterministic.
    """
    out: "list[Violation]" = []
    for identifier in entries:
        try:
            node_type = ctx.node_type(identifier)
        except (KeyError, ArgumentError):
            out.append(Violation(
                rule_name, identifier,
                "declared in the claim module but missing from the "
                "argument",
            ))
            continue
        if claim_like and not node_type.is_claim_like:
            out.append(Violation(
                rule_name, identifier,
                f"declared as a claim but the node is a "
                f"{node_type.value}",
            ))
    return out


def _tpl_claim_text(
    rule_name: str,
    texts: "dict[str, str]",
    node: Node,
    ctx: RuleContext,
) -> "list[Violation]":
    """A claim node's text must match its declaration."""
    expected = texts.get(node.identifier)
    if expected is None or node.text == expected:
        return []
    return [Violation(
        rule_name, node.identifier,
        f"text diverged from the declared claim (expected "
        f"{expected!r})",
    )]


def _tpl_claim_supported(
    rule_name: str,
    required: "frozenset[str]",
    node: Node,
    ctx: RuleContext,
) -> "list[Violation]":
    """A claim declared ``supported`` must cite support."""
    if node.identifier not in required:
        return []
    if ctx.cites_support(node.identifier):
        return []
    return [Violation(
        rule_name, node.identifier,
        "declared supported but cites no support",
    )]


def _tpl_claim_undeveloped(
    rule_name: str,
    required: "frozenset[str]",
    node: Node,
    ctx: RuleContext,
) -> "list[Violation]":
    """A claim declared ``undeveloped`` must carry the marker."""
    if node.identifier not in required or node.undeveloped:
        return []
    return [Violation(
        rule_name, node.identifier,
        "declared undeveloped but not marked so",
    )]


def _tpl_forbid_undeveloped(
    rule_name: str,
    node: Node,
    ctx: RuleContext,
) -> "list[Violation]":
    """``forbid undeveloped <type>`` — no such node may be undeveloped."""
    if not node.undeveloped:
        return []
    return [Violation(
        rule_name, node.identifier,
        f"a {node.node_type.value} may not be left undeveloped here",
    )]


def _tpl_require_supported(
    rule_name: str,
    node: Node,
    ctx: RuleContext,
) -> "list[Violation]":
    """``require supported <type>`` — developed nodes must cite support."""
    if node.undeveloped or ctx.cites_support(node.identifier):
        return []
    return [Violation(
        rule_name, node.identifier,
        f"a {node.node_type.value} must cite support",
    )]


def _tpl_forbid_link(
    rule_name: str,
    source_type: NodeType,
    target_type: NodeType,
    link: Link,
    ctx: RuleContext,
) -> "list[Violation]":
    """``forbid link <kind> <src> -> <dst>`` — per-link, endpoint types only."""
    if ctx.node_type(link.source) is not source_type:
        return []
    if ctx.node_type(link.target) is not target_type:
        return []
    return [Violation(
        rule_name, str(link),
        f"{source_type.value} -> {target_type.value} connections are "
        f"forbidden",
    )]


def _tpl_require_mention(
    rule_name: str,
    needle: str,
    node: Node,
    ctx: RuleContext,
) -> "list[Violation]":
    """``require mention <type> "needle"`` — text must contain the phrase."""
    if needle.lower() in node.text.lower():
        return []
    return [Violation(
        rule_name, node.identifier,
        f"text must mention {needle!r}",
    )]


def _tpl_acyclic(rule_name: str, ctx: RuleContext) -> "list[Violation]":
    """``require acyclic`` — the support relation has no cycles."""
    cycle = ctx.find_cycle()
    if cycle is None:
        return []
    return [Violation(
        rule_name, " -> ".join(cycle),
        "support chain forms a cycle",
    )]


def _tpl_single_root(rule_name: str, ctx: RuleContext) -> "list[Violation]":
    """``require single_root`` — exactly one root claim."""
    roots = ctx.roots()
    if len(roots) == 1:
        return []
    if not roots:
        return [Violation(rule_name, ctx.name, "argument has no root claim")]
    names = ", ".join(roots)
    return [Violation(
        rule_name, ctx.name,
        f"argument has {len(roots)} root claims ({names})",
    )]
