"""The declarative claim language: surface syntax and typed AST.

Following Resolute (Gacek et al.), a **claim module** is a small text
artifact declaring what the assurance argument must say (claims), what
shape it must have (rules), and which formal problems its evidence
must discharge (evidence obligations).  The compiler
(:mod:`repro.claims.compiler`) lowers a parsed module onto the scoped
rule engine, so a module is checked by the same four execution modes
as any hand-written rule set.

Surface syntax — line-oriented, ``#`` comments, double-quoted strings::

    module braking-system

    claim G1 "The braking system is acceptably safe" supported
    claim G2 "Software commands braking correctly" undeveloped

    rule no-free-goals      require supported goal
    rule no-undev-strategy  forbid undeveloped strategy
    rule evidence-is-leaf   forbid link supported_by solution -> goal
    rule names-the-hazard   require mention goal "braking"
    rule no-cycles          require acyclic
    rule one-root           require single_root

    evidence Sn1 sat "wheel_speed & (wheel_speed -> brake_ok)"
    evidence Sn2 ltl "G (brake -> F stopped) @ brake ; brake stopped ; stopped"

``claim`` flags: ``supported`` (must cite support) and ``undeveloped``
(must carry the undeveloped marker).  Node types and link kinds use
their :class:`~repro.core.nodes.NodeType` /
:class:`~repro.core.argument.LinkKind` value spelling (``goal``,
``strategy``, ``solution``, ``supported_by``, ...).  Evidence kinds
are the obligation kinds of :mod:`repro.claims.obligations`.
"""

from __future__ import annotations

import shlex
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Union

from ..core.argument import LinkKind
from ..core.nodes import NodeType
from .obligations import OBLIGATION_KINDS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .compiler import CompiledClaims

__all__ = [
    "ClaimSyntaxError",
    "ClaimDecl",
    "EvidenceDecl",
    "ForbidUndeveloped",
    "RequireSupported",
    "ForbidLink",
    "RequireMention",
    "RequireAcyclic",
    "RequireSingleRoot",
    "RuleDecl",
    "ClaimModule",
    "parse_module",
]


class ClaimSyntaxError(ValueError):
    """A claim module that cannot be parsed; carries the line number."""

    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


@dataclass(frozen=True)
class ClaimDecl:
    """``claim <id> "<text>" [supported] [undeveloped]``"""

    identifier: str
    text: str
    supported: bool = False
    undeveloped: bool = False
    line: int = 0


@dataclass(frozen=True)
class EvidenceDecl:
    """``evidence <id> <kind> "<spec body>"`` — one bound obligation."""

    identifier: str
    kind: str
    body: str
    line: int = 0

    @property
    def spec(self) -> str:
        """The obligation spec string this declaration binds."""
        return f"{self.kind}: {self.body}"


@dataclass(frozen=True)
class ForbidUndeveloped:
    """``rule <name> forbid undeveloped <type>``"""

    name: str
    node_type: NodeType
    line: int = 0


@dataclass(frozen=True)
class RequireSupported:
    """``rule <name> require supported <type>``"""

    name: str
    node_type: NodeType
    line: int = 0


@dataclass(frozen=True)
class ForbidLink:
    """``rule <name> forbid link <kind> <src-type> -> <dst-type>``"""

    name: str
    kind: LinkKind
    source_type: NodeType
    target_type: NodeType
    line: int = 0


@dataclass(frozen=True)
class RequireMention:
    """``rule <name> require mention <type> "<needle>"``"""

    name: str
    node_type: NodeType
    needle: str
    line: int = 0


@dataclass(frozen=True)
class RequireAcyclic:
    """``rule <name> require acyclic``"""

    name: str
    line: int = 0


@dataclass(frozen=True)
class RequireSingleRoot:
    """``rule <name> require single_root``"""

    name: str
    line: int = 0


RuleDecl = Union[
    ForbidUndeveloped,
    RequireSupported,
    ForbidLink,
    RequireMention,
    RequireAcyclic,
    RequireSingleRoot,
]


@dataclass(frozen=True)
class ClaimModule:
    """One parsed claim module: claims, rules, evidence bindings."""

    name: str
    claims: "tuple[ClaimDecl, ...]" = ()
    rules: "tuple[RuleDecl, ...]" = ()
    evidence: "tuple[EvidenceDecl, ...]" = ()

    @classmethod
    def parse(cls, text: str) -> "ClaimModule":
        """Parse claim-language source text into a module."""
        return parse_module(text)

    def compile(self, *, audit: bool = True) -> "CompiledClaims":
        """Lower to scoped rules; see :func:`repro.claims.compiler
        .compile_module`."""
        from .compiler import compile_module

        return compile_module(self, audit=audit)

    def claim(self, identifier: str) -> ClaimDecl:
        """The claim declared under *identifier* (KeyError if absent)."""
        for decl in self.claims:
            if decl.identifier == identifier:
                return decl
        raise KeyError(identifier)


def _node_type(token: str, line: int) -> NodeType:
    try:
        return NodeType(token)
    except ValueError:
        values = ", ".join(t.value for t in NodeType)
        raise ClaimSyntaxError(
            f"unknown node type {token!r} (expected one of {values})",
            line,
        ) from None


def _link_kind(token: str, line: int) -> LinkKind:
    try:
        return LinkKind(token)
    except ValueError:
        values = ", ".join(k.value for k in LinkKind)
        raise ClaimSyntaxError(
            f"unknown link kind {token!r} (expected one of {values})",
            line,
        ) from None


def _split(raw: str, line: int) -> "list[str]":
    lexer = shlex.shlex(raw, posix=True)
    lexer.whitespace_split = True
    lexer.commenters = "#"
    try:
        return list(lexer)
    except ValueError as exc:
        raise ClaimSyntaxError(str(exc), line) from None


@dataclass
class _Parser:
    claims: "list[ClaimDecl]" = field(default_factory=list)
    rules: "list[RuleDecl]" = field(default_factory=list)
    evidence: "list[EvidenceDecl]" = field(default_factory=list)
    module_name: "str | None" = None

    def parse(self, text: str) -> ClaimModule:
        for lineno, raw in enumerate(text.splitlines(), start=1):
            tokens = _split(raw, lineno)
            if not tokens:
                continue
            keyword, rest = tokens[0], tokens[1:]
            if keyword == "module":
                self._module(rest, lineno)
            elif keyword == "claim":
                self._claim(rest, lineno)
            elif keyword == "rule":
                self._rule(rest, lineno)
            elif keyword == "evidence":
                self._evidence(rest, lineno)
            else:
                raise ClaimSyntaxError(
                    f"expected 'module', 'claim', 'rule', or "
                    f"'evidence', got {keyword!r}", lineno,
                )
        if self.module_name is None:
            raise ClaimSyntaxError(
                "a claim module must open with 'module <name>'", 0,
            )
        return ClaimModule(
            self.module_name,
            tuple(self.claims),
            tuple(self.rules),
            tuple(self.evidence),
        )

    def _module(self, rest: "list[str]", line: int) -> None:
        if self.module_name is not None:
            raise ClaimSyntaxError("duplicate 'module' line", line)
        if len(rest) != 1:
            raise ClaimSyntaxError("usage: module <name>", line)
        self.module_name = rest[0]

    def _require_header(self, line: int) -> None:
        if self.module_name is None:
            raise ClaimSyntaxError(
                "the 'module <name>' line must come first", line,
            )

    def _claim(self, rest: "list[str]", line: int) -> None:
        self._require_header(line)
        if len(rest) < 2:
            raise ClaimSyntaxError(
                'usage: claim <id> "<text>" [supported] [undeveloped]',
                line,
            )
        identifier, text, flags = rest[0], rest[1], rest[2:]
        if any(c.identifier == identifier for c in self.claims):
            raise ClaimSyntaxError(
                f"duplicate claim {identifier!r}", line,
            )
        supported = undeveloped = False
        for flag in flags:
            if flag == "supported":
                supported = True
            elif flag == "undeveloped":
                undeveloped = True
            else:
                raise ClaimSyntaxError(
                    f"unknown claim flag {flag!r} (expected "
                    f"'supported' or 'undeveloped')", line,
                )
        self.claims.append(
            ClaimDecl(identifier, text, supported, undeveloped, line)
        )

    def _rule(self, rest: "list[str]", line: int) -> None:
        self._require_header(line)
        if len(rest) < 2:
            raise ClaimSyntaxError(
                "usage: rule <name> require|forbid ...", line,
            )
        name, verb, args = rest[0], rest[1], rest[2:]
        if any(r.name == name for r in self.rules):
            raise ClaimSyntaxError(f"duplicate rule {name!r}", line)
        if verb == "forbid":
            self._forbid(name, args, line)
        elif verb == "require":
            self._require(name, args, line)
        else:
            raise ClaimSyntaxError(
                f"expected 'require' or 'forbid', got {verb!r}", line,
            )

    def _forbid(self, name: str, args: "list[str]", line: int) -> None:
        if len(args) == 2 and args[0] == "undeveloped":
            self.rules.append(ForbidUndeveloped(
                name, _node_type(args[1], line), line,
            ))
        elif len(args) == 5 and args[0] == "link" and args[3] == "->":
            self.rules.append(ForbidLink(
                name,
                _link_kind(args[1], line),
                _node_type(args[2], line),
                _node_type(args[4], line),
                line,
            ))
        else:
            raise ClaimSyntaxError(
                "usage: rule <name> forbid undeveloped <type> | "
                "forbid link <kind> <type> -> <type>", line,
            )

    def _require(self, name: str, args: "list[str]", line: int) -> None:
        if len(args) == 2 and args[0] == "supported":
            self.rules.append(RequireSupported(
                name, _node_type(args[1], line), line,
            ))
        elif len(args) == 3 and args[0] == "mention":
            self.rules.append(RequireMention(
                name, _node_type(args[1], line), args[2], line,
            ))
        elif args == ["acyclic"]:
            self.rules.append(RequireAcyclic(name, line))
        elif args == ["single_root"]:
            self.rules.append(RequireSingleRoot(name, line))
        else:
            raise ClaimSyntaxError(
                "usage: rule <name> require supported <type> | "
                'require mention <type> "<needle>" | require acyclic '
                "| require single_root", line,
            )

    def _evidence(self, rest: "list[str]", line: int) -> None:
        self._require_header(line)
        if len(rest) != 3:
            raise ClaimSyntaxError(
                'usage: evidence <id> <kind> "<spec body>"', line,
            )
        identifier, kind, body = rest
        if kind not in OBLIGATION_KINDS:
            kinds = ", ".join(OBLIGATION_KINDS)
            raise ClaimSyntaxError(
                f"unknown evidence kind {kind!r} (expected one of "
                f"{kinds})", line,
            )
        self.evidence.append(EvidenceDecl(identifier, kind, body, line))


def parse_module(text: str) -> ClaimModule:
    """Parse claim-language source text into a :class:`ClaimModule`."""
    return _Parser().parse(text)
