"""One-call verification of every reproduced claim in the paper.

:func:`verify_reproduction` re-derives each measurable artefact —
Table I, Figure 1, the §III–V counts, the Greenwell distribution, the
Haley proof — and returns a :class:`ReproductionReport` listing every
claim with its expected and measured values.  ``report.ok`` is True only
when everything agrees.  The README's 'what reproduction means here'
section is this function, executable::

    from repro.paper import verify_reproduction
    report = verify_reproduction()
    assert report.ok
    print(report.render())
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any

__all__ = ["ClaimCheck", "ReproductionReport", "verify_reproduction"]


@dataclass(frozen=True)
class ClaimCheck:
    """One verified claim: what the paper says vs what we measure."""

    claim: str
    expected: Any
    measured: Any

    @property
    def ok(self) -> bool:
        return self.expected == self.measured

    def __str__(self) -> str:
        mark = "OK " if self.ok else "FAIL"
        return (
            f"[{mark}] {self.claim}: expected {self.expected!r}, "
            f"measured {self.measured!r}"
        )


@dataclass(frozen=True)
class ReproductionReport:
    """All claim checks, with an overall verdict."""

    checks: tuple[ClaimCheck, ...]

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    def failures(self) -> list[ClaimCheck]:
        return [check for check in self.checks if not check.ok]

    def render(self) -> str:
        lines = ["REPRODUCTION REPORT", ""]
        lines.extend(str(check) for check in self.checks)
        lines.append("")
        verdict = "ALL CLAIMS REPRODUCE" if self.ok else (
            f"{len(self.failures())} CLAIM(S) FAIL"
        )
        lines.append(verdict)
        return "\n".join(lines) + "\n"


def verify_reproduction(seed: int = 2014) -> ReproductionReport:
    """Re-derive and check every measurable claim of the paper."""
    checks: list[ClaimCheck] = []

    # --- Table I --------------------------------------------------------
    from .survey import TABLE_I, TABLE_I_UNIQUE, run_survey

    outcome = run_survey(seed=seed)
    checks.append(ClaimCheck(
        "Table I per-library phase-1 selections",
        {library: dict(cells) for library, cells in TABLE_I.items()},
        outcome.table(),
    ))
    checks.append(ClaimCheck(
        "Table I unique-results row",
        dict(TABLE_I_UNIQUE),
        outcome.unique_counts(),
    ))
    checks.append(ClaimCheck(
        "phase two yields twenty selected papers",
        20, len(outcome.phase2_keys),
    ))

    # --- §III-V in-text counts -----------------------------------------
    from .survey import (
        papers_claiming_mechanical_confidence,
        papers_formalising_content,
        papers_formalising_pattern_parameters,
        papers_formalising_pattern_structure,
        papers_formalising_syntax,
        papers_informal_first,
        papers_mentioning_mechanical_verification,
        SELECTED_PAPERS,
    )

    for claim, expected, measured in (
        ("six papers claim mechanical-validation confidence (§IV)",
         6, len(papers_claiming_mechanical_confidence())),
        ("four papers formalise syntax (§V.A)",
         4, len(papers_formalising_syntax())),
        ("eleven papers formalise content (§V.B)",
         11, len(papers_formalising_content())),
        ("four mention mechanical verification (§V.B)",
         4, len(papers_mentioning_mechanical_verification())),
        ("three propose informal-first (§VI.B)",
         3, len(papers_informal_first())),
        ("three formalise pattern structure (§VI.D)",
         3, len(papers_formalising_pattern_structure())),
        ("two formalise pattern parameters (§VI.D)",
         2, len(papers_formalising_pattern_parameters())),
        ("no paper supplies substantial evidence (§VII)",
         0, sum(p.provides_substantial_evidence
                for p in SELECTED_PAPERS)),
    ):
        checks.append(ClaimCheck(claim, expected, measured))

    # --- Figure 1 --------------------------------------------------------
    from .fallacies import desert_bank_equivocation
    from .fallacies.formal_detector import (
        FormalArgument, Verdict, detect,
    )
    from .logic.propositional import parse

    witness = desert_bank_equivocation()
    checks.append(ClaimCheck(
        "Figure 1 conclusion is formally derivable",
        True, witness.formally_derivable,
    ))
    checks.append(ClaimCheck(
        "Figure 1 conclusion is false in the world",
        False, witness.real_world_true,
    ))
    figure1_formal = FormalArgument(
        premises=(
            parse("desert_bank_is_a_bank"),
            parse("banks_are_adjacent_to_rivers"),
            parse("desert_bank_is_a_bank & banks_are_adjacent_to_rivers"
                  " -> desert_bank_adjacent_to_river"),
        ),
        conclusion=parse("desert_bank_adjacent_to_river"),
    )
    checks.append(ClaimCheck(
        "formal validation passes Figure 1 (equivocation invisible)",
        Verdict.VALID.value, detect(figure1_formal).verdict.value,
    ))

    # --- Greenwell findings ----------------------------------------------
    from .fallacies.taxonomy import (
        CATALOGUE, GREENWELL_FINDINGS, greenwell_total,
    )

    checks.append(ClaimCheck(
        "Greenwell total instances (§V.B)", 45, greenwell_total(),
    ))
    checks.append(ClaimCheck(
        "Greenwell kinds machine-detectable by formal verification",
        0,
        sum(1 for kind in GREENWELL_FINDINGS
            if CATALOGUE[kind].machine_detectable),
    ))
    checks.append(ClaimCheck(
        "Greenwell per-kind counts (§V.B a-g)",
        [3, 10, 2, 4, 5, 5, 16],
        list(GREENWELL_FINDINGS.values()),
    ))

    # --- the Haley proof --------------------------------------------------
    from .logic.natural_deduction import check_proof, haley_outer_proof

    proof = haley_outer_proof()
    checks.append(ClaimCheck(
        "Haley outer proof checks", True, check_proof(proof),
    ))
    checks.append(ClaimCheck(
        "Haley proof has eleven steps", 11, len(proof),
    ))
    checks.append(ClaimCheck(
        "Haley proof concludes D -> H",
        "(D -> H)", str(proof.conclusion),
    ))

    # --- detector completeness on Damer forms ----------------------------
    from .fallacies.injector import inject_formal
    from .fallacies.taxonomy import FormalFallacy

    rng = random.Random(seed)
    propositional = (
        FormalFallacy.BEGGING_THE_QUESTION,
        FormalFallacy.INCOMPATIBLE_PREMISES,
        FormalFallacy.PREMISE_CONCLUSION_CONTRADICTION,
        FormalFallacy.DENYING_THE_ANTECEDENT,
        FormalFallacy.AFFIRMING_THE_CONSEQUENT,
    )
    caught = sum(
        1 for fallacy in propositional
        if fallacy in detect(
            inject_formal(rng, fallacy).argument
        ).fallacies
    )
    checks.append(ClaimCheck(
        "mechanical detector catches every injected Damer form",
        len(propositional), caught,
    ))

    return ReproductionReport(tuple(checks))
