"""repro — a reproduction of Graydon, 'Formal Assurance Arguments: A
Solution In Search of a Problem?' (DSN 2015).

The library implements every system the paper reasons about:

* :mod:`repro.core` — the assurance-case model (GSN, CAE via
  :mod:`repro.notation`, Toulmin, evidence, patterns, views, queries);
* :mod:`repro.logic` — the formal substrates (propositional + SAT,
  natural deduction, sequents, resolution, mini-Prolog, multi-sorted FOL,
  LTL, Event Calculus, BBN confidence, syllogisms);
* :mod:`repro.fallacies` — the formal/informal fallacy taxonomy, the
  mechanical formal-fallacy detector, and the fallacy injector;
* :mod:`repro.formalise` — the surveyed formalisation proposals as
  working translators (Rushby, Basir/Denney, Brunel & Cazin, Haley et
  al., Tun et al.);
* :mod:`repro.survey` — the systematic literature survey pipeline that
  regenerates Table I;
* :mod:`repro.experiments` — the five §VI studies on simulated subjects;
* :mod:`repro.store` — the persistent sharded argument store (JSONL
  shards + checksummed manifest, streaming save, lazy/partial load).

Quickstart::

    from repro import ArgumentBuilder, desert_bank_program

    builder = ArgumentBuilder("demo")
    top = builder.goal("The system is acceptably safe")
    strategy = builder.strategy("Argument over identified hazards",
                                under=top)
    hazard = builder.goal("Hazard H1 is mitigated", under=strategy)
    builder.solution("Fault tree analysis FTA-1", under=hazard)
    argument = builder.build()

    # ... and the paper's Figure 1:
    program = desert_bank_program()
    assert program.provable("adjacent(desert_bank, river)")   # formally valid
    # ... yet false in the world: 'bank' equivocates.  (§IV.C)
"""

from .core import (
    Argument,
    ArgumentBuilder,
    AssuranceCase,
    EvidenceItem,
    EvidenceKind,
    IncrementalChecker,
    LinkKind,
    Node,
    NodeType,
    SafetyCriterion,
    check,
    is_well_formed,
    run_rules,
)
from .paper import ReproductionReport, verify_reproduction
from .logic import (
    ProofBuilder,
    check_proof,
    desert_bank_program,
    entails,
    haley_outer_proof,
)

__version__ = "1.0.0"

__all__ = [
    "Argument",
    "ArgumentBuilder",
    "AssuranceCase",
    "EvidenceItem",
    "EvidenceKind",
    "LinkKind",
    "Node",
    "NodeType",
    "SafetyCriterion",
    "IncrementalChecker",
    "check",
    "is_well_formed",
    "run_rules",
    "ProofBuilder",
    "check_proof",
    "desert_bank_program",
    "entails",
    "haley_outer_proof",
    "ReproductionReport",
    "verify_reproduction",
    "__version__",
]
