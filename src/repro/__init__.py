"""repro — a reproduction of Graydon, 'Formal Assurance Arguments: A
Solution In Search of a Problem?' (DSN 2015).

The library implements every system the paper reasons about:

* :mod:`repro.core` — the assurance-case model (GSN, CAE via
  :mod:`repro.notation`, Toulmin, evidence, patterns, views, queries);
* :mod:`repro.claims` — the declarative claim language: modules of
  claims, rules, and evidence obligations compiled onto the scoped
  rule engine, with SAT/FOL/LTL proofs discharged at check time;
* :mod:`repro.logic` — the formal substrates (propositional + SAT,
  natural deduction, sequents, resolution, mini-Prolog, multi-sorted FOL,
  LTL, Event Calculus, BBN confidence, syllogisms);
* :mod:`repro.fallacies` — the formal/informal fallacy taxonomy, the
  mechanical formal-fallacy detector, and the fallacy injector;
* :mod:`repro.formalise` — the surveyed formalisation proposals as
  working translators (Rushby, Basir/Denney, Brunel & Cazin, Haley et
  al., Tun et al.);
* :mod:`repro.survey` — the systematic literature survey pipeline that
  regenerates Table I;
* :mod:`repro.experiments` — the five §VI studies on simulated subjects;
* :mod:`repro.store` — the persistent sharded argument store (JSONL
  shards + checksummed manifest, streaming save, lazy/partial load,
  append-journal edits, persisted search sidecar);
* :mod:`repro.service` — the asyncio multi-editor HTTP front end.

This module is the **stable public surface**: build with
:class:`ArgumentBuilder`, check with :func:`check` (one facade over
the serial / streaming / parallel / incremental engines, returning a
:class:`~repro.checking.CheckReport`), persist with
:meth:`Argument.save` + :func:`load_argument` / :func:`load_case`,
query with :func:`select`, rank with :func:`search`, and declare with
:class:`ClaimModule`.  Deep module paths stay importable, but new
code and the examples import from here.

Quickstart::

    import repro

    builder = repro.ArgumentBuilder("demo")
    top = builder.goal("The system is acceptably safe")
    strategy = builder.strategy("Argument over identified hazards",
                                under=top)
    hazard = builder.goal("Hazard H1 is mitigated", under=strategy)
    builder.solution("Fault tree analysis FTA-1", under=hazard)
    argument = builder.build()

    report = repro.check(argument)        # typed CheckReport
    assert report.well_formed

    # ... and the paper's Figure 1:
    program = repro.desert_bank_program()
    assert program.provable("adjacent(desert_bank, river)")   # formally valid
    # ... yet false in the world: 'bank' equivocates.  (§IV.C)
"""

from .checking import CheckReport, ObligationOutcome, check
from .claims import ClaimModule, CompiledClaims, compile_module
from .core import (
    Argument,
    ArgumentBuilder,
    AssuranceCase,
    EvidenceItem,
    EvidenceKind,
    IncrementalChecker,
    LinkKind,
    Node,
    NodeType,
    SafetyCriterion,
    is_well_formed,
    run_rules,
)
from .core.query import select
from .core.search import search
from .core.wellformed import (
    DENNEY_PAI_RULES,
    GSN_STANDARD_RULES,
    RuleSet,
    Violation,
)
from .logic import (
    ProofBuilder,
    check_proof,
    desert_bank_program,
    entails,
    haley_outer_proof,
)
from .paper import ReproductionReport, verify_reproduction
from .store import StoredArgument, load_argument, load_case

__version__ = "1.1.0"

# The documented public API, grouped by workflow.  Everything here is
# covered by the examples and kept stable across PRs; import deeper
# paths only for internals.
__all__ = [
    # model
    "Argument",
    "ArgumentBuilder",
    "AssuranceCase",
    "EvidenceItem",
    "EvidenceKind",
    "LinkKind",
    "Node",
    "NodeType",
    "SafetyCriterion",
    # checking (one facade over four engines)
    "check",
    "CheckReport",
    "ObligationOutcome",
    "RuleSet",
    "Violation",
    "GSN_STANDARD_RULES",
    "DENNEY_PAI_RULES",
    "IncrementalChecker",
    "is_well_formed",
    "run_rules",
    # claim language
    "ClaimModule",
    "CompiledClaims",
    "compile_module",
    # persistence
    "StoredArgument",
    "load_argument",
    "load_case",
    # query + search
    "select",
    "search",
    # logic layer highlights
    "ProofBuilder",
    "check_proof",
    "desert_bank_program",
    "entails",
    "haley_outer_proof",
    # paper reproduction
    "ReproductionReport",
    "verify_reproduction",
    "__version__",
]
