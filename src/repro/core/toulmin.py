"""The (extended) Toulmin model of inductive argumentation.

Toulmin's model [33] is the reference point for assurance-argument
semantics (§II.B): a *claim* rests on *grounds*, licensed by a *warrant*
which may itself need *backing*; a *qualifier* hedges the claim; a
*rebuttal* states the conditions under which it fails.

Haley et al.'s *inner arguments* use an extended, nestable Toulmin text
form (§III.K)::

    given grounds G2: "Valid credentials are given only to HR members"
    warranted by (
        given grounds G3: "Credentials are given in person"
        warranted by G4: "Credential administrators are honest and reliable"
        thus claim C1: "Credential administration is correct")
    thus claim P2: "HR credentials provided --> HR member"
    rebutted by R1: "HR member is dishonest", ...

This module models that form: warrants may be plain statements or whole
nested sub-arguments, and rebuttals attach to any claim.  A renderer
produces the given-grounds text layout, and a converter lifts a Toulmin
argument into GSN (grounds become solutions/sub-goals, warrants become
strategies with justifications).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Union

from .argument import Argument
from .builder import ArgumentBuilder

__all__ = [
    "Statement",
    "ToulminArgument",
    "Rebuttal",
    "render_toulmin",
    "toulmin_to_gsn",
    "haley_inner_argument",
]


@dataclass(frozen=True)
class Statement:
    """A labelled natural-language statement, e.g. ``G2: "..."``."""

    label: str
    text: str

    def __str__(self) -> str:
        return f'{self.label}: "{self.text}"'


@dataclass(frozen=True)
class Rebuttal:
    """A condition under which the claim fails."""

    statement: Statement

    def __str__(self) -> str:
        return f"rebutted by {self.statement}"


Warrant = Union[Statement, "ToulminArgument"]


@dataclass(frozen=True)
class ToulminArgument:
    """One (possibly nested) Toulmin argument step.

    ``grounds`` are the facts appealed to; ``warrants`` license the step
    from grounds to claim and may be nested sub-arguments; ``backing``
    supports a warrant; ``qualifier`` hedges ('presumably', 'so far as
    testing shows'); ``rebuttals`` are the defeaters.
    """

    claim: Statement
    grounds: tuple[Statement, ...] = ()
    warrants: tuple[Warrant, ...] = ()
    backing: tuple[Statement, ...] = ()
    qualifier: str | None = None
    rebuttals: tuple[Rebuttal, ...] = ()

    def all_statements(self) -> list[Statement]:
        """Every statement in the argument, depth-first."""
        out: list[Statement] = list(self.grounds)
        for warrant in self.warrants:
            if isinstance(warrant, ToulminArgument):
                out.extend(warrant.all_statements())
                out.append(warrant.claim)
            else:
                out.append(warrant)
        out.extend(self.backing)
        out.extend(r.statement for r in self.rebuttals)
        out.append(self.claim)
        return out

    def depth(self) -> int:
        """Nesting depth of warrant sub-arguments."""
        nested = [
            w.depth() for w in self.warrants
            if isinstance(w, ToulminArgument)
        ]
        return 1 + (max(nested) if nested else 0)


def render_toulmin(argument: ToulminArgument, indent: int = 0) -> str:
    """Render in the Haley et al. given-grounds text layout."""
    pad = "  " * indent
    lines: list[str] = []
    for ground in argument.grounds:
        lines.append(f"{pad}given grounds {ground}")
    for warrant in argument.warrants:
        if isinstance(warrant, ToulminArgument):
            lines.append(f"{pad}warranted by (")
            lines.append(render_toulmin(warrant, indent + 1))
            lines.append(f"{pad})")
        else:
            lines.append(f"{pad}warranted by {warrant}")
    for backing in argument.backing:
        lines.append(f"{pad}on account of {backing}")
    qualifier = f", {argument.qualifier}," if argument.qualifier else ""
    lines.append(f"{pad}thus{qualifier} claim {argument.claim}")
    for rebuttal in argument.rebuttals:
        lines.append(f"{pad}{rebuttal}")
    return "\n".join(lines)


def toulmin_to_gsn(argument: ToulminArgument) -> Argument:
    """Lift a Toulmin argument into a GSN argument.

    Mapping: claim -> goal; grounds -> sub-goals with solutions; statement
    warrant -> justification on the connecting strategy; nested-argument
    warrant -> recursively lifted sub-structure; rebuttal -> context noting
    the defeater (GSN has no first-class rebuttal, a known limitation the
    assurance literature discusses).
    """
    builder = ArgumentBuilder(name=f"toulmin:{argument.claim.label}")
    _lift(argument, builder, under=None)
    return builder.build(check=False)


def _lift(
    argument: ToulminArgument, builder: ArgumentBuilder, under: str | None
) -> str:
    goal = builder.goal(argument.claim.text, under=under)
    strategy = builder.strategy(
        f"Argument from grounds {', '.join(g.label for g in argument.grounds)}"
        if argument.grounds else "Direct appeal to warrant",
        under=goal,
    )
    for warrant in argument.warrants:
        if isinstance(warrant, ToulminArgument):
            _lift(warrant, builder, under=strategy)
        else:
            builder.justification(warrant.text, under=strategy)
    for backing in argument.backing:
        builder.context(f"Backing: {backing.text}", under=strategy)
    for ground in argument.grounds:
        ground_goal = builder.goal(ground.text, under=strategy)
        builder.solution(
            f"Record establishing {ground.label}", under=ground_goal
        )
    for rebuttal in argument.rebuttals:
        builder.context(
            f"Rebuttal condition: {rebuttal.statement.text}", under=goal
        )
    return goal


def haley_inner_argument() -> ToulminArgument:
    """The inner argument example from Haley et al. 2008, as cited (§III.K)."""
    g3 = Statement("G3", "Credentials are given in person")
    g4 = Statement("G4", "Credential administrators are honest and reliable")
    c1 = ToulminArgument(
        claim=Statement("C1", "Credential administration is correct"),
        grounds=(g3,),
        warrants=(g4,),
    )
    return ToulminArgument(
        claim=Statement("P2", "HR credentials provided --> HR member"),
        grounds=(
            Statement("G2", "Valid credentials are given only to HR members"),
        ),
        warrants=(c1,),
        rebuttals=(
            Rebuttal(Statement("R1", "HR member is dishonest")),
        ),
    )
