"""Evidence items and the evidence registry.

An assurance case comprises 'evidence and a structured assurance argument
explaining how that evidence supports an assurance claim' (§I).  Evidence
objects model the artefacts GSN solutions cite: test results, analyses,
proofs, field data, review records.  Def Stan 00-56 requires evidence
'commensurate with the potential risk posed by the system' and 'relevant
data from the use of the system' (§II.A); the registry therefore carries
the attributes sufficiency judgments need — kind, provenance, coverage,
age — which the §VI.E experiment manipulates.

The paper's §V.B example of a *wrong reasons* fallacy — asserting
``wcet(task_1, 250)`` 'because of unit test results' — is representable
directly: an :class:`EvidenceItem` of kind ``TESTING`` cited for a claim
that needs kind ``TIMING_ANALYSIS``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

__all__ = [
    "EvidenceKind",
    "EvidenceItem",
    "EvidenceRegistry",
    "EvidenceError",
    "APPROPRIATE_KINDS",
]


class EvidenceKind(enum.Enum):
    """Kinds of evidence artefact commonly cited by assurance arguments."""

    TESTING = "testing"
    FORMAL_PROOF = "formal_proof"
    TIMING_ANALYSIS = "timing_analysis"
    FAULT_TREE_ANALYSIS = "fault_tree_analysis"
    HAZARD_ANALYSIS = "hazard_analysis"
    CODE_REVIEW = "code_review"
    FIELD_DATA = "field_data"
    SIMULATION = "simulation"
    EXPERT_JUDGEMENT = "expert_judgement"
    PROCESS_AUDIT = "process_audit"


#: Which evidence kinds are appropriate for which claim topics.  Used by
#: the informal-fallacy machinery: citing an inappropriate kind is the
#: 'wrong reasons' fallacy — invisible to formal checking (§V.B) but
#: encoded here as domain knowledge a human reviewer would apply.
APPROPRIATE_KINDS: Mapping[str, frozenset[EvidenceKind]] = {
    "timing": frozenset({
        EvidenceKind.TIMING_ANALYSIS, EvidenceKind.SIMULATION,
    }),
    "functional": frozenset({
        EvidenceKind.TESTING, EvidenceKind.FORMAL_PROOF,
        EvidenceKind.CODE_REVIEW, EvidenceKind.SIMULATION,
    }),
    "hazard": frozenset({
        EvidenceKind.HAZARD_ANALYSIS, EvidenceKind.FAULT_TREE_ANALYSIS,
        EvidenceKind.FIELD_DATA,
    }),
    "process": frozenset({
        EvidenceKind.PROCESS_AUDIT, EvidenceKind.EXPERT_JUDGEMENT,
    }),
    "reliability": frozenset({
        EvidenceKind.FIELD_DATA, EvidenceKind.TESTING,
        EvidenceKind.FAULT_TREE_ANALYSIS,
    }),
}


class EvidenceError(ValueError):
    """Raised for registry misuse (duplicate or unknown identifiers)."""


@dataclass(frozen=True)
class EvidenceItem:
    """One item of evidence.

    ``coverage`` in [0, 1] abstracts how much of the relevant behaviour the
    artefact examined (statement coverage, scenario coverage, operating
    hours normalised, ...).  ``age_days`` supports the standard's concern
    that in-service data stay current.  ``trusted_tool`` records whether a
    qualified tool produced the artefact — the knob Rushby's proof-evidence
    discussion turns on.
    """

    identifier: str
    kind: EvidenceKind
    description: str
    coverage: float = 1.0
    age_days: int = 0
    trusted_tool: bool = True
    topic: str = "functional"

    def __post_init__(self) -> None:
        if not 0.0 <= self.coverage <= 1.0:
            raise EvidenceError(
                f"coverage {self.coverage} out of [0, 1] for "
                f"{self.identifier!r}"
            )
        if self.age_days < 0:
            raise EvidenceError("age_days must be non-negative")

    def appropriate_for(self, topic: str) -> bool:
        """Is this evidence kind appropriate for claims about ``topic``?

        Unknown topics default to True: the registry cannot rule on topics
        it has no domain knowledge for, which is precisely the boundary
        between what machines and human reviewers can check.
        """
        kinds = APPROPRIATE_KINDS.get(topic)
        if kinds is None:
            return True
        return self.kind in kinds

    def __str__(self) -> str:
        return f"{self.identifier} [{self.kind.value}] {self.description!r}"


class EvidenceRegistry:
    """All evidence items of a case, keyed by identifier."""

    def __init__(self, items: Iterable[EvidenceItem] = ()) -> None:
        self._items: dict[str, EvidenceItem] = {}
        for item in items:
            self.add(item)

    def add(self, item: EvidenceItem) -> EvidenceItem:
        """Register an item; identifiers must be unique."""
        if item.identifier in self._items:
            raise EvidenceError(
                f"duplicate evidence identifier {item.identifier!r}"
            )
        self._items[item.identifier] = item
        return item

    def get(self, identifier: str) -> EvidenceItem:
        """Fetch an item by identifier."""
        try:
            return self._items[identifier]
        except KeyError:
            raise EvidenceError(
                f"unknown evidence {identifier!r}"
            ) from None

    def __contains__(self, identifier: str) -> bool:
        return identifier in self._items

    def __iter__(self) -> Iterator[EvidenceItem]:
        return iter(self._items.values())

    def __len__(self) -> int:
        return len(self._items)

    def of_kind(self, kind: EvidenceKind) -> list[EvidenceItem]:
        """All items of one kind."""
        return [item for item in self._items.values() if item.kind is kind]

    def stale(self, max_age_days: int) -> list[EvidenceItem]:
        """Items older than the given age — candidates for refresh."""
        return [
            item
            for item in self._items.values()
            if item.age_days > max_age_days
        ]

    def weakest(self, count: int = 5) -> list[EvidenceItem]:
        """Lowest-coverage items, ascending (sufficiency review order)."""
        ranked = sorted(self._items.values(), key=lambda i: i.coverage)
        return ranked[:count]
