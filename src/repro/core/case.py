"""The assurance case: argument + evidence + lifecycle record.

Def Stan 00-56 requires contractors to 'develop, maintain, and refine the
Safety Case through the life of the contract', to incorporate 'relevant
data from the use of the system', and to record 'key decisions made by the
safety committee' (§II.A).  :class:`AssuranceCase` therefore binds together:

* the structured argument (:class:`~repro.core.argument.Argument`),
* the evidence registry (:class:`~repro.core.evidence.EvidenceRegistry`),
* solution-to-evidence citations,
* an append-only lifecycle log of decisions, changes, and in-service
  findings, and
* the operational definition of 'adequately safe' that §II.A lists first
  among the things an argument must communicate.

``integrity_report`` performs the bookkeeping checks that are mechanical
by nature: every solution cites registered evidence, every registered item
is cited somewhere, the argument is well-formed.  Whether the cited
evidence actually *supports* the claims is an informal judgment — see
:mod:`repro.experiments.sufficiency_study`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from .argument import Argument
from .evidence import EvidenceItem, EvidenceRegistry
from .nodes import NodeType
from .wellformed import GSN_STANDARD_RULES, RuleSet, Violation

__all__ = [
    "LifecycleEventKind",
    "LifecycleEvent",
    "SafetyCriterion",
    "AssuranceCase",
    "IntegrityReport",
]


class LifecycleEventKind(enum.Enum):
    """The recordable happenings over a case's life."""

    CREATED = "created"
    DECISION = "decision"
    SYSTEM_CHANGE = "system_change"
    OPERATIONAL_CHANGE = "operational_change"
    FIELD_FINDING = "field_finding"
    EVIDENCE_ADDED = "evidence_added"
    EVIDENCE_WITHDRAWN = "evidence_withdrawn"
    REVIEW = "review"


@dataclass(frozen=True)
class LifecycleEvent:
    """One entry in the case's append-only history."""

    sequence: int
    kind: LifecycleEventKind
    description: str
    affected_nodes: tuple[str, ...] = ()

    def __str__(self) -> str:
        nodes = f" [{', '.join(self.affected_nodes)}]" \
            if self.affected_nodes else ""
        return f"#{self.sequence} {self.kind.value}: {self.description}{nodes}"


@dataclass(frozen=True)
class SafetyCriterion:
    """The system-specific operational definition of 'adequately safe'.

    §II.A: a safety argument must communicate 'the system-specific
    operational definition of adequately safe (or unacceptable risk)'.
    """

    statement: str
    risk_metric: str
    threshold: float

    def __str__(self) -> str:
        return f"{self.statement} ({self.risk_metric} <= {self.threshold})"


@dataclass(frozen=True)
class IntegrityReport:
    """Mechanical bookkeeping findings for a case."""

    violations: tuple[Violation, ...]
    uncited_evidence: tuple[str, ...]
    dangling_citations: tuple[str, ...]
    unsupported_solutions: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not (
            self.violations
            or self.uncited_evidence
            or self.dangling_citations
            or self.unsupported_solutions
        )

    def summary(self) -> str:
        if self.ok:
            return "case integrity: OK"
        parts = []
        if self.violations:
            parts.append(f"{len(self.violations)} syntax violation(s)")
        if self.uncited_evidence:
            parts.append(f"{len(self.uncited_evidence)} uncited item(s)")
        if self.dangling_citations:
            parts.append(
                f"{len(self.dangling_citations)} dangling citation(s)"
            )
        if self.unsupported_solutions:
            parts.append(
                f"{len(self.unsupported_solutions)} solution(s) "
                "without citations"
            )
        return "case integrity: " + "; ".join(parts)


class AssuranceCase:
    """A complete assurance case for one system."""

    def __init__(
        self,
        name: str,
        argument: Argument,
        criterion: SafetyCriterion | None = None,
    ) -> None:
        self.name = name
        self.argument = argument
        self.criterion = criterion
        self.evidence = EvidenceRegistry()
        self._citations: dict[str, list[str]] = {}  # solution id -> evidence
        self._log: list[LifecycleEvent] = []
        self._record(LifecycleEventKind.CREATED, f"case {name!r} created")

    # -- evidence ---------------------------------------------------------

    def add_evidence(
        self, item: EvidenceItem, cited_by: str | None = None
    ) -> EvidenceItem:
        """Register evidence, optionally citing it from a solution node."""
        self.evidence.add(item)
        self._record(
            LifecycleEventKind.EVIDENCE_ADDED,
            f"evidence {item.identifier!r} added",
        )
        if cited_by is not None:
            self.cite(cited_by, item.identifier)
        return item

    def cite(self, solution_id: str, evidence_id: str) -> None:
        """Record that a solution node cites an evidence item."""
        node = self.argument.node(solution_id)
        if node.node_type is not NodeType.SOLUTION:
            raise ValueError(
                f"{solution_id!r} is a {node.node_type.value}, not a solution"
            )
        self.evidence.get(evidence_id)
        self._citations.setdefault(solution_id, []).append(evidence_id)

    def citations(self, solution_id: str) -> list[EvidenceItem]:
        """Evidence items cited by one solution."""
        return [
            self.evidence.get(e)
            for e in self._citations.get(solution_id, [])
        ]

    def citing_solutions(self, evidence_id: str) -> list[str]:
        """Solution identifiers citing one evidence item."""
        return [
            solution
            for solution, cited in self._citations.items()
            if evidence_id in cited
        ]

    def withdraw_evidence(self, evidence_id: str, reason: str) -> list[str]:
        """Mark evidence withdrawn; returns the affected solution nodes.

        The item stays registered (the history must remain auditable) but
        all citations of it are removed, leaving the affected solutions
        unsupported — the situation 'relevant data from the use of the
        system' refuting the safety rationale produces.
        """
        self.evidence.get(evidence_id)
        affected = self.citing_solutions(evidence_id)
        for solution in affected:
            self._citations[solution] = [
                e for e in self._citations[solution] if e != evidence_id
            ]
        self._record(
            LifecycleEventKind.EVIDENCE_WITHDRAWN,
            f"evidence {evidence_id!r} withdrawn: {reason}",
            tuple(affected),
        )
        return affected

    # -- lifecycle ---------------------------------------------------------

    def record_decision(
        self, description: str, affected: Iterable[str] = ()
    ) -> LifecycleEvent:
        """Record a safety-committee decision (§II.A requirement)."""
        return self._record(
            LifecycleEventKind.DECISION, description, tuple(affected)
        )

    def record_change(
        self,
        description: str,
        operational: bool = False,
        affected: Iterable[str] = (),
    ) -> LifecycleEvent:
        """Record a system or operational change."""
        kind = (
            LifecycleEventKind.OPERATIONAL_CHANGE
            if operational
            else LifecycleEventKind.SYSTEM_CHANGE
        )
        return self._record(kind, description, tuple(affected))

    def record_field_finding(
        self, description: str, affected: Iterable[str] = ()
    ) -> LifecycleEvent:
        """Record in-service data relevant to the safety rationale."""
        return self._record(
            LifecycleEventKind.FIELD_FINDING, description, tuple(affected)
        )

    def _record(
        self,
        kind: LifecycleEventKind,
        description: str,
        affected: tuple[str, ...] = (),
    ) -> LifecycleEvent:
        event = LifecycleEvent(len(self._log) + 1, kind, description, affected)
        self._log.append(event)
        return event

    @property
    def history(self) -> list[LifecycleEvent]:
        """The append-only lifecycle log."""
        return list(self._log)

    def decisions(self) -> list[LifecycleEvent]:
        """Only the recorded key decisions."""
        return [
            e for e in self._log if e.kind is LifecycleEventKind.DECISION
        ]

    # -- persistence --------------------------------------------------------

    def save(
        self,
        directory,
        *,
        shard_count: int | None = None,
        compression: str | None = None,
        search_index: bool = False,
    ):
        """Write this case to a sharded store directory.

        The argument shards exactly as :meth:`Argument.save
        <repro.core.argument.Argument.save>` lays it out; evidence and
        citations stream to their own checksummed shards
        (``compression="gzip"`` gzips them all, transparent on read).
        The lifecycle log is not persisted — history belongs to the live
        case, and a loaded case starts a fresh log (matching
        :func:`repro.notation.json_io.case_from_json`).
        """
        from ..store import save_case  # local: store imports this module

        return save_case(
            self, directory, shard_count=shard_count,
            compression=compression, search_index=search_index,
        )

    @classmethod
    def load(cls, directory) -> "AssuranceCase":
        """Fully hydrate a case saved with :meth:`save`.

        Called on a subclass, returns an instance of that subclass.
        """
        from ..store import load_case  # local: store imports this module

        return load_case(directory, into=cls)

    # -- integrity ---------------------------------------------------------

    def integrity_report(
        self, rules: RuleSet = GSN_STANDARD_RULES
    ) -> IntegrityReport:
        """Run every mechanical bookkeeping check."""
        violations = tuple(rules.check(self.argument))
        cited = {
            evidence_id
            for citations in self._citations.values()
            for evidence_id in citations
        }
        uncited = tuple(sorted(
            item.identifier
            for item in self.evidence
            if item.identifier not in cited
        ))
        dangling = tuple(sorted(
            solution
            for solution in self._citations
            if solution not in self.argument
        ))
        unsupported = tuple(sorted(
            node.identifier
            for node in self.argument.nodes_of_type(NodeType.SOLUTION)
            if not self._citations.get(node.identifier)
        ))
        return IntegrityReport(violations, uncited, dangling, unsupported)
