"""The assurance-argument graph — an iterative, indexed graph engine.

Denney & Pai formalise a partial safety case argument structure as a tuple
``⟨N, l, t, →⟩`` — nodes, a type-labelling function, a content function,
and a connector relation (§III.I).  :class:`Argument` realises exactly that
structure, with the connector relation split into GSN's two arrows:

* **SupportedBy** (``→`` solid arrow): inferential/evidential support;
* **InContextOf** (``⇢`` hollow arrow): contextual attachment.

The class offers the graph services every other layer consumes: traversal,
root/leaf discovery, cycle detection, path tracing (the 'tracing a path in
a graph' that §VI.E says graphical notations are thought to ease), subtree
extraction, and structural statistics.

Complexity guarantees
=====================

Tool-generated assurance cases reach tens of thousands of nodes (Resolute
derives cases from architecture models; Isabelle/SACM mechanises similarly
large ones), so every traversal below is **iterative** — no graph shape can
raise :class:`RecursionError` — and the hot paths are backed by indices
maintained incrementally by ``add_*``/``remove_*``/``replace_node``:

========================  ==========================================
Operation                 Cost (V nodes, E links, answer size K)
========================  ==========================================
``add_node``              O(1)
``add_link``              O(1) — duplicate check via a link set
``add_nodes``             O(payload), validated up front, one batch
``add_links``             O(payload), validated up front, one batch
``remove_link``           O(1) amortised (ordered-dict deletes)
``remove_node``           O(degree)
``replace_node``          O(1) — keeps the node-type index consistent
``node`` / ``in``         O(1)
``nodes_of_type``         O(K) via the node-type index
``children``/``parents``  O(degree) via per-kind adjacency
``roots`` / ``leaves``    O(V) with O(1) per-node degree checks
``walk`` / ``subtree``    O(V + E) explicit-stack DFS
``find_cycle``            O(V + E) iterative colouring DFS; the
                          returned cycle is a *verified closed*
                          SupportedBy cycle
``depth``                 O(V + E) memoised longest path (cached until
                          the next mutation; the seed implementation
                          re-visited shared subdags exponentially)
``ancestors``             O(V + E) reverse reachability
``count_paths_to_root``   O(V + E) memoised path counting on DAGs;
                          falls back to enumeration if a cycle is
                          reachable (always agrees with the
                          enumeration)
``iter_paths_to_root``    lazy, O(depth) memory; enumerating all paths
                          is inherently exponential on dense DAGs, so
                          ``paths_to_root`` takes a ``max_paths`` guard
``statistics``            O(1) beyond the (cached) depth — counts come
                          from maintained indices
========================  ==========================================

On cyclic graphs (which well-formedness rejects), ``depth`` first strips
the back edges of an insertion-order DFS — making the memoisation sound
and the result deterministic — and ``count_paths_to_root`` abandons the
DP for the exact enumeration; on acyclic graphs both match the seed's
semantics exactly, and otherwise they degrade gracefully instead of
recursing or silently drifting.

Mutations bump :attr:`Argument.version` and clear the internal cache:
per-version derived values (``depth``) memoise via
:meth:`Argument.cached` and are simply recomputed after any change.
Structures that are too expensive to rebuild per mutation — the query
planner's indices in :mod:`repro.core.query` — instead live in the
derived-structure slot and patch themselves forward from the mutation
delta log, as described next.

Batch mutation and the delta protocol
=====================================

Tool-generated cases are built by tens of thousands of programmatic
mutations (Resolute emits one claim per architecture component;
fallacy-injection campaigns chain hundreds of edits), so per-mutation
bookkeeping must not dominate.  Two cooperating mechanisms amortise it:

* **Batching.**  ``with argument.batch():`` defers the version bump to a
  single increment when the outermost batch closes; the bulk helpers
  :meth:`Argument.add_nodes` / :meth:`Argument.add_links` validate their
  whole payload up front (so a failed bulk call mutates nothing) and run
  inside one batch.  Reads stay safe mid-batch: every mutation still
  clears the value cache and bumps the fine-grained
  :attr:`Argument.mutation_seq` immediately.

* **The mutation delta log.**  Every structural mutation appends one
  ``(seq, op, payload)`` record to a bounded log.  A derived structure
  that indexed the argument at sequence number ``s`` calls
  :meth:`Argument.delta_since` ``(s)`` and receives a
  :class:`MutationDelta` — the ordered record of nodes/links added,
  removed, and replaced since ``s`` — which it can replay to patch
  itself in place instead of rebuilding from scratch.  ``delta_since``
  returns ``None`` when the log has rotated past ``s`` (the caller must
  rebuild).  The query planner (:mod:`repro.core.query`) is the first
  consumer.

Derived structures that survive invalidation (unlike :meth:`cached`
values, which are cleared on every mutation) live in a separate
per-argument slot via :meth:`get_derived` / :meth:`set_derived`; they are
responsible for their own staleness checks against ``mutation_seq``.

The delta log is also the **persistence export**: :meth:`mark_persisted`
records the sequence number at which a store directory last matched this
argument, :meth:`persisted_delta` returns the mutations since, and
``save(journal=True)`` appends exactly that delta to the store's journal
(see :mod:`repro.store.journal`) instead of rewriting every shard —
falling back to a full rewrite whenever the delta is unavailable (no
prior save, a rotated log, or a store someone else rewrote).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from itertools import islice
from typing import Any, Callable, Iterable, Iterator

from .nodes import Node, NodeType

__all__ = [
    "LinkKind",
    "Link",
    "Argument",
    "ArgumentError",
    "MutationDelta",
]


class LinkKind(enum.Enum):
    """The two GSN connector kinds."""

    SUPPORTED_BY = "supported_by"
    IN_CONTEXT_OF = "in_context_of"


@dataclass(frozen=True, slots=True)
class Link:
    """A directed connector from ``source`` to ``target`` (identifiers)."""

    source: str
    target: str
    kind: LinkKind

    def __str__(self) -> str:
        arrow = "->" if self.kind is LinkKind.SUPPORTED_BY else "~>"
        return f"{self.source} {arrow} {self.target}"


class ArgumentError(ValueError):
    """Raised for structural violations (unknown nodes, duplicates, etc.)."""


#: Op codes recorded in the mutation log.  Payloads: ``Node`` for node
#: ops (the *removed* node for ``remove_node``), ``(old, new)`` for
#: ``replace_node``, ``Link`` for link ops.
_ADD_NODE = "add_node"
_REMOVE_NODE = "remove_node"
_REPLACE_NODE = "replace_node"
_ADD_LINK = "add_link"
_REMOVE_LINK = "remove_link"


@dataclass(frozen=True)
class MutationDelta:
    """The ordered mutations between two argument sequence numbers.

    ``records`` preserves application order — required for correct
    replay when one identifier is removed and re-added within a single
    delta.  The categorised views (:attr:`nodes_added` etc.) are
    conveniences for reporting and tests.
    """

    records: tuple[tuple[str, Any], ...]

    def __bool__(self) -> bool:
        return bool(self.records)

    def __len__(self) -> int:
        return len(self.records)

    @property
    def nodes_added(self) -> tuple[Node, ...]:
        return tuple(
            payload for op, payload in self.records if op == _ADD_NODE
        )

    @property
    def nodes_removed(self) -> tuple[Node, ...]:
        return tuple(
            payload for op, payload in self.records if op == _REMOVE_NODE
        )

    @property
    def nodes_replaced(self) -> tuple[tuple[Node, Node], ...]:
        return tuple(
            payload for op, payload in self.records if op == _REPLACE_NODE
        )

    @property
    def links_added(self) -> tuple[Link, ...]:
        return tuple(
            payload for op, payload in self.records if op == _ADD_LINK
        )

    @property
    def links_removed(self) -> tuple[Link, ...]:
        return tuple(
            payload for op, payload in self.records if op == _REMOVE_LINK
        )


class _Batch:
    """Reentrant context manager returned by :meth:`Argument.batch`."""

    __slots__ = ("_argument",)

    def __init__(self, argument: "Argument") -> None:
        self._argument = argument

    def __enter__(self) -> "Argument":
        self._argument._batch_depth += 1
        return self._argument

    def __exit__(self, *exc_info: Any) -> None:
        argument = self._argument
        argument._batch_depth -= 1
        if argument._batch_depth == 0 and argument._batch_dirty:
            argument._batch_dirty = False
            argument._version += 1


class Argument:
    """A mutable assurance-argument graph.

    Mutation is restricted to ``add_node``/``add_link``/``remove_*`` so the
    internal indices stay consistent.  Equality compares node sets and link
    sets (used by the notation round-trip property tests).
    """

    def __init__(self, name: str = "argument") -> None:
        self.name = name
        self._nodes: dict[str, Node] = {}
        # Insertion-ordered link set: O(1) membership, deletion keeps order.
        self._links: dict[Link, None] = {}
        self._out: dict[str, dict[Link, None]] = {}
        self._in: dict[str, dict[Link, None]] = {}
        # Per-kind adjacency: kind -> source/target id -> neighbour ids.
        self._out_kind: dict[LinkKind, dict[str, dict[str, None]]] = {
            kind: {} for kind in LinkKind
        }
        self._in_kind: dict[LinkKind, dict[str, dict[str, None]]] = {
            kind: {} for kind in LinkKind
        }
        # Node-type index (per-type insertion order == global order).
        self._by_type: dict[NodeType, dict[str, None]] = {
            node_type: {} for node_type in NodeType
        }
        self._kind_counts: dict[LinkKind, int] = {
            kind: 0 for kind in LinkKind
        }
        self._version = 0
        self._cache: dict[str, Any] = {}
        # Fine-grained mutation counter + bounded op log (delta protocol).
        self._mutation_seq = 0
        self._mutation_log: deque[tuple[int, str, Any]] = deque(
            maxlen=self.MUTATION_LOG_LIMIT
        )
        # Derived structures that survive invalidation (see get_derived).
        self._derived: dict[str, Any] = {}
        # Per-store persistence baselines for journal appends:
        # resolved directory -> (mutation_seq, manifest CRC-32) at the
        # moment the store last matched this argument.
        self._persisted: dict[str, tuple[int, "int | None"]] = {}
        self._batch_depth = 0
        self._batch_dirty = False

    #: How many mutation records :meth:`delta_since` can look back over;
    #: older history rotates out and forces derived-structure rebuilds.
    MUTATION_LOG_LIMIT = 10_000

    # -- cache/version bookkeeping ----------------------------------------

    @property
    def version(self) -> int:
        """Coarse mutation counter: one bump per mutation *or* per batch."""
        return self._version

    @property
    def mutation_seq(self) -> int:
        """Fine-grained counter: bumped by every mutation, even in a batch."""
        return self._mutation_seq

    def cached(self, key: str, build: Callable[[], Any]) -> Any:
        """Memoise ``build()`` until the next mutation.

        Derived structures (depth, query indices) register here; the cache
        is cleared wholesale by :meth:`_invalidate`, which every mutator
        calls, so staleness is impossible by construction.
        """
        try:
            return self._cache[key]
        except KeyError:
            value = self._cache[key] = build()
            return value

    def _invalidate(self) -> None:
        self._cache.clear()
        if self._batch_depth:
            self._batch_dirty = True
        else:
            self._version += 1

    def _record(self, op: str, payload: Any) -> None:
        """Log one mutation for the delta protocol and bump the seq."""
        self._mutation_seq += 1
        self._mutation_log.append((self._mutation_seq, op, payload))

    def batch(self) -> _Batch:
        """Group mutations into one logical change (one version bump).

        Usable as ``with argument.batch(): ...``; nests (only the
        outermost exit bumps the version).  Reads stay coherent
        mid-batch: each mutation still clears the value cache and bumps
        :attr:`mutation_seq` so delta consumers never see stale state.
        The batch is *not* transactional — mutations applied before an
        exception remain applied, and the version still bumps.
        """
        return _Batch(self)

    def delta_since(self, seq: int) -> MutationDelta | None:
        """The mutations after sequence number ``seq``, oldest first.

        Returns an empty delta when nothing changed, or ``None`` when
        ``seq`` is older than the bounded log reaches back (the caller
        must rebuild whatever it derived).
        """
        if seq >= self._mutation_seq:
            return MutationDelta(())
        log = self._mutation_log
        missing = self._mutation_seq - seq
        if missing > len(log):
            return None
        # Every mutation appends exactly one record, so the wanted
        # records are exactly the last ``missing``.  Walk the deque from
        # its tail — islice from the front would traverse the whole log
        # — keeping this O(delta), not O(log).
        tail = list(islice(reversed(log), missing))
        tail.reverse()
        return MutationDelta(tuple(
            (op, payload) for _, op, payload in tail
        ))

    # -- persistence baselines (journal delta export) ---------------------

    @staticmethod
    def _store_key(directory: Any) -> str:
        import os

        return os.path.abspath(os.fspath(directory))

    def mark_persisted(self, directory: Any) -> None:
        """Record that the store at ``directory`` matches this argument.

        Called by ``save()`` and by ``StoredArgument.load``; from here
        on, :meth:`persisted_delta` can hand ``save(journal=True)`` the
        exact mutations to append.  The baseline carries the manifest's
        CRC-32, so an append only happens onto the exact store
        generation this argument last saw — any external change falls
        back to a full rewrite.  One argument may hold baselines for
        several stores at once.
        """
        import os
        from zlib import crc32

        from ..store.format import MANIFEST_NAME  # local: import cycle

        key = self._store_key(directory)
        try:
            with open(os.path.join(key, MANIFEST_NAME), "rb") as handle:
                fingerprint: "int | None" = crc32(handle.read())
        except OSError:
            fingerprint = None
        self._persisted[key] = (self._mutation_seq, fingerprint)

    def persisted_delta(self, directory: Any) -> MutationDelta | None:
        """The mutations since the store at ``directory`` last matched.

        ``None`` when no delta can be produced — this argument was never
        saved to or loaded from the directory, or the bounded mutation
        log rotated past the baseline — in which case the caller must
        fall back to a full rewrite.
        """
        baseline = self._persisted.get(self._store_key(directory))
        if baseline is None:
            return None
        return self.delta_since(baseline[0])

    def get_derived(self, key: str) -> Any:
        """A derived structure that survives invalidation, or ``None``.

        Unlike :meth:`cached` values these are *not* cleared on
        mutation; the owner checks staleness itself against
        :attr:`mutation_seq` (typically patching via
        :meth:`delta_since`).  :meth:`copy` does not carry them over.
        """
        return self._derived.get(key)

    def set_derived(self, key: str, value: Any) -> None:
        """Store a derived structure (see :meth:`get_derived`)."""
        self._derived[key] = value

    # -- construction ---------------------------------------------------

    def _insert_node(self, node: Node) -> None:
        """Bookkeeping for one validated node (shared single/bulk path)."""
        identifier = node.identifier
        self._nodes[identifier] = node
        self._out[identifier] = {}
        self._in[identifier] = {}
        self._by_type[node.node_type][identifier] = None
        self._record(_ADD_NODE, node)

    def add_node(self, node: Node) -> Node:
        """Add a node; identifiers must be unique."""
        if node.identifier in self._nodes:
            raise ArgumentError(
                f"duplicate node identifier {node.identifier!r}"
            )
        self._insert_node(node)
        self._invalidate()
        return node

    def add_nodes(self, nodes: Iterable[Node]) -> list[Node]:
        """Add many nodes in one batch; all-or-nothing validation.

        Duplicate identifiers — against the argument *or* within the
        payload — fail before anything is inserted.  Insertion is a
        straight-line bulk path: the payload is validated exactly once,
        and the cache invalidates once instead of per node.
        """
        pending = list(nodes)
        seen: set[str] = set()
        for node in pending:
            if node.identifier in self._nodes or node.identifier in seen:
                raise ArgumentError(
                    f"duplicate node identifier {node.identifier!r}"
                )
            seen.add(node.identifier)
        with self.batch():
            for node in pending:
                self._insert_node(node)
            if pending:
                self._invalidate()
        return pending

    def _validate_link(self, link: Link) -> None:
        """Raise unless the link can be inserted (shared single/bulk)."""
        if link.source not in self._nodes:
            raise ArgumentError(f"unknown source node {link.source!r}")
        if link.target not in self._nodes:
            raise ArgumentError(f"unknown target node {link.target!r}")
        if link.source == link.target:
            raise ArgumentError(f"self-link on {link.source!r}")
        if link in self._links:
            raise ArgumentError(f"duplicate link {link}")

    def _insert_link(self, link: Link) -> None:
        """Bookkeeping for one validated link (shared single/bulk path)."""
        self._links[link] = None
        self._out[link.source][link] = None
        self._in[link.target][link] = None
        self._out_kind[link.kind].setdefault(
            link.source, {}
        )[link.target] = None
        self._in_kind[link.kind].setdefault(
            link.target, {}
        )[link.source] = None
        self._kind_counts[link.kind] += 1
        self._record(_ADD_LINK, link)

    def add_link(
        self, source: str, target: str, kind: LinkKind
    ) -> Link:
        """Connect two existing nodes; parallel duplicate links are rejected."""
        link = Link(source, target, kind)
        self._validate_link(link)
        self._insert_link(link)
        self._invalidate()
        return link

    def add_links(
        self, specs: Iterable[tuple[str, str, LinkKind]]
    ) -> list[Link]:
        """Add many links in one batch; all-or-nothing validation.

        Each spec is ``(source, target, kind)``.  Unknown endpoints,
        self-links, and duplicates — against the argument or within the
        payload — fail before anything is inserted.  As with
        :meth:`add_nodes`, the payload is validated exactly once and
        inserted on a straight-line bulk path.
        """
        pending = [
            Link(source, target, kind) for source, target, kind in specs
        ]
        seen: set[Link] = set()
        for link in pending:
            self._validate_link(link)
            if link in seen:
                raise ArgumentError(f"duplicate link {link}")
            seen.add(link)
        with self.batch():
            for link in pending:
                self._insert_link(link)
            if pending:
                self._invalidate()
        return pending

    def supported_by(self, source: str, target: str) -> Link:
        """Shorthand for a SupportedBy connector."""
        return self.add_link(source, target, LinkKind.SUPPORTED_BY)

    def in_context_of(self, source: str, target: str) -> Link:
        """Shorthand for an InContextOf connector."""
        return self.add_link(source, target, LinkKind.IN_CONTEXT_OF)

    def replace_node(self, node: Node) -> None:
        """Swap in a new node object under an existing identifier."""
        old = self._nodes.get(node.identifier)
        if old is None:
            raise ArgumentError(f"unknown node {node.identifier!r}")
        self._nodes[node.identifier] = node
        if old.node_type is not node.node_type:
            del self._by_type[old.node_type][node.identifier]
            # Rebuild the destination bucket so per-type order keeps
            # matching global insertion order (retype is rare; O(V)).
            self._by_type[node.node_type] = {
                identifier: None
                for identifier, existing in self._nodes.items()
                if existing.node_type is node.node_type
            }
        self._record(_REPLACE_NODE, (old, node))
        self._invalidate()

    def remove_link(self, link: Link) -> None:
        """Remove one connector."""
        if link not in self._links:
            raise ArgumentError(f"no such link {link}")
        del self._links[link]
        del self._out[link.source][link]
        del self._in[link.target][link]
        del self._out_kind[link.kind][link.source][link.target]
        del self._in_kind[link.kind][link.target][link.source]
        self._kind_counts[link.kind] -= 1
        self._record(_REMOVE_LINK, link)
        self._invalidate()

    def remove_node(self, identifier: str) -> None:
        """Remove a node and every connector touching it.

        One logical mutation: however many links go with the node, the
        version bumps once (the link removals are still individually
        visible to delta consumers).
        """
        node = self._nodes.get(identifier)
        if node is None:
            raise ArgumentError(f"unknown node {identifier!r}")
        with self.batch():
            for link in (
                list(self._out[identifier]) + list(self._in[identifier])
            ):
                if link in self._links:
                    self.remove_link(link)
            del self._nodes[identifier]
            del self._out[identifier]
            del self._in[identifier]
            del self._by_type[node.node_type][identifier]
            for kind in LinkKind:
                self._out_kind[kind].pop(identifier, None)
                self._in_kind[kind].pop(identifier, None)
            self._record(_REMOVE_NODE, node)
            self._invalidate()

    # -- lookup -----------------------------------------------------------

    def node(self, identifier: str) -> Node:
        """Fetch a node by identifier."""
        try:
            return self._nodes[identifier]
        except KeyError:
            raise ArgumentError(f"unknown node {identifier!r}") from None

    def __contains__(self, identifier: str) -> bool:
        return identifier in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def nodes(self) -> list[Node]:
        """All nodes, in insertion order."""
        return list(self._nodes.values())

    @property
    def links(self) -> list[Link]:
        """All links, in insertion order."""
        return list(self._links)

    def nodes_of_type(self, node_type: NodeType) -> list[Node]:
        """All nodes of one kind (indexed; insertion order preserved)."""
        return [
            self._nodes[identifier]
            for identifier in self._by_type[node_type]
        ]

    @property
    def goals(self) -> list[Node]:
        return self.nodes_of_type(NodeType.GOAL)

    @property
    def strategies(self) -> list[Node]:
        return self.nodes_of_type(NodeType.STRATEGY)

    @property
    def solutions(self) -> list[Node]:
        return self.nodes_of_type(NodeType.SOLUTION)

    # -- structure ---------------------------------------------------------

    def _out_ids(
        self, identifier: str, kind: LinkKind
    ) -> Iterable[str]:
        """Target identifiers of outgoing links of one kind."""
        return self._out_kind[kind].get(identifier, ())

    def _in_ids(
        self, identifier: str, kind: LinkKind
    ) -> Iterable[str]:
        """Source identifiers of incoming links of one kind."""
        return self._in_kind[kind].get(identifier, ())

    def children(
        self, identifier: str, kind: LinkKind | None = None
    ) -> list[Node]:
        """Targets of outgoing links (optionally of one kind)."""
        if kind is None:
            return [
                self._nodes[link.target]
                for link in self._out.get(identifier, ())
            ]
        return [
            self._nodes[target] for target in self._out_ids(identifier, kind)
        ]

    def parents(
        self, identifier: str, kind: LinkKind | None = None
    ) -> list[Node]:
        """Sources of incoming links (optionally of one kind)."""
        if kind is None:
            return [
                self._nodes[link.source]
                for link in self._in.get(identifier, ())
            ]
        return [
            self._nodes[source] for source in self._in_ids(identifier, kind)
        ]

    def supporters(self, identifier: str) -> list[Node]:
        """Nodes this node cites as support (SupportedBy targets)."""
        return self.children(identifier, LinkKind.SUPPORTED_BY)

    def cites_support(self, identifier: str) -> bool:
        """True when the node sources at least one SupportedBy link.

        O(1) off the per-kind adjacency index — the support-presence bit
        the scoped well-formedness rules read per node.
        """
        return bool(
            self._out_kind[LinkKind.SUPPORTED_BY].get(identifier)
        )

    def has_link(self, link: Link) -> bool:
        """O(1) membership test for an exact link."""
        return link in self._links

    def links_of(self, identifier: str) -> list[Link]:
        """Every link touching this node (outgoing first, then incoming).

        The dependency set a node retype invalidates: used by the
        incremental checker to re-evaluate exactly the affected link
        rules.
        """
        self.node(identifier)
        return list(self._out.get(identifier, ())) + list(
            self._in.get(identifier, ())
        )

    def context_of(self, identifier: str) -> list[Node]:
        """Contextual nodes attached to this node."""
        return self.children(identifier, LinkKind.IN_CONTEXT_OF)

    def roots(self) -> list[Node]:
        """Nodes with no incoming SupportedBy link and claim-like type.

        A well-formed safety argument has exactly one root goal; fragments
        under construction may have several.
        """
        supported = self._in_kind[LinkKind.SUPPORTED_BY]
        return [
            node
            for node in self._nodes.values()
            if node.node_type.is_claim_like
            and not supported.get(node.identifier)
        ]

    def leaves(self) -> list[Node]:
        """Claim-like or strategy nodes with no outgoing SupportedBy link."""
        out = self._out_kind[LinkKind.SUPPORTED_BY]
        return [
            node
            for node in self._nodes.values()
            if node.node_type in (
                NodeType.GOAL, NodeType.STRATEGY, NodeType.AWAY_GOAL
            )
            and not out.get(node.identifier)
        ]

    def walk(
        self, start: str, kind: LinkKind | None = None
    ) -> Iterator[Node]:
        """Depth-first pre-order walk of the support graph from ``start``."""
        seen: set[str] = set()
        stack = [start]
        while stack:
            identifier = stack.pop()
            if identifier in seen:
                continue
            seen.add(identifier)
            node = self.node(identifier)
            yield node
            if kind is None:
                targets = [
                    link.target for link in self._out.get(identifier, ())
                ]
            else:
                targets = list(self._out_ids(identifier, kind))
            stack.extend(reversed(targets))

    def subtree(self, start: str) -> "Argument":
        """A new argument containing everything reachable from ``start``."""
        fragment = Argument(name=f"{self.name}/{start}")
        members = {node.identifier for node in self.walk(start)}
        with fragment.batch():
            for identifier in members:
                fragment.add_node(self._nodes[identifier])
            for link in self._links:
                if link.source in members and link.target in members:
                    fragment.add_link(link.source, link.target, link.kind)
        return fragment

    def ancestors(
        self, identifier: str, kind: LinkKind | None = LinkKind.SUPPORTED_BY
    ) -> set[str]:
        """Every node (including ``identifier``) that can reach this node.

        Reverse reachability over incoming links of the given kind — on an
        acyclic graph this equals the union of all ``paths_to_root`` nodes,
        computed in O(V + E) instead of by path enumeration.
        """
        self.node(identifier)
        seen = {identifier}
        stack = [identifier]
        while stack:
            current = stack.pop()
            if kind is None:
                sources: Iterable[str] = (
                    link.source for link in self._in.get(current, ())
                )
            else:
                sources = self._in_ids(current, kind)
            for source in sources:
                if source not in seen:
                    seen.add(source)
                    stack.append(source)
        return seen

    def _iter_supported_by_back_edges(
        self,
    ) -> Iterator[tuple[str, str, list[str], dict[str, int]]]:
        """Yield every SupportedBy back edge of an insertion-order DFS.

        One white/grey/black colouring DFS shared by :meth:`find_cycle`
        and :meth:`_back_edges`.  Each yield is ``(source, target, path,
        path_index)`` where ``path``/``path_index`` are the *live* DFS
        stack state: ``path[path_index[target]:]`` is the closed cycle
        the back edge completes.
        """
        sup = self._out_kind[LinkKind.SUPPORTED_BY]
        colour: dict[str, int] = {}  # 0/absent unvisited, 1 on stack, 2 done
        path: list[str] = []
        path_index: dict[str, int] = {}
        for start in self._nodes:
            if colour.get(start, 0):
                continue
            colour[start] = 1
            path_index[start] = len(path)
            path.append(start)
            stack: list[tuple[str, Iterator[str]]] = [
                (start, iter(sup.get(start, ())))
            ]
            while stack:
                identifier, targets = stack[-1]
                advanced = False
                for target in targets:
                    state = colour.get(target, 0)
                    if state == 1:
                        yield identifier, target, path, path_index
                    elif state == 0:
                        colour[target] = 1
                        path_index[target] = len(path)
                        path.append(target)
                        stack.append((target, iter(sup.get(target, ()))))
                        advanced = True
                        break
                if not advanced:
                    colour[identifier] = 2
                    path.pop()
                    del path_index[identifier]
                    stack.pop()

    def find_cycle(self) -> list[str] | None:
        """A SupportedBy cycle as a node-identifier list, or None.

        Cyclic support is the graph form of *begging the question*: a claim
        ultimately cited in its own support.  The returned list
        ``[c0, c1, ..., ck]`` is a **verified closed cycle**: every
        consecutive pair is a SupportedBy link and so is ``ck -> c0``.
        """
        for _, target, path, path_index in \
                self._iter_supported_by_back_edges():
            # Back edge to a DFS-stack ancestor: the slice of the current
            # path from the ancestor down to here is a closed SupportedBy
            # cycle by construction.
            return path[path_index[target]:]
        return None

    def iter_paths_to_root(self, identifier: str) -> Iterator[list[str]]:
        """Lazily yield SupportedBy paths from a node up to any root.

        Explicit-stack DFS over incoming SupportedBy links; each yielded
        path runs leaf-first (``[identifier, ..., root]``).  Memory is
        O(longest path); the number of paths can still be exponential on
        dense DAGs, which is why :meth:`paths_to_root` takes ``max_paths``.
        """
        # Validate eagerly, at the call site — not on first next().
        self.node(identifier)
        return self._iter_paths_to_root(identifier)

    def _iter_paths_to_root(self, identifier: str) -> Iterator[list[str]]:
        sup_in = self._in_kind[LinkKind.SUPPORTED_BY]
        first = sup_in.get(identifier, ())
        if not first:
            yield [identifier]
            return
        trail = [identifier]
        on_trail = {identifier}
        stack: list[Iterator[str]] = [iter(first)]
        while stack:
            pushed = False
            for source in stack[-1]:
                if source in on_trail:
                    continue  # defensive: cyclic arguments
                parents = sup_in.get(source, ())
                if not parents:
                    yield [*trail, source]
                    continue
                trail.append(source)
                on_trail.add(source)
                stack.append(iter(parents))
                pushed = True
                break
            if not pushed:
                stack.pop()
                on_trail.discard(trail.pop())

    def paths_to_root(
        self, identifier: str, max_paths: int | None = None
    ) -> list[list[str]]:
        """All SupportedBy paths from a node up to any root.

        This is the traversal an assessor performs when judging evidence
        sufficiency with a graphical notation (§VI.E): from an item of
        evidence, trace every chain of claims it ultimately supports.

        ``max_paths`` bounds the enumeration: dense DAGs have exponentially
        many root paths, and a capped prefix degrades gracefully where the
        seed implementation simply hung.  Use :meth:`count_paths_to_root`
        when only the number of paths matters, or :meth:`ancestors` when
        only the set of nodes on the paths matters.
        """
        paths: list[list[str]] = []
        for path in self.iter_paths_to_root(identifier):
            if max_paths is not None and len(paths) >= max_paths:
                break
            paths.append(path)
        return paths

    def count_paths_to_root(self, identifier: str) -> int:
        """Number of SupportedBy paths from this node up to any root.

        Always agrees with ``len(paths_to_root(identifier))``.  On
        acyclic ancestor graphs — the only kind well-formedness accepts —
        this is memoised dynamic programming, O(V + E) where enumerating
        the paths themselves is exponential.  When a cycle is reachable
        the memoisation would be unsound (a count frozen under one DFS
        context is wrong in another), so it falls back to the lazy
        enumeration, which defines the semantics.
        """
        self.node(identifier)
        sup_in = self._in_kind[LinkKind.SUPPORTED_BY]
        memo: dict[str, int] = {}
        on_path: set[str] = {identifier}
        cyclic = False
        # Frames: [node, parent-iterator, accumulated count].
        frames: list[list[Any]] = [
            [identifier, iter(sup_in.get(identifier, ())), 0]
        ]
        while frames:
            frame = frames[-1]
            current, parents, _ = frame
            advanced = False
            for source in parents:
                cached = memo.get(source)
                if cached is not None:
                    frame[2] += cached
                    continue
                if source in on_path:
                    cyclic = True  # back edge: the DP would be unsound
                    continue
                on_path.add(source)
                frames.append([source, iter(sup_in.get(source, ())), 0])
                advanced = True
                break
            if not advanced:
                total = frame[2] if sup_in.get(current) else 1
                memo[current] = total
                frames.pop()
                on_path.discard(current)
                if frames:
                    frames[-1][2] += total
        if cyclic:
            return sum(1 for _ in self.iter_paths_to_root(identifier))
        return memo[identifier]

    def depth(self) -> int:
        """Longest SupportedBy path length from any root, in nodes.

        Memoised per node (the seed re-visited shared subdags once per
        path — exponential on diamond-heavy DAGs) and cached per argument
        version, so repeated calls between mutations are O(1).
        """
        return self.cached("depth", self._compute_depth)

    def _compute_depth(self) -> int:
        roots = self.roots()
        if not roots:
            return 0
        sup = self._out_kind[LinkKind.SUPPORTED_BY]
        # Fast path: assume the graph is acyclic (the only shape
        # well-formedness accepts) and run one memoised DFS.  If a grey
        # (on-path) node turns up mid-walk the memoisation would be
        # unsound — a memo entry frozen under one DFS context must not
        # be reused from another where a longer route is legal — so only
        # then pay for a second pass: strip the back edges (leaving a
        # true DAG) and redo.  The cyclic value is the deterministic
        # longest path ignoring cycle-closing edges.
        memo: dict[str, int] = {}
        if not self._longest_paths(roots, sup, None, memo):
            back = {
                (source, target)
                for source, target, _, _ in
                self._iter_supported_by_back_edges()
            }
            memo = {}
            self._longest_paths(roots, sup, back, memo)
        return max(memo[root.identifier] for root in roots)

    def _longest_paths(
        self,
        roots: list[Node],
        sup: dict[str, dict[str, None]],
        back: set[tuple[str, str]] | None,
        memo: dict[str, int],
    ) -> bool:
        """Fill ``memo`` with longest-path depths for every root.

        With ``back=None`` the graph is assumed acyclic and the walk
        aborts (returns False, ``memo`` unusable) on the first on-path
        revisit; with a back-edge set those edges are skipped and the
        walk always succeeds.
        """
        for root in roots:
            start = root.identifier
            if start in memo:
                continue
            on_path = {start}
            # Frames: [node, child-iterator, best child depth so far].
            frames: list[list[Any]] = [
                [start, iter(sup.get(start, ())), 0]
            ]
            while frames:
                frame = frames[-1]
                current, targets, _ = frame
                advanced = False
                for target in targets:
                    if back is not None and (current, target) in back:
                        continue  # cycle edge
                    cached = memo.get(target)
                    if cached is not None:
                        if cached > frame[2]:
                            frame[2] = cached
                        continue
                    if target in on_path:
                        return False  # cycle: memo would be unsound
                    on_path.add(target)
                    frames.append([target, iter(sup.get(target, ())), 0])
                    advanced = True
                    break
                if not advanced:
                    value = 1 + frame[2]
                    memo[current] = value
                    frames.pop()
                    on_path.discard(current)
                    if frames and value > frames[-1][2]:
                        frames[-1][2] = value
        return True

    def statistics(self) -> dict[str, int]:
        """Node/link counts by kind plus depth — used by the benchmarks.

        Counts read straight from the maintained indices; only ``depth``
        does any traversal, and that is cached per argument version.
        """
        stats: dict[str, int] = {
            f"{node_type.value}_count": len(self._by_type[node_type])
            for node_type in NodeType
        }
        stats["node_count"] = len(self._nodes)
        stats["link_count"] = len(self._links)
        stats["supported_by_count"] = self._kind_counts[
            LinkKind.SUPPORTED_BY
        ]
        stats["in_context_of_count"] = self._kind_counts[
            LinkKind.IN_CONTEXT_OF
        ]
        stats["depth"] = self.depth()
        return stats

    # -- comparison ---------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Argument):
            return NotImplemented
        return (
            set(self._nodes.values()) == set(other._nodes.values())
            and set(self._links) == set(other._links)
        )

    def __hash__(self) -> int:  # pragma: no cover - mutable; not hashed
        raise TypeError("Argument is mutable and unhashable")

    def copy(self, name: str | None = None) -> "Argument":
        """A structural copy (node objects are shared; they are frozen).

        The copy starts with its own version counter, mutation log, and
        derived-structure slot — mutating it never dirties the
        original's caches or indices, and vice versa.
        """
        duplicate = Argument(name=name or self.name)
        with duplicate.batch():
            for node in self._nodes.values():
                duplicate.add_node(node)
            for link in self._links:
                duplicate.add_link(link.source, link.target, link.kind)
        return duplicate

    # -- persistence --------------------------------------------------------

    def save(
        self,
        directory: Any,
        *,
        shard_count: int | None = None,
        compression: str | None = None,
        journal: bool = False,
        force: bool = False,
        search_index: bool | None = None,
    ) -> Any:
        """Write this argument to a sharded store directory.

        Streams nodes and links record-by-record into id-hash shards
        with a checksummed manifest (see :mod:`repro.store`); returns
        the manifest.  ``compression="gzip"`` gzips the shards
        (transparent on read).  Reload with :meth:`load`, or open lazily
        with :class:`repro.store.StoredArgument` for partial hydration.
        ``search_index=True`` seals the token/trigram search sidecar
        (:mod:`repro.store.search`) into the same commit; the default
        (``None``) keeps whatever the store already has — a journal
        fallback rewrite of an indexed store stays indexed, like
        ``shard_count``/``compression``.

        ``journal=True`` makes an editing session cheap: when the store
        already holds a state this argument was saved to (or loaded
        from), only the mutations since — the persisted delta — are
        appended to the store's journal, O(delta) writes instead of an
        O(store) rewrite.  Whenever no safe delta exists (first save, a
        rotated mutation log, or a journal recovered from a torn tail),
        it falls back to the full rewrite transparently — inheriting the
        existing store's ``shard_count``/``compression`` unless
        overridden here, so a session never silently converts the
        on-disk format; either way the on-disk state equals this
        argument afterwards.  One loud exception: if the directory holds
        a *case* store, the fallback raises instead of rewriting — an
        argument-only rewrite would destroy the case's evidence and
        citations (appends are fine: they preserve them).

        **Concurrency.**  A journalled save holds the store's writer
        lease across its conflict check *and* whichever commit it
        decides on, so two processes cannot interleave their
        check-then-write windows.  When the store on disk has moved past
        the generation this argument last saw — another writer
        committed — the save raises
        :class:`~repro.store.StoreConflictError` instead of silently
        rewriting over the other writer's work (the historical lost
        update); reload, reconcile, and retry.  ``force=True`` is the
        explicit escape hatch: it rewrites the store to exactly this
        argument's state regardless of what landed in between.
        """
        from ..store import save_argument  # local: store imports this module

        if journal:
            from ..store.lease import writer_lease

            # One lease spans the append attempt, the conflict check,
            # and the fallback rewrite: the decision "no other writer
            # intervened" stays true through the commit it justifies.
            with writer_lease(self._store_key(directory)):
                manifest = self._append_journal(
                    directory, shard_count=shard_count,
                    compression=compression, force=force,
                )
                if manifest is not None:
                    return manifest
                existing = self._existing_manifest(directory)
                if existing is not None:
                    if existing.get("kind") == "case":
                        from ..store import StoreError

                        raise StoreError(
                            f"store at {directory} holds a case; "
                            "rewriting it as a bare argument would drop "
                            "its evidence and citations — save through "
                            "the AssuranceCase instead (journal appends "
                            "had been preserving them)"
                        )
                    if shard_count is None and isinstance(
                        existing.get("shard_count"), int
                    ):
                        shard_count = existing["shard_count"]
                    if compression is None:
                        compression = existing.get("compression")
                    if search_index is None:
                        search_index = isinstance(
                            existing.get("search_index"), str
                        )
                manifest = save_argument(
                    self, directory, shard_count=shard_count,
                    compression=compression,
                    search_index=bool(search_index),
                )
                self.mark_persisted(directory)
                return manifest
        manifest = save_argument(
            self, directory, shard_count=shard_count,
            compression=compression, search_index=bool(search_index),
        )
        self.mark_persisted(directory)
        return manifest

    def _existing_manifest(self, directory: Any) -> Any:
        """The manifest already in ``directory``, or ``None``.

        Tolerant: an absent or unreadable manifest simply means the
        fallback rewrite proceeds with the caller's (or default)
        settings, replacing whatever is there.
        """
        import json
        import os

        from ..store.format import MANIFEST_NAME  # local: import cycle

        path = os.path.join(self._store_key(directory), MANIFEST_NAME)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        return manifest if isinstance(manifest, dict) else None

    def _append_journal(
        self,
        directory: Any,
        *,
        shard_count: int | None = None,
        compression: str | None = None,
        force: bool = False,
    ) -> Any:
        """Append the persisted delta to the store's journal, if safe.

        Returns the committed manifest, or ``None`` when the caller must
        fall back to a full rewrite.  Safety checks: a baseline delta
        must exist, the store must be openable, and an explicitly
        requested ``shard_count``/``compression`` must match the store's
        (a format change needs the rewrite to take effect).

        The manifest on disk must further be byte-identical to the one
        this argument last saved or loaded — any edit by another handle
        (even a count-neutral one) means our delta would append onto
        state we never saw.  That divergence is a *conflict*, not a
        fallback: it raises :class:`StoreConflictError` so the caller's
        work and the other writer's both survive.  ``force=True``
        downgrades it to ``None`` (the caller's rewrite overwrites
        deliberately).  Runs under the caller's writer lease.
        """
        from ..store import StoreConflictError, StoreError, StoredArgument

        delta = self.persisted_delta(directory)
        if delta is None:
            return None
        _, fingerprint = self._persisted[self._store_key(directory)]
        if fingerprint is None:
            return None
        try:
            stored = StoredArgument(directory)
        except StoreError:
            return None  # store vanished or unreadable: rewrite repairs
        if shard_count is not None and shard_count != stored.shard_count:
            return None
        if compression is not None and compression != stored.compression:
            return None
        # The fingerprint pins the exact store generation; the tail
        # segment's integrity is verified inside append_delta (a torn
        # tail raises StoreError and falls through to the repairing
        # rewrite), so the common path never re-parses the journal.
        if stored.manifest_fingerprint != fingerprint:
            if force:
                return None
            raise StoreConflictError(
                f"store at {directory} changed since this argument last "
                "saw it (manifest fingerprint "
                f"{stored.manifest_fingerprint:08x} != recorded "
                f"{fingerprint:08x}): appending or rewriting would lose "
                "another writer's committed work — reload and reconcile, "
                "or save(..., force=True) to overwrite deliberately"
            )
        try:
            manifest = stored.append_delta(delta)
        except StoreConflictError:
            raise  # never downgrade a conflict to a silent rewrite
        except StoreError:
            return None
        self.mark_persisted(directory)
        return manifest

    @classmethod
    def load(
        cls, directory: Any, *, ignore_torn_tail: bool = False
    ) -> "Argument":
        """Fully hydrate an argument from a store directory.

        The load replays through the batch-mutation layer: one version
        bump for the whole hydration, insertion order exactly as saved
        (journal included).  Called on a subclass, returns an instance
        of that subclass.  ``ignore_torn_tail=True`` recovers from a
        torn final journal segment — a crash mid-append — by dropping
        exactly that segment (see :mod:`repro.store.journal`).
        """
        from ..store import load_argument  # local: store imports this module

        return load_argument(
            directory, into=cls, ignore_torn_tail=ignore_torn_tail
        )

    def __str__(self) -> str:
        lines = [f"Argument {self.name!r}:"]
        lines.extend(f"  {node}" for node in self._nodes.values())
        lines.extend(f"  {link}" for link in self._links)
        return "\n".join(lines)
