"""The assurance-argument graph — an iterative, indexed graph engine.

Denney & Pai formalise a partial safety case argument structure as a tuple
``⟨N, l, t, →⟩`` — nodes, a type-labelling function, a content function,
and a connector relation (§III.I).  :class:`Argument` realises exactly that
structure, with the connector relation split into GSN's two arrows:

* **SupportedBy** (``→`` solid arrow): inferential/evidential support;
* **InContextOf** (``⇢`` hollow arrow): contextual attachment.

The class offers the graph services every other layer consumes: traversal,
root/leaf discovery, cycle detection, path tracing (the 'tracing a path in
a graph' that §VI.E says graphical notations are thought to ease), subtree
extraction, and structural statistics.

Complexity guarantees
=====================

Tool-generated assurance cases reach tens of thousands of nodes (Resolute
derives cases from architecture models; Isabelle/SACM mechanises similarly
large ones), so every traversal below is **iterative** — no graph shape can
raise :class:`RecursionError` — and the hot paths are backed by indices
maintained incrementally by ``add_*``/``remove_*``/``replace_node``:

========================  ==========================================
Operation                 Cost (V nodes, E links, answer size K)
========================  ==========================================
``add_node``              O(1)
``add_link``              O(1) — duplicate check via a link set
``remove_link``           O(1) amortised (ordered-dict deletes)
``remove_node``           O(degree)
``replace_node``          O(1) — keeps the node-type index consistent
``node`` / ``in``         O(1)
``nodes_of_type``         O(K) via the node-type index
``children``/``parents``  O(degree) via per-kind adjacency
``roots`` / ``leaves``    O(V) with O(1) per-node degree checks
``walk`` / ``subtree``    O(V + E) explicit-stack DFS
``find_cycle``            O(V + E) iterative colouring DFS; the
                          returned cycle is a *verified closed*
                          SupportedBy cycle
``depth``                 O(V + E) memoised longest path (cached until
                          the next mutation; the seed implementation
                          re-visited shared subdags exponentially)
``ancestors``             O(V + E) reverse reachability
``count_paths_to_root``   O(V + E) memoised path counting on DAGs;
                          falls back to enumeration if a cycle is
                          reachable (always agrees with the
                          enumeration)
``iter_paths_to_root``    lazy, O(depth) memory; enumerating all paths
                          is inherently exponential on dense DAGs, so
                          ``paths_to_root`` takes a ``max_paths`` guard
``statistics``            O(1) beyond the (cached) depth — counts come
                          from maintained indices
========================  ==========================================

On cyclic graphs (which well-formedness rejects), ``depth`` first strips
the back edges of an insertion-order DFS — making the memoisation sound
and the result deterministic — and ``count_paths_to_root`` abandons the
DP for the exact enumeration; on acyclic graphs both match the seed's
semantics exactly, and otherwise they degrade gracefully instead of
recursing or silently drifting.

Mutations bump :attr:`Argument.version` and clear the internal cache, so
longer-lived derived structures (e.g. the query planner's indices in
:mod:`repro.core.query`) can detect staleness cheaply via
:meth:`Argument.cached`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator

from .nodes import Node, NodeType

__all__ = ["LinkKind", "Link", "Argument", "ArgumentError"]


class LinkKind(enum.Enum):
    """The two GSN connector kinds."""

    SUPPORTED_BY = "supported_by"
    IN_CONTEXT_OF = "in_context_of"


@dataclass(frozen=True, slots=True)
class Link:
    """A directed connector from ``source`` to ``target`` (identifiers)."""

    source: str
    target: str
    kind: LinkKind

    def __str__(self) -> str:
        arrow = "->" if self.kind is LinkKind.SUPPORTED_BY else "~>"
        return f"{self.source} {arrow} {self.target}"


class ArgumentError(ValueError):
    """Raised for structural violations (unknown nodes, duplicates, etc.)."""


class Argument:
    """A mutable assurance-argument graph.

    Mutation is restricted to ``add_node``/``add_link``/``remove_*`` so the
    internal indices stay consistent.  Equality compares node sets and link
    sets (used by the notation round-trip property tests).
    """

    def __init__(self, name: str = "argument") -> None:
        self.name = name
        self._nodes: dict[str, Node] = {}
        # Insertion-ordered link set: O(1) membership, deletion keeps order.
        self._links: dict[Link, None] = {}
        self._out: dict[str, dict[Link, None]] = {}
        self._in: dict[str, dict[Link, None]] = {}
        # Per-kind adjacency: kind -> source/target id -> neighbour ids.
        self._out_kind: dict[LinkKind, dict[str, dict[str, None]]] = {
            kind: {} for kind in LinkKind
        }
        self._in_kind: dict[LinkKind, dict[str, dict[str, None]]] = {
            kind: {} for kind in LinkKind
        }
        # Node-type index (per-type insertion order == global order).
        self._by_type: dict[NodeType, dict[str, None]] = {
            node_type: {} for node_type in NodeType
        }
        self._kind_counts: dict[LinkKind, int] = {
            kind: 0 for kind in LinkKind
        }
        self._version = 0
        self._cache: dict[str, Any] = {}

    # -- cache/version bookkeeping ----------------------------------------

    @property
    def version(self) -> int:
        """Monotonic mutation counter; bumped by every structural change."""
        return self._version

    def cached(self, key: str, build: Callable[[], Any]) -> Any:
        """Memoise ``build()`` until the next mutation.

        Derived structures (depth, query indices) register here; the cache
        is cleared wholesale by :meth:`_invalidate`, which every mutator
        calls, so staleness is impossible by construction.
        """
        try:
            return self._cache[key]
        except KeyError:
            value = self._cache[key] = build()
            return value

    def _invalidate(self) -> None:
        self._version += 1
        self._cache.clear()

    # -- construction ---------------------------------------------------

    def add_node(self, node: Node) -> Node:
        """Add a node; identifiers must be unique."""
        if node.identifier in self._nodes:
            raise ArgumentError(
                f"duplicate node identifier {node.identifier!r}"
            )
        self._nodes[node.identifier] = node
        self._out.setdefault(node.identifier, {})
        self._in.setdefault(node.identifier, {})
        self._by_type[node.node_type][node.identifier] = None
        self._invalidate()
        return node

    def add_link(
        self, source: str, target: str, kind: LinkKind
    ) -> Link:
        """Connect two existing nodes; parallel duplicate links are rejected."""
        if source not in self._nodes:
            raise ArgumentError(f"unknown source node {source!r}")
        if target not in self._nodes:
            raise ArgumentError(f"unknown target node {target!r}")
        if source == target:
            raise ArgumentError(f"self-link on {source!r}")
        link = Link(source, target, kind)
        if link in self._links:
            raise ArgumentError(f"duplicate link {link}")
        self._links[link] = None
        self._out[source][link] = None
        self._in[target][link] = None
        self._out_kind[kind].setdefault(source, {})[target] = None
        self._in_kind[kind].setdefault(target, {})[source] = None
        self._kind_counts[kind] += 1
        self._invalidate()
        return link

    def supported_by(self, source: str, target: str) -> Link:
        """Shorthand for a SupportedBy connector."""
        return self.add_link(source, target, LinkKind.SUPPORTED_BY)

    def in_context_of(self, source: str, target: str) -> Link:
        """Shorthand for an InContextOf connector."""
        return self.add_link(source, target, LinkKind.IN_CONTEXT_OF)

    def replace_node(self, node: Node) -> None:
        """Swap in a new node object under an existing identifier."""
        old = self._nodes.get(node.identifier)
        if old is None:
            raise ArgumentError(f"unknown node {node.identifier!r}")
        self._nodes[node.identifier] = node
        if old.node_type is not node.node_type:
            del self._by_type[old.node_type][node.identifier]
            # Rebuild the destination bucket so per-type order keeps
            # matching global insertion order (retype is rare; O(V)).
            self._by_type[node.node_type] = {
                identifier: None
                for identifier, existing in self._nodes.items()
                if existing.node_type is node.node_type
            }
        self._invalidate()

    def remove_link(self, link: Link) -> None:
        """Remove one connector."""
        if link not in self._links:
            raise ArgumentError(f"no such link {link}")
        del self._links[link]
        del self._out[link.source][link]
        del self._in[link.target][link]
        del self._out_kind[link.kind][link.source][link.target]
        del self._in_kind[link.kind][link.target][link.source]
        self._kind_counts[link.kind] -= 1
        self._invalidate()

    def remove_node(self, identifier: str) -> None:
        """Remove a node and every connector touching it."""
        node = self._nodes.get(identifier)
        if node is None:
            raise ArgumentError(f"unknown node {identifier!r}")
        for link in list(self._out[identifier]) + list(self._in[identifier]):
            if link in self._links:
                self.remove_link(link)
        del self._nodes[identifier]
        del self._out[identifier]
        del self._in[identifier]
        del self._by_type[node.node_type][identifier]
        for kind in LinkKind:
            self._out_kind[kind].pop(identifier, None)
            self._in_kind[kind].pop(identifier, None)
        self._invalidate()

    # -- lookup -----------------------------------------------------------

    def node(self, identifier: str) -> Node:
        """Fetch a node by identifier."""
        try:
            return self._nodes[identifier]
        except KeyError:
            raise ArgumentError(f"unknown node {identifier!r}") from None

    def __contains__(self, identifier: str) -> bool:
        return identifier in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def nodes(self) -> list[Node]:
        """All nodes, in insertion order."""
        return list(self._nodes.values())

    @property
    def links(self) -> list[Link]:
        """All links, in insertion order."""
        return list(self._links)

    def nodes_of_type(self, node_type: NodeType) -> list[Node]:
        """All nodes of one kind (indexed; insertion order preserved)."""
        return [
            self._nodes[identifier]
            for identifier in self._by_type[node_type]
        ]

    @property
    def goals(self) -> list[Node]:
        return self.nodes_of_type(NodeType.GOAL)

    @property
    def strategies(self) -> list[Node]:
        return self.nodes_of_type(NodeType.STRATEGY)

    @property
    def solutions(self) -> list[Node]:
        return self.nodes_of_type(NodeType.SOLUTION)

    # -- structure ---------------------------------------------------------

    def _out_ids(
        self, identifier: str, kind: LinkKind
    ) -> Iterable[str]:
        """Target identifiers of outgoing links of one kind."""
        return self._out_kind[kind].get(identifier, ())

    def _in_ids(
        self, identifier: str, kind: LinkKind
    ) -> Iterable[str]:
        """Source identifiers of incoming links of one kind."""
        return self._in_kind[kind].get(identifier, ())

    def children(
        self, identifier: str, kind: LinkKind | None = None
    ) -> list[Node]:
        """Targets of outgoing links (optionally of one kind)."""
        if kind is None:
            return [
                self._nodes[link.target]
                for link in self._out.get(identifier, ())
            ]
        return [
            self._nodes[target] for target in self._out_ids(identifier, kind)
        ]

    def parents(
        self, identifier: str, kind: LinkKind | None = None
    ) -> list[Node]:
        """Sources of incoming links (optionally of one kind)."""
        if kind is None:
            return [
                self._nodes[link.source]
                for link in self._in.get(identifier, ())
            ]
        return [
            self._nodes[source] for source in self._in_ids(identifier, kind)
        ]

    def supporters(self, identifier: str) -> list[Node]:
        """Nodes this node cites as support (SupportedBy targets)."""
        return self.children(identifier, LinkKind.SUPPORTED_BY)

    def context_of(self, identifier: str) -> list[Node]:
        """Contextual nodes attached to this node."""
        return self.children(identifier, LinkKind.IN_CONTEXT_OF)

    def roots(self) -> list[Node]:
        """Nodes with no incoming SupportedBy link and claim-like type.

        A well-formed safety argument has exactly one root goal; fragments
        under construction may have several.
        """
        supported = self._in_kind[LinkKind.SUPPORTED_BY]
        return [
            node
            for node in self._nodes.values()
            if node.node_type.is_claim_like
            and not supported.get(node.identifier)
        ]

    def leaves(self) -> list[Node]:
        """Claim-like or strategy nodes with no outgoing SupportedBy link."""
        out = self._out_kind[LinkKind.SUPPORTED_BY]
        return [
            node
            for node in self._nodes.values()
            if node.node_type in (
                NodeType.GOAL, NodeType.STRATEGY, NodeType.AWAY_GOAL
            )
            and not out.get(node.identifier)
        ]

    def walk(
        self, start: str, kind: LinkKind | None = None
    ) -> Iterator[Node]:
        """Depth-first pre-order walk of the support graph from ``start``."""
        seen: set[str] = set()
        stack = [start]
        while stack:
            identifier = stack.pop()
            if identifier in seen:
                continue
            seen.add(identifier)
            node = self.node(identifier)
            yield node
            if kind is None:
                targets = [
                    link.target for link in self._out.get(identifier, ())
                ]
            else:
                targets = list(self._out_ids(identifier, kind))
            stack.extend(reversed(targets))

    def subtree(self, start: str) -> "Argument":
        """A new argument containing everything reachable from ``start``."""
        fragment = Argument(name=f"{self.name}/{start}")
        members = {node.identifier for node in self.walk(start)}
        for identifier in members:
            fragment.add_node(self._nodes[identifier])
        for link in self._links:
            if link.source in members and link.target in members:
                fragment.add_link(link.source, link.target, link.kind)
        return fragment

    def ancestors(
        self, identifier: str, kind: LinkKind | None = LinkKind.SUPPORTED_BY
    ) -> set[str]:
        """Every node (including ``identifier``) that can reach this node.

        Reverse reachability over incoming links of the given kind — on an
        acyclic graph this equals the union of all ``paths_to_root`` nodes,
        computed in O(V + E) instead of by path enumeration.
        """
        self.node(identifier)
        seen = {identifier}
        stack = [identifier]
        while stack:
            current = stack.pop()
            if kind is None:
                sources: Iterable[str] = (
                    link.source for link in self._in.get(current, ())
                )
            else:
                sources = self._in_ids(current, kind)
            for source in sources:
                if source not in seen:
                    seen.add(source)
                    stack.append(source)
        return seen

    def _iter_supported_by_back_edges(
        self,
    ) -> Iterator[tuple[str, str, list[str], dict[str, int]]]:
        """Yield every SupportedBy back edge of an insertion-order DFS.

        One white/grey/black colouring DFS shared by :meth:`find_cycle`
        and :meth:`_back_edges`.  Each yield is ``(source, target, path,
        path_index)`` where ``path``/``path_index`` are the *live* DFS
        stack state: ``path[path_index[target]:]`` is the closed cycle
        the back edge completes.
        """
        sup = self._out_kind[LinkKind.SUPPORTED_BY]
        colour: dict[str, int] = {}  # 0/absent unvisited, 1 on stack, 2 done
        path: list[str] = []
        path_index: dict[str, int] = {}
        for start in self._nodes:
            if colour.get(start, 0):
                continue
            colour[start] = 1
            path_index[start] = len(path)
            path.append(start)
            stack: list[tuple[str, Iterator[str]]] = [
                (start, iter(sup.get(start, ())))
            ]
            while stack:
                identifier, targets = stack[-1]
                advanced = False
                for target in targets:
                    state = colour.get(target, 0)
                    if state == 1:
                        yield identifier, target, path, path_index
                    elif state == 0:
                        colour[target] = 1
                        path_index[target] = len(path)
                        path.append(target)
                        stack.append((target, iter(sup.get(target, ()))))
                        advanced = True
                        break
                if not advanced:
                    colour[identifier] = 2
                    path.pop()
                    del path_index[identifier]
                    stack.pop()

    def find_cycle(self) -> list[str] | None:
        """A SupportedBy cycle as a node-identifier list, or None.

        Cyclic support is the graph form of *begging the question*: a claim
        ultimately cited in its own support.  The returned list
        ``[c0, c1, ..., ck]`` is a **verified closed cycle**: every
        consecutive pair is a SupportedBy link and so is ``ck -> c0``.
        """
        for _, target, path, path_index in \
                self._iter_supported_by_back_edges():
            # Back edge to a DFS-stack ancestor: the slice of the current
            # path from the ancestor down to here is a closed SupportedBy
            # cycle by construction.
            return path[path_index[target]:]
        return None

    def iter_paths_to_root(self, identifier: str) -> Iterator[list[str]]:
        """Lazily yield SupportedBy paths from a node up to any root.

        Explicit-stack DFS over incoming SupportedBy links; each yielded
        path runs leaf-first (``[identifier, ..., root]``).  Memory is
        O(longest path); the number of paths can still be exponential on
        dense DAGs, which is why :meth:`paths_to_root` takes ``max_paths``.
        """
        # Validate eagerly, at the call site — not on first next().
        self.node(identifier)
        return self._iter_paths_to_root(identifier)

    def _iter_paths_to_root(self, identifier: str) -> Iterator[list[str]]:
        sup_in = self._in_kind[LinkKind.SUPPORTED_BY]
        first = sup_in.get(identifier, ())
        if not first:
            yield [identifier]
            return
        trail = [identifier]
        on_trail = {identifier}
        stack: list[Iterator[str]] = [iter(first)]
        while stack:
            pushed = False
            for source in stack[-1]:
                if source in on_trail:
                    continue  # defensive: cyclic arguments
                parents = sup_in.get(source, ())
                if not parents:
                    yield [*trail, source]
                    continue
                trail.append(source)
                on_trail.add(source)
                stack.append(iter(parents))
                pushed = True
                break
            if not pushed:
                stack.pop()
                on_trail.discard(trail.pop())

    def paths_to_root(
        self, identifier: str, max_paths: int | None = None
    ) -> list[list[str]]:
        """All SupportedBy paths from a node up to any root.

        This is the traversal an assessor performs when judging evidence
        sufficiency with a graphical notation (§VI.E): from an item of
        evidence, trace every chain of claims it ultimately supports.

        ``max_paths`` bounds the enumeration: dense DAGs have exponentially
        many root paths, and a capped prefix degrades gracefully where the
        seed implementation simply hung.  Use :meth:`count_paths_to_root`
        when only the number of paths matters, or :meth:`ancestors` when
        only the set of nodes on the paths matters.
        """
        paths: list[list[str]] = []
        for path in self.iter_paths_to_root(identifier):
            if max_paths is not None and len(paths) >= max_paths:
                break
            paths.append(path)
        return paths

    def count_paths_to_root(self, identifier: str) -> int:
        """Number of SupportedBy paths from this node up to any root.

        Always agrees with ``len(paths_to_root(identifier))``.  On
        acyclic ancestor graphs — the only kind well-formedness accepts —
        this is memoised dynamic programming, O(V + E) where enumerating
        the paths themselves is exponential.  When a cycle is reachable
        the memoisation would be unsound (a count frozen under one DFS
        context is wrong in another), so it falls back to the lazy
        enumeration, which defines the semantics.
        """
        self.node(identifier)
        sup_in = self._in_kind[LinkKind.SUPPORTED_BY]
        memo: dict[str, int] = {}
        on_path: set[str] = {identifier}
        cyclic = False
        # Frames: [node, parent-iterator, accumulated count].
        frames: list[list[Any]] = [
            [identifier, iter(sup_in.get(identifier, ())), 0]
        ]
        while frames:
            frame = frames[-1]
            current, parents, _ = frame
            advanced = False
            for source in parents:
                cached = memo.get(source)
                if cached is not None:
                    frame[2] += cached
                    continue
                if source in on_path:
                    cyclic = True  # back edge: the DP would be unsound
                    continue
                on_path.add(source)
                frames.append([source, iter(sup_in.get(source, ())), 0])
                advanced = True
                break
            if not advanced:
                total = frame[2] if sup_in.get(current) else 1
                memo[current] = total
                frames.pop()
                on_path.discard(current)
                if frames:
                    frames[-1][2] += total
        if cyclic:
            return sum(1 for _ in self.iter_paths_to_root(identifier))
        return memo[identifier]

    def depth(self) -> int:
        """Longest SupportedBy path length from any root, in nodes.

        Memoised per node (the seed re-visited shared subdags once per
        path — exponential on diamond-heavy DAGs) and cached per argument
        version, so repeated calls between mutations are O(1).
        """
        return self.cached("depth", self._compute_depth)

    def _compute_depth(self) -> int:
        roots = self.roots()
        if not roots:
            return 0
        sup = self._out_kind[LinkKind.SUPPORTED_BY]
        # Fast path: assume the graph is acyclic (the only shape
        # well-formedness accepts) and run one memoised DFS.  If a grey
        # (on-path) node turns up mid-walk the memoisation would be
        # unsound — a memo entry frozen under one DFS context must not
        # be reused from another where a longer route is legal — so only
        # then pay for a second pass: strip the back edges (leaving a
        # true DAG) and redo.  The cyclic value is the deterministic
        # longest path ignoring cycle-closing edges.
        memo: dict[str, int] = {}
        if not self._longest_paths(roots, sup, None, memo):
            back = {
                (source, target)
                for source, target, _, _ in
                self._iter_supported_by_back_edges()
            }
            memo = {}
            self._longest_paths(roots, sup, back, memo)
        return max(memo[root.identifier] for root in roots)

    def _longest_paths(
        self,
        roots: list[Node],
        sup: dict[str, dict[str, None]],
        back: set[tuple[str, str]] | None,
        memo: dict[str, int],
    ) -> bool:
        """Fill ``memo`` with longest-path depths for every root.

        With ``back=None`` the graph is assumed acyclic and the walk
        aborts (returns False, ``memo`` unusable) on the first on-path
        revisit; with a back-edge set those edges are skipped and the
        walk always succeeds.
        """
        for root in roots:
            start = root.identifier
            if start in memo:
                continue
            on_path = {start}
            # Frames: [node, child-iterator, best child depth so far].
            frames: list[list[Any]] = [
                [start, iter(sup.get(start, ())), 0]
            ]
            while frames:
                frame = frames[-1]
                current, targets, _ = frame
                advanced = False
                for target in targets:
                    if back is not None and (current, target) in back:
                        continue  # cycle edge
                    cached = memo.get(target)
                    if cached is not None:
                        if cached > frame[2]:
                            frame[2] = cached
                        continue
                    if target in on_path:
                        return False  # cycle: memo would be unsound
                    on_path.add(target)
                    frames.append([target, iter(sup.get(target, ())), 0])
                    advanced = True
                    break
                if not advanced:
                    value = 1 + frame[2]
                    memo[current] = value
                    frames.pop()
                    on_path.discard(current)
                    if frames and value > frames[-1][2]:
                        frames[-1][2] = value
        return True

    def statistics(self) -> dict[str, int]:
        """Node/link counts by kind plus depth — used by the benchmarks.

        Counts read straight from the maintained indices; only ``depth``
        does any traversal, and that is cached per argument version.
        """
        stats: dict[str, int] = {
            f"{node_type.value}_count": len(self._by_type[node_type])
            for node_type in NodeType
        }
        stats["node_count"] = len(self._nodes)
        stats["link_count"] = len(self._links)
        stats["supported_by_count"] = self._kind_counts[
            LinkKind.SUPPORTED_BY
        ]
        stats["in_context_of_count"] = self._kind_counts[
            LinkKind.IN_CONTEXT_OF
        ]
        stats["depth"] = self.depth()
        return stats

    # -- comparison ---------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Argument):
            return NotImplemented
        return (
            set(self._nodes.values()) == set(other._nodes.values())
            and set(self._links) == set(other._links)
        )

    def __hash__(self) -> int:  # pragma: no cover - mutable; not hashed
        raise TypeError("Argument is mutable and unhashable")

    def copy(self, name: str | None = None) -> "Argument":
        """A structural copy (node objects are shared; they are frozen)."""
        duplicate = Argument(name=name or self.name)
        for node in self._nodes.values():
            duplicate.add_node(node)
        for link in self._links:
            duplicate.add_link(link.source, link.target, link.kind)
        return duplicate

    def __str__(self) -> str:
        lines = [f"Argument {self.name!r}:"]
        lines.extend(f"  {node}" for node in self._nodes.values())
        lines.extend(f"  {link}" for link in self._links)
        return "\n".join(lines)
