"""The assurance-argument graph.

Denney & Pai formalise a partial safety case argument structure as a tuple
``⟨N, l, t, →⟩`` — nodes, a type-labelling function, a content function,
and a connector relation (§III.I).  :class:`Argument` realises exactly that
structure, with the connector relation split into GSN's two arrows:

* **SupportedBy** (``→`` solid arrow): inferential/evidential support;
* **InContextOf** (``⇢`` hollow arrow): contextual attachment.

The class offers the graph services every other layer consumes: traversal,
root/leaf discovery, cycle detection, path tracing (the 'tracing a path in
a graph' that §VI.E says graphical notations are thought to ease), subtree
extraction, and structural statistics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence

from .nodes import Node, NodeType

__all__ = ["LinkKind", "Link", "Argument", "ArgumentError"]


class LinkKind(enum.Enum):
    """The two GSN connector kinds."""

    SUPPORTED_BY = "supported_by"
    IN_CONTEXT_OF = "in_context_of"


@dataclass(frozen=True, slots=True)
class Link:
    """A directed connector from ``source`` to ``target`` (identifiers)."""

    source: str
    target: str
    kind: LinkKind

    def __str__(self) -> str:
        arrow = "->" if self.kind is LinkKind.SUPPORTED_BY else "~>"
        return f"{self.source} {arrow} {self.target}"


class ArgumentError(ValueError):
    """Raised for structural violations (unknown nodes, duplicates, etc.)."""


class Argument:
    """A mutable assurance-argument graph.

    Mutation is restricted to ``add_node``/``add_link``/``remove_*`` so the
    internal indices stay consistent.  Equality compares node sets and link
    sets (used by the notation round-trip property tests).
    """

    def __init__(self, name: str = "argument") -> None:
        self.name = name
        self._nodes: dict[str, Node] = {}
        self._links: list[Link] = []
        self._out: dict[str, list[Link]] = {}
        self._in: dict[str, list[Link]] = {}

    # -- construction ---------------------------------------------------

    def add_node(self, node: Node) -> Node:
        """Add a node; identifiers must be unique."""
        if node.identifier in self._nodes:
            raise ArgumentError(
                f"duplicate node identifier {node.identifier!r}"
            )
        self._nodes[node.identifier] = node
        self._out.setdefault(node.identifier, [])
        self._in.setdefault(node.identifier, [])
        return node

    def add_link(
        self, source: str, target: str, kind: LinkKind
    ) -> Link:
        """Connect two existing nodes; parallel duplicate links are rejected."""
        if source not in self._nodes:
            raise ArgumentError(f"unknown source node {source!r}")
        if target not in self._nodes:
            raise ArgumentError(f"unknown target node {target!r}")
        if source == target:
            raise ArgumentError(f"self-link on {source!r}")
        link = Link(source, target, kind)
        if link in self._links:
            raise ArgumentError(f"duplicate link {link}")
        self._links.append(link)
        self._out[source].append(link)
        self._in[target].append(link)
        return link

    def supported_by(self, source: str, target: str) -> Link:
        """Shorthand for a SupportedBy connector."""
        return self.add_link(source, target, LinkKind.SUPPORTED_BY)

    def in_context_of(self, source: str, target: str) -> Link:
        """Shorthand for an InContextOf connector."""
        return self.add_link(source, target, LinkKind.IN_CONTEXT_OF)

    def replace_node(self, node: Node) -> None:
        """Swap in a new node object under an existing identifier."""
        if node.identifier not in self._nodes:
            raise ArgumentError(f"unknown node {node.identifier!r}")
        self._nodes[node.identifier] = node

    def remove_link(self, link: Link) -> None:
        """Remove one connector."""
        try:
            self._links.remove(link)
        except ValueError:
            raise ArgumentError(f"no such link {link}") from None
        self._out[link.source].remove(link)
        self._in[link.target].remove(link)

    def remove_node(self, identifier: str) -> None:
        """Remove a node and every connector touching it."""
        if identifier not in self._nodes:
            raise ArgumentError(f"unknown node {identifier!r}")
        for link in list(self._out[identifier]) + list(self._in[identifier]):
            if link in self._links:
                self.remove_link(link)
        del self._nodes[identifier]
        del self._out[identifier]
        del self._in[identifier]

    # -- lookup -----------------------------------------------------------

    def node(self, identifier: str) -> Node:
        """Fetch a node by identifier."""
        try:
            return self._nodes[identifier]
        except KeyError:
            raise ArgumentError(f"unknown node {identifier!r}") from None

    def __contains__(self, identifier: str) -> bool:
        return identifier in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def nodes(self) -> list[Node]:
        """All nodes, in insertion order."""
        return list(self._nodes.values())

    @property
    def links(self) -> list[Link]:
        """All links, in insertion order."""
        return list(self._links)

    def nodes_of_type(self, node_type: NodeType) -> list[Node]:
        """All nodes of one kind."""
        return [n for n in self._nodes.values() if n.node_type is node_type]

    @property
    def goals(self) -> list[Node]:
        return self.nodes_of_type(NodeType.GOAL)

    @property
    def strategies(self) -> list[Node]:
        return self.nodes_of_type(NodeType.STRATEGY)

    @property
    def solutions(self) -> list[Node]:
        return self.nodes_of_type(NodeType.SOLUTION)

    # -- structure ---------------------------------------------------------

    def children(
        self, identifier: str, kind: LinkKind | None = None
    ) -> list[Node]:
        """Targets of outgoing links (optionally of one kind)."""
        return [
            self._nodes[link.target]
            for link in self._out.get(identifier, [])
            if kind is None or link.kind is kind
        ]

    def parents(
        self, identifier: str, kind: LinkKind | None = None
    ) -> list[Node]:
        """Sources of incoming links (optionally of one kind)."""
        return [
            self._nodes[link.source]
            for link in self._in.get(identifier, [])
            if kind is None or link.kind is kind
        ]

    def supporters(self, identifier: str) -> list[Node]:
        """Nodes this node cites as support (SupportedBy targets)."""
        return self.children(identifier, LinkKind.SUPPORTED_BY)

    def context_of(self, identifier: str) -> list[Node]:
        """Contextual nodes attached to this node."""
        return self.children(identifier, LinkKind.IN_CONTEXT_OF)

    def roots(self) -> list[Node]:
        """Nodes with no incoming SupportedBy link and claim-like type.

        A well-formed safety argument has exactly one root goal; fragments
        under construction may have several.
        """
        supported = {
            link.target
            for link in self._links
            if link.kind is LinkKind.SUPPORTED_BY
        }
        return [
            node
            for node in self._nodes.values()
            if node.node_type.is_claim_like
            and node.identifier not in supported
        ]

    def leaves(self) -> list[Node]:
        """Claim-like or strategy nodes with no outgoing SupportedBy link."""
        return [
            node
            for node in self._nodes.values()
            if node.node_type in (
                NodeType.GOAL, NodeType.STRATEGY, NodeType.AWAY_GOAL
            )
            and not self.supporters(node.identifier)
        ]

    def walk(
        self, start: str, kind: LinkKind | None = None
    ) -> Iterator[Node]:
        """Depth-first pre-order walk of the support graph from ``start``."""
        seen: set[str] = set()
        stack = [start]
        while stack:
            identifier = stack.pop()
            if identifier in seen:
                continue
            seen.add(identifier)
            node = self.node(identifier)
            yield node
            targets = [
                link.target
                for link in self._out.get(identifier, [])
                if kind is None or link.kind is kind
            ]
            stack.extend(reversed(targets))

    def subtree(self, start: str) -> "Argument":
        """A new argument containing everything reachable from ``start``."""
        fragment = Argument(name=f"{self.name}/{start}")
        members = {node.identifier for node in self.walk(start)}
        for identifier in members:
            fragment.add_node(self._nodes[identifier])
        for link in self._links:
            if link.source in members and link.target in members:
                fragment.add_link(link.source, link.target, link.kind)
        return fragment

    def find_cycle(self) -> list[str] | None:
        """A SupportedBy cycle as a node-identifier list, or None.

        Cyclic support is the graph form of *begging the question*: a claim
        ultimately cited in its own support.
        """
        colour: dict[str, int] = {}  # 0 unvisited, 1 in-progress, 2 done
        parent: dict[str, str] = {}

        def visit(identifier: str) -> list[str] | None:
            colour[identifier] = 1
            for link in self._out.get(identifier, []):
                if link.kind is not LinkKind.SUPPORTED_BY:
                    continue
                target = link.target
                if colour.get(target, 0) == 1:
                    # Reconstruct the cycle.
                    cycle = [target, identifier]
                    current = identifier
                    while parent.get(current) and current != target:
                        current = parent[current]
                        cycle.append(current)
                        if current == target:
                            break
                    cycle.reverse()
                    return cycle
                if colour.get(target, 0) == 0:
                    parent[target] = identifier
                    found = visit(target)
                    if found:
                        return found
            colour[identifier] = 2
            return None

        for identifier in self._nodes:
            if colour.get(identifier, 0) == 0:
                found = visit(identifier)
                if found:
                    return found
        return None

    def paths_to_root(self, identifier: str) -> list[list[str]]:
        """All SupportedBy paths from a node up to any root.

        This is the traversal an assessor performs when judging evidence
        sufficiency with a graphical notation (§VI.E): from an item of
        evidence, trace every chain of claims it ultimately supports.
        """
        self.node(identifier)
        paths: list[list[str]] = []

        def climb(current: str, trail: list[str]) -> None:
            incoming = [
                link.source
                for link in self._in.get(current, [])
                if link.kind is LinkKind.SUPPORTED_BY
            ]
            if not incoming:
                paths.append(list(trail))
                return
            for source in incoming:
                if source in trail:
                    continue  # defensive: cyclic arguments
                trail.append(source)
                climb(source, trail)
                trail.pop()

        climb(identifier, [identifier])
        return paths

    def depth(self) -> int:
        """Longest SupportedBy path length from any root, in nodes."""
        roots = self.roots()
        if not roots:
            return 0
        best = 0
        for root in roots:
            best = max(best, self._depth_from(root.identifier, set()))
        return best

    def _depth_from(self, identifier: str, seen: set[str]) -> int:
        if identifier in seen:
            return 0
        seen = seen | {identifier}
        supports = self.supporters(identifier)
        if not supports:
            return 1
        return 1 + max(
            self._depth_from(child.identifier, seen) for child in supports
        )

    def statistics(self) -> dict[str, int]:
        """Node/link counts by kind plus depth — used by the benchmarks."""
        stats: dict[str, int] = {
            f"{node_type.value}_count": len(self.nodes_of_type(node_type))
            for node_type in NodeType
        }
        stats["node_count"] = len(self._nodes)
        stats["link_count"] = len(self._links)
        stats["supported_by_count"] = sum(
            1 for link in self._links if link.kind is LinkKind.SUPPORTED_BY
        )
        stats["in_context_of_count"] = sum(
            1 for link in self._links if link.kind is LinkKind.IN_CONTEXT_OF
        )
        stats["depth"] = self.depth()
        return stats

    # -- comparison ---------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Argument):
            return NotImplemented
        return (
            set(self._nodes.values()) == set(other._nodes.values())
            and set(self._links) == set(other._links)
        )

    def __hash__(self) -> int:  # pragma: no cover - mutable; not hashed
        raise TypeError("Argument is mutable and unhashable")

    def copy(self, name: str | None = None) -> "Argument":
        """A structural copy (node objects are shared; they are frozen)."""
        duplicate = Argument(name=name or self.name)
        for node in self._nodes.values():
            duplicate.add_node(node)
        for link in self._links:
            duplicate.add_link(link.source, link.target, link.kind)
        return duplicate

    def __str__(self) -> str:
        lines = [f"Argument {self.name!r}:"]
        lines.extend(f"  {node}" for node in self._nodes.values())
        lines.extend(f"  {link}" for link in self._links)
        return "\n".join(lines)
