"""Semantic metadata annotations for argument nodes.

Denney, Naylor & Pai propose that, 'in addition to the descriptive text',
developers 'associate nodes with metadata' following the grammar
(§III.H)::

    attribute ::= attributeName param*
    param     ::= String | Int | Nat | Float | Bool | userDefinedEnum

with user-defined enumerations such as ``element ::= aileron | elevator |
flaps``.  This module implements that annotation layer:

* :class:`ParamType` — the parameter type algebra, including named
  enumerations with declared member sets;
* :class:`AttributeSchema` — a typed attribute declaration;
* :class:`Ontology` — the set of declared enums and attributes (the
  'cost of creating the necessary ontologies' the authors acknowledge);
* :func:`annotate` / :func:`validate_annotations` — attach and check
  node metadata against an ontology.

The structured query engine over these annotations lives in
:mod:`repro.core.query`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from .argument import Argument
from .nodes import Node

__all__ = [
    "BaseType",
    "EnumType",
    "ParamType",
    "AttributeSchema",
    "Ontology",
    "AnnotationError",
    "annotate",
    "validate_annotations",
    "aviation_ontology",
]


class BaseType(enum.Enum):
    """The built-in parameter types from the Denney–Naylor–Pai grammar."""

    STRING = "String"
    INT = "Int"
    NAT = "Nat"
    FLOAT = "Float"
    BOOL = "Bool"

    def accepts(self, value: Any) -> bool:
        """Dynamic type check for one value."""
        if self is BaseType.STRING:
            return isinstance(value, str)
        if self is BaseType.INT:
            return isinstance(value, int) and not isinstance(value, bool)
        if self is BaseType.NAT:
            return (
                isinstance(value, int)
                and not isinstance(value, bool)
                and value >= 0
            )
        if self is BaseType.FLOAT:
            return isinstance(value, (int, float)) and not isinstance(
                value, bool
            )
        return isinstance(value, bool)


@dataclass(frozen=True)
class EnumType:
    """A user-defined enumeration, e.g. ``element ::= aileron | elevator``."""

    name: str
    members: frozenset[str]

    def __post_init__(self) -> None:
        if not self.members:
            raise AnnotationError(f"enum {self.name!r} has no members")

    def accepts(self, value: Any) -> bool:
        return isinstance(value, str) and value in self.members

    def __str__(self) -> str:
        return f"{self.name} ::= {' | '.join(sorted(self.members))}"


ParamType = BaseType | EnumType


@dataclass(frozen=True)
class AttributeSchema:
    """A declared attribute: name + ordered parameter types."""

    name: str
    param_types: tuple[ParamType, ...] = ()

    def validate(self, params: Sequence[Any]) -> list[str]:
        """Problems with a parameter list against this schema (empty=ok)."""
        problems: list[str] = []
        if len(params) != len(self.param_types):
            problems.append(
                f"attribute {self.name!r} takes {len(self.param_types)} "
                f"parameter(s), got {len(params)}"
            )
            return problems
        for index, (value, wanted) in enumerate(
            zip(params, self.param_types)
        ):
            if not wanted.accepts(value):
                label = (
                    wanted.value
                    if isinstance(wanted, BaseType)
                    else wanted.name
                )
                problems.append(
                    f"attribute {self.name!r} parameter {index} "
                    f"({value!r}) is not a valid {label}"
                )
        return problems

    def __str__(self) -> str:
        types = " ".join(
            t.value if isinstance(t, BaseType) else t.name
            for t in self.param_types
        )
        return f"{self.name} {types}".strip()


class AnnotationError(ValueError):
    """Raised for ontology or annotation misuse."""


class Ontology:
    """The declared enums and attributes available for annotation."""

    def __init__(self) -> None:
        self._enums: dict[str, EnumType] = {}
        self._attributes: dict[str, AttributeSchema] = {}

    def declare_enum(self, name: str, members: Iterable[str]) -> EnumType:
        """Declare a user-defined enumeration."""
        if name in self._enums:
            raise AnnotationError(f"enum {name!r} already declared")
        enum_type = EnumType(name, frozenset(members))
        self._enums[name] = enum_type
        return enum_type

    def enum(self, name: str) -> EnumType:
        try:
            return self._enums[name]
        except KeyError:
            raise AnnotationError(f"unknown enum {name!r}") from None

    def declare_attribute(
        self, name: str, *param_types: ParamType
    ) -> AttributeSchema:
        """Declare an attribute with its parameter signature."""
        if name in self._attributes:
            raise AnnotationError(f"attribute {name!r} already declared")
        schema = AttributeSchema(name, tuple(param_types))
        self._attributes[name] = schema
        return schema

    def attribute(self, name: str) -> AttributeSchema:
        try:
            return self._attributes[name]
        except KeyError:
            raise AnnotationError(f"unknown attribute {name!r}") from None

    @property
    def attributes(self) -> list[AttributeSchema]:
        return list(self._attributes.values())

    @property
    def enums(self) -> list[EnumType]:
        return list(self._enums.values())

    def validate(
        self, annotations: Mapping[str, tuple[Any, ...]]
    ) -> list[str]:
        """Problems with an annotation mapping (empty = well-typed)."""
        problems: list[str] = []
        for name, params in annotations.items():
            if name not in self._attributes:
                problems.append(f"undeclared attribute {name!r}")
                continue
            problems.extend(self._attributes[name].validate(params))
        return problems


def annotate(
    argument: Argument,
    node_id: str,
    ontology: Ontology,
    annotations: Mapping[str, tuple[Any, ...]],
) -> Node:
    """Attach validated metadata to a node; returns the updated node.

    Raises :class:`AnnotationError` when the annotations do not type-check
    against the ontology — the 'type consistency' checking Matsuno and the
    annotation papers promise.
    """
    problems = ontology.validate(annotations)
    if problems:
        raise AnnotationError("; ".join(problems))
    updated = argument.node(node_id).with_metadata(annotations)
    argument.replace_node(updated)
    return updated


def validate_annotations(
    argument: Argument, ontology: Ontology
) -> dict[str, list[str]]:
    """Check every annotated node; returns node id -> problem list."""
    report: dict[str, list[str]] = {}
    for node in argument.nodes:
        if not node.metadata:
            continue
        problems = ontology.validate(node.metadata_dict())
        if problems:
            report[node.identifier] = problems
    return report


def aviation_ontology() -> Ontology:
    """The ontology sketched in the Denney–Naylor–Pai paper (§III.H).

    Declares the ``element`` enumeration from the paper plus the hazard
    attributes their example query uses: 'traceability to only those
    hazards whose likelihood of occurrence is remote, and whose severity
    is catastrophic'.
    """
    ontology = Ontology()
    element = ontology.declare_enum(
        "element",
        ("aileron", "elevator", "flaps", "rudder", "spoiler", "trim_tab"),
    )
    likelihood = ontology.declare_enum(
        "likelihood",
        ("frequent", "probable", "remote", "extremely_remote",
         "extremely_improbable"),
    )
    severity = ontology.declare_enum(
        "severity",
        ("catastrophic", "hazardous", "major", "minor", "no_effect"),
    )
    ontology.declare_attribute("concerns", element)
    ontology.declare_attribute("hazard", BaseType.STRING, likelihood,
                               severity)
    ontology.declare_attribute("requirement", BaseType.STRING)
    ontology.declare_attribute("allocated_to", BaseType.STRING)
    ontology.declare_attribute("verified_by", BaseType.STRING)
    ontology.declare_attribute("criticality_level", BaseType.NAT)
    ontology.declare_attribute("reviewed", BaseType.BOOL)
    return ontology
